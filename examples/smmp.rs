//! SMMP: the paper's shared-memory multiprocessor model under the
//! on-line configured kernel.
//!
//! Runs the 16-processor / 4-LP / 100-object configuration of Section 7
//! with every adaptive optimization enabled — dynamic checkpointing,
//! dynamic cancellation, SAAW message aggregation — and prints what the
//! controllers settled on.
//!
//! ```text
//! cargo run --release --example smmp [requests_per_processor]
//! ```

use std::sync::Arc;
use warped_online::control::{DynamicCancellation, DynamicCheckpoint};
use warped_online::core::policy::ObjectPolicies;
use warped_online::exec::run_virtual;
use warped_online::models::SmmpConfig;
use warped_online::net::AggregationConfig;

fn main() {
    let reqs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let cfg = SmmpConfig::paper(reqs, 7);
    println!(
        "SMMP: {} processors, {} LPs, {} objects, {} requests/processor, {:.0}% hit ratio",
        cfg.n_processors,
        cfg.n_lps,
        cfg.n_objects(),
        reqs,
        cfg.cache_hit_ratio * 100.0
    );

    let spec = cfg
        .spec()
        .with_policies(Arc::new(|_| {
            ObjectPolicies::new(
                Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
                Box::new(DynamicCheckpoint::new(1, 64, 64)),
            )
        }))
        .with_aggregation(AggregationConfig::saaw(5e-3));

    let report = run_virtual(&spec);
    println!("{}", report.summary_line());
    println!(
        "GVT rounds: {}, fossils reclaimed: {}",
        report.gvt_rounds, report.kernel.fossils_collected
    );

    // What did the on-line configuration settle on, per object class?
    for class in ["cpu", "cache", "memctrl", "bank"] {
        let (mut lazy, mut total, mut chi_sum) = (0u32, 0u32, 0u64);
        for lp in &report.per_lp {
            for o in lp.objects.iter().filter(|o| o.name.starts_with(class)) {
                total += 1;
                chi_sum += o.final_chi as u64;
                if o.final_mode == "Lazy" {
                    lazy += 1;
                }
            }
        }
        if total > 0 {
            println!(
                "  {class:<8} {lazy}/{total} settled lazy, mean final chi = {:.1}",
                chi_sum as f64 / total as f64
            );
        }
    }
}
