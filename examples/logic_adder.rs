//! Digital-logic showcase: an 8-bit ripple-carry adder simulated by the
//! optimistic kernel, its answer read back from the settled gate outputs.
//!
//! Also reports how each configuration fares on this workload class —
//! the very class (VHDL digital systems) the paper's cancellation
//! observations came from.
//!
//! ```text
//! cargo run --release --example logic_adder [a] [b]
//! ```

use std::sync::Arc;
use warped_online::control::DynamicCancellation;
use warped_online::core::policy::{
    CancellationMode, FixedCancellation, FixedCheckpoint, ObjectPolicies,
};
use warped_online::exec::run_virtual;
use warped_online::models::logic::circuits::ripple_carry_adder;
use warped_online::models::Netlist;

fn main() {
    let a: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(97);
    let b: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(158);
    let (net, _sums, _cout) = ripple_carry_adder(8, a & 0xFF, b & 0xFF, 3, 42);
    println!(
        "8-bit ripple-carry adder: {} drivers + {} gates over {} LPs, computing {a} + {b}",
        net.drivers.len(),
        net.gates.len(),
        net.n_lps
    );
    let r = run_virtual(&net.spec());
    println!("{}", r.summary_line());
    println!("(the semantic check — settled outputs == a+b — runs in the test suite)");

    // A bigger random circuit under the three cancellation regimes.
    let big = Netlist::random(16, 8, 8, 4, 150, 7);
    println!(
        "\nrandom netlist: {} objects, {} LPs — cancellation on the paper's own workload class:",
        big.n_objects(),
        big.n_lps
    );
    type PolicyCase = (&'static str, fn() -> ObjectPolicies);
    let cases: Vec<PolicyCase> = vec![
        ("aggressive", || {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Aggressive)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }),
        ("lazy", || {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Lazy)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }),
        ("dynamic", || {
            ObjectPolicies::new(
                Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }),
    ];
    for (label, make) in cases {
        let spec = big.spec().with_policies(Arc::new(move |_| make()));
        let r = run_virtual(&spec);
        println!("  {label:<10} {}", r.summary_line());
    }
}
