//! PHOLD on the threaded executive: the kernel as a real parallel
//! program, one OS thread per LP, with Mattern-token GVT and fossil
//! collection — then cross-checked against the sequential golden model.
//!
//! ```text
//! cargo run --release --example phold_parallel [n_lps] [ttl]
//! ```

use warped_online::exec::{run_sequential, run_threaded};
use warped_online::models::PholdConfig;

fn main() {
    let n_lps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let ttl: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let cfg = PholdConfig {
        n_objects: n_lps * 8,
        n_lps,
        population_per_object: 2,
        ttl,
        ..PholdConfig::new(ttl, 99)
    };
    println!(
        "PHOLD: {} objects over {} LP threads, {} jobs, ttl {}, {} hops expected",
        cfg.n_objects,
        cfg.n_lps,
        cfg.n_objects * cfg.population_per_object,
        cfg.ttl,
        cfg.expected_hops()
    );

    let spec = cfg.spec().with_traces().with_gvt_period(None);
    let seq = run_sequential(&spec);
    println!("{}", seq.summary_line());
    let par = run_threaded(&spec);
    println!("{}", par.summary_line());

    assert_eq!(
        seq.trace_digests(),
        par.trace_digests(),
        "parallel execution must commit exactly the sequential history"
    );
    println!(
        "committed histories identical across {} objects ✓",
        cfg.n_objects
    );

    // And once more with GVT + fossil collection on (memory-bounded).
    let spec = cfg.spec().with_gvt_period(Some(0.01));
    let par = run_threaded(&spec);
    println!(
        "with fossils: {} (GVT rounds {}, fossils {})",
        par.summary_line(),
        par.gvt_rounds,
        par.kernel.fossils_collected
    );
}
