//! PHOLD on the parallel executives: the kernel as a real parallel
//! program — one OS thread per LP, Mattern-token GVT, fossil
//! collection — cross-checked against the sequential golden model.
//!
//! ```text
//! cargo run --release --example phold_parallel [n_lps] [ttl] [--transport inproc|tcp] [--telemetry OUT.jsonl]
//! ```
//!
//! `--transport inproc` (default) runs every LP as a thread in this
//! process over lossless channels. `--transport tcp` runs the same
//! model through the distributed executive: a coordinator plus two
//! `warp-worker` processes exchanging frames over loopback TCP. Both
//! print committed-events/sec and verify the committed history against
//! the sequential run.
//!
//! `--telemetry OUT.jsonl` records metric series and the control
//! trajectory during the parallel run, dumps them as JSONL, and prints
//! a one-line adaptation summary.

use std::path::PathBuf;
use std::time::Duration;
use warped_online::cluster::{run_distributed_job, ClusterJob, ModelSpec};
use warped_online::exec::{run_sequential, run_threaded};
use warped_online::models::PholdConfig;

/// Locate the `warp-worker` binary for the tcp transport. Examples live
/// in `target/<profile>/examples/`, so the worker sits one level up;
/// `WARP_WORKER_BIN` overrides for installed binaries.
fn worker_bin() -> PathBuf {
    if let Some(p) = std::env::var_os("WARP_WORKER_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("examples dir has a parent");
    let name = if cfg!(windows) {
        "warp-worker.exe"
    } else {
        "warp-worker"
    };
    let candidate = profile_dir.join(name);
    if !candidate.exists() {
        eprintln!(
            "warp-worker not found at {} — build it first: cargo build --release --bin warp-worker \
             (or point WARP_WORKER_BIN at it)",
            candidate.display()
        );
        std::process::exit(2);
    }
    candidate
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut transport = "inproc".to_string();
    let mut telemetry_out: Option<PathBuf> = None;
    let mut positional = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--transport" {
            transport = it.next().unwrap_or_else(|| {
                eprintln!("--transport needs a value: inproc | tcp");
                std::process::exit(2);
            });
        } else if let Some(v) = a.strip_prefix("--transport=") {
            transport = v.to_string();
        } else if a == "--telemetry" {
            telemetry_out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                eprintln!("--telemetry needs an output path");
                std::process::exit(2);
            })));
        } else if let Some(v) = a.strip_prefix("--telemetry=") {
            telemetry_out = Some(PathBuf::from(v));
        } else {
            positional.push(a);
        }
    }
    let n_lps: usize = positional.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    let ttl: u32 = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let cfg = PholdConfig {
        n_objects: n_lps * 8,
        n_lps,
        population_per_object: 2,
        ttl,
        ..PholdConfig::new(ttl, 99)
    };
    println!(
        "PHOLD: {} objects over {} LPs ({} transport), {} jobs, ttl {}, {} hops expected",
        cfg.n_objects,
        cfg.n_lps,
        transport,
        cfg.n_objects * cfg.population_per_object,
        cfg.ttl,
        cfg.expected_hops()
    );

    let mut spec = cfg.spec().with_traces().with_gvt_period(None);
    if telemetry_out.is_some() {
        spec = spec.with_telemetry();
    }
    let seq = run_sequential(&spec);
    println!("{}", seq.summary_line());

    let par = match transport.as_str() {
        "inproc" => run_threaded(&spec),
        "tcp" => {
            let job = ClusterJob {
                collect_traces: true,
                telemetry: telemetry_out.is_some(),
                ..ClusterJob::new(ModelSpec::Phold(cfg.clone()), None)
            };
            let n_workers = (cfg.n_lps as u32).min(2);
            run_distributed_job(&job, n_workers, worker_bin(), Duration::from_secs(300))
                .unwrap_or_else(|e| {
                    eprintln!("distributed run failed: {e}");
                    std::process::exit(1);
                })
        }
        other => {
            eprintln!("unknown transport {other:?}: expected inproc | tcp");
            std::process::exit(2);
        }
    };
    println!("{}", par.summary_line());
    println!(
        "throughput: {:.0} committed events/sec over {}",
        par.events_per_second, transport
    );

    assert_eq!(
        seq.trace_digests(),
        par.trace_digests(),
        "parallel execution must commit exactly the sequential history"
    );
    println!(
        "committed histories identical across {} objects ✓",
        cfg.n_objects
    );

    if let Some(path) = &telemetry_out {
        let dump = par
            .telemetry
            .as_ref()
            .map(warped_online::telemetry::TelemetryReport::to_jsonl)
            .unwrap_or_default();
        std::fs::write(path, dump).unwrap_or_else(|e| {
            eprintln!("writing {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("{}", par.adaptation_summary());
        println!("telemetry written to {}", path.display());
    }

    if transport == "inproc" {
        // And once more with GVT + fossil collection on (memory-bounded).
        let spec = cfg.spec().with_gvt_period(Some(0.01));
        let par = run_threaded(&spec);
        println!(
            "with fossils: {} (GVT rounds {}, fossils {})",
            par.summary_line(),
            par.gvt_rounds,
            par.kernel.fossils_collected
        );
    }
}
