//! SERVE: open-arrival service traffic under the on-line configured
//! kernel — the diurnal-wave scenario that drives the balance and
//! elastic controllers from modeled load alone.
//!
//! Millions of simulated users arrive through seeded thinning of a
//! diurnal rate (no per-user state); routers fan requests to batched
//! service stations whose KV caches evict under hot-tenant pressure;
//! sinks accumulate end-to-end latency histograms into committed state.
//!
//! ```text
//! cargo run --release --example serve_cluster            # in-process demo
//! cargo run --release --example serve_cluster -- --job     # smoke ClusterJob JSON
//! cargo run --release --example serve_cluster -- --digest  # sequential golden digests
//! ```
//!
//! `--job` and `--digest` are two halves of the CI `serve-smoke` check:
//! the first is the exact job the `warp-cluster` CLI runs with
//! `--balance --elastic`, the second is the sequential golden model's
//! committed digests for the same spec — byte-identical committed
//! histories mean the distributed report must match this output.

use warp_balance::BalancePolicy;
use warp_elastic::ElasticPolicy;
use warp_exec::distributed::RecoveryPolicy;
use warped_online::cluster::{ClusterJob, ModelSpec};
use warped_online::exec::{run_sequential, run_virtual_inspect, VirtualOptions};
use warped_online::models::serve::{SinkState, StationState};
use warped_online::models::ServeConfig;

/// The wave scenario as a distributed job: the same controller tuning
/// the end-to-end test uses — thresholds sized to the pressure signal
/// SERVE's wave actually produces (≈0.1 quiet, ≈0.7+ mid-wave).
fn wave_job() -> ClusterJob {
    ClusterJob {
        collect_traces: true,
        recovery: RecoveryPolicy {
            enabled: true,
            max_recoveries: 3,
            ckpt_min_interval_ms: 0,
            stall_budget_ms: 0,
            ..RecoveryPolicy::default()
        },
        balance: BalancePolicy {
            enabled: true,
            dead_zone: 0.4,
            patience: 3,
            warmup_rounds: 2,
            max_moves: 1,
            min_lps: 1,
            max_migrations: 1,
        },
        elastic: ElasticPolicy {
            enabled: true,
            min_workers: 2,
            max_workers: 3,
            scale_out_pressure: 0.6,
            scale_in_pressure: 0.45,
            patience: 1,
            warmup_rounds: 1,
            max_scales: 3,
            spawn: true,
        },
        ..ClusterJob::new(ModelSpec::Serve(ServeConfig::wave(42)), None)
    }
}

fn main() {
    let mode = std::env::args().nth(1);
    match mode.as_deref() {
        Some("--job") => {
            let json = serde_json::to_string_pretty(&wave_job()).expect("job serializes");
            println!("{json}");
        }
        Some("--digest") => {
            let report = run_sequential(&wave_job().spec());
            let digests: Vec<serde_json::Value> = report
                .trace_digests()
                .into_iter()
                .map(|(id, d)| serde_json::json!([id, d]))
                .collect();
            let json = serde_json::json!({
                "committed_events": report.committed_events,
                "digests": digests,
            });
            println!(
                "{}",
                serde_json::to_string_pretty(&json).expect("digest JSON")
            );
        }
        _ => demo(),
    }
}

fn demo() {
    let cfg = ServeConfig::wave(42);
    println!(
        "SERVE: {} sources, {} routers, {} stations, {} sinks over {} LPs",
        cfg.n_sources, cfg.n_routers, cfg.n_stations, cfg.n_sinks, cfg.n_lps
    );
    println!(
        "       {} users, {} tenants, horizon {:.1} virtual ms, expecting ≈{:.0} arrivals",
        cfg.n_users,
        cfg.n_tenants,
        cfg.horizon_us as f64 / 1e3,
        cfg.expected_arrivals()
    );
    for b in &cfg.bursts {
        println!(
            "       wave [{:.0}..{:.0}) ms ×{:.1}{}",
            b.start_us as f64 / 1e3,
            b.end_us as f64 / 1e3,
            b.mult,
            if b.hot { " (hot-tenant skew)" } else { "" }
        );
    }

    let spec = cfg.spec().with_gvt_period(None);
    let (mut served, mut requeued, mut evictions, mut batches) = (0u64, 0u64, 0u64, 0u64);
    let mut sink = SinkState::default();
    let report = run_virtual_inspect(&spec, &VirtualOptions::default(), |lps| {
        for lp in lps {
            for o in lp.objects() {
                let i = o.id().0;
                if i >= cfg.sink_id(0) {
                    let snap = o.snapshot_state();
                    let s = snap.get::<SinkState>();
                    sink.done += s.done;
                    sink.sum_latency_us += s.sum_latency_us;
                    sink.max_latency_us = sink.max_latency_us.max(s.max_latency_us);
                    for (b, v) in sink.buckets.iter_mut().zip(s.buckets.iter()) {
                        *b += v;
                    }
                } else if i >= cfg.station_id(0) {
                    let snap = o.snapshot_state();
                    let s = snap.get::<StationState>();
                    served += s.served;
                    requeued += s.requeued;
                    evictions += s.evictions;
                    batches += s.batches;
                }
            }
        }
    });

    println!("{}", report.summary_line());
    println!(
        "stations: {served} served in {batches} batches ({:.2} per batch), \
         {requeued} re-queued, {evictions} KV evictions",
        served as f64 / batches.max(1) as f64
    );
    println!(
        "latency:  {} completions, mean {:.0} µs, max {} µs",
        sink.done,
        sink.mean_latency_us(),
        sink.max_latency_us
    );
    println!("latency histogram (log₂ µs buckets):");
    let peak = sink.buckets.iter().copied().max().unwrap_or(0).max(1);
    for (i, &n) in sink.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bar = "#".repeat((n * 48).div_ceil(peak) as usize);
        println!("  2^{i:<2} {n:>7}  {bar}");
    }
}
