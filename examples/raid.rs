//! RAID: the paper's disk-array model, comparing static and on-line
//! configured runs side by side.
//!
//! Demonstrates the heterogeneity result behind Figure 6: under dynamic
//! cancellation, disk objects settle on lazy cancellation (their services
//! are pure functions of the request) while fork objects settle on
//! aggressive (their dispatch tags are order-dependent).
//!
//! ```text
//! cargo run --release --example raid [requests_per_source]
//! ```

use std::sync::Arc;
use warped_online::control::DynamicCancellation;
use warped_online::core::policy::{
    CancellationMode, FixedCancellation, FixedCheckpoint, ObjectPolicies,
};
use warped_online::exec::run_virtual;
use warped_online::models::RaidConfig;

type PolicyBuilder = fn() -> ObjectPolicies;

fn main() {
    let reqs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let cfg = RaidConfig::paper(reqs, 13);
    println!(
        "RAID: {} sources x {} requests -> {} forks -> {} disks, {} LPs",
        cfg.n_sources, reqs, cfg.n_forks, cfg.n_disks, cfg.n_lps
    );

    let configs: Vec<(&str, PolicyBuilder)> = vec![
        ("static aggressive", || {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Aggressive)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }),
        ("static lazy", || {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Lazy)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }),
        ("dynamic cancellation", || {
            ObjectPolicies::new(
                Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }),
    ];
    for (label, make) in configs {
        let spec = cfg.spec().with_policies(Arc::new(move |_| make()));
        let report = run_virtual(&spec);
        println!("{label:<22} {}", report.summary_line());
        if label == "dynamic cancellation" {
            let mut disks_lazy = 0;
            let mut forks_aggr = 0;
            for lp in &report.per_lp {
                for o in &lp.objects {
                    if o.name.starts_with("disk-") && o.final_mode == "Lazy" {
                        disks_lazy += 1;
                    }
                    if o.name.starts_with("fork-") && o.final_mode == "Aggressive" {
                        forks_aggr += 1;
                    }
                }
            }
            println!(
                "  -> {disks_lazy}/{} disks settled lazy, {forks_aggr}/{} forks settled aggressive",
                cfg.n_disks, cfg.n_forks
            );
        }
    }
}
