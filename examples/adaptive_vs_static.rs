//! The paper's headline in one screen: the on-line configured simulator
//! vs. a grid of static configurations on the same workload.
//!
//! Sweeps static checkpoint intervals and both static cancellation
//! strategies on SMMP, then runs the adaptive configuration — which
//! lands near the best static cell without anyone having to search the
//! grid (the gap is the price of starting untuned and converging
//! on-line; it shrinks as runs grow longer).
//!
//! ```text
//! cargo run --release --example adaptive_vs_static [--telemetry OUT.jsonl]
//! ```
//!
//! With `--telemetry`, the adaptive run also records its metric series
//! and control trajectory — every χ step and cancellation flip the
//! controllers made while converging — dumps them as JSONL, and prints
//! a one-line adaptation summary.

use std::path::PathBuf;
use std::sync::Arc;
use warped_online::control::{AdaptRule, DynamicCancellation, DynamicCheckpoint};
use warped_online::core::policy::{
    CancellationMode, FixedCancellation, FixedCheckpoint, ObjectPolicies,
};
use warped_online::exec::run_virtual;
use warped_online::models::SmmpConfig;

fn main() {
    let mut telemetry_out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--telemetry" {
            telemetry_out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                eprintln!("--telemetry needs an output path");
                std::process::exit(2);
            })));
        } else if let Some(v) = a.strip_prefix("--telemetry=") {
            telemetry_out = Some(PathBuf::from(v));
        } else {
            eprintln!("usage: adaptive_vs_static [--telemetry OUT.jsonl]");
            std::process::exit(2);
        }
    }

    let cfg = SmmpConfig::paper(600, 3);
    println!(
        "SMMP {} objects / {} LPs — static grid vs on-line configuration\n",
        cfg.n_objects(),
        cfg.n_lps
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "config", "chi", "exec (s)", "ev/s"
    );

    let mut best_static = f64::INFINITY;
    for mode in [CancellationMode::Aggressive, CancellationMode::Lazy] {
        for chi in [1u32, 2, 4, 8, 16, 32] {
            let spec = cfg.spec().with_policies(Arc::new(move |_| {
                ObjectPolicies::new(
                    Box::new(FixedCancellation(mode)),
                    Box::new(FixedCheckpoint::new(chi)),
                )
            }));
            let r = run_virtual(&spec);
            best_static = best_static.min(r.completion_seconds);
            println!(
                "{:>12} {:>12} {:>12.4} {:>12.0}",
                match mode {
                    CancellationMode::Aggressive => "AC",
                    CancellationMode::Lazy => "LC",
                },
                chi,
                r.completion_seconds,
                r.events_per_second
            );
        }
    }

    let mut spec = cfg.spec().with_policies(Arc::new(|_| {
        ObjectPolicies::new(
            Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
            // The accelerated hill-climb converges from chi=1 within a few
            // control periods (see the checkpoint_rules ablation bench).
            Box::new(DynamicCheckpoint::with_rule(
                1,
                64,
                32,
                AdaptRule::HillClimb,
            )),
        )
    }));
    if telemetry_out.is_some() {
        spec = spec.with_telemetry();
    }
    let r = run_virtual(&spec);
    println!(
        "{:>12} {:>12} {:>12.4} {:>12.0}",
        "ADAPTIVE", "on-line", r.completion_seconds, r.events_per_second
    );
    println!(
        "\nbest static: {best_static:.4}s; adaptive: {:.4}s ({:+.1}% vs best static, found with zero tuning)",
        r.completion_seconds,
        100.0 * (best_static - r.completion_seconds) / best_static,
    );

    if let Some(path) = &telemetry_out {
        let dump = r
            .telemetry
            .as_ref()
            .map(warped_online::telemetry::TelemetryReport::to_jsonl)
            .unwrap_or_default();
        std::fs::write(path, dump).unwrap_or_else(|e| {
            eprintln!("writing {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("{}", r.adaptation_summary());
        println!("telemetry written to {}", path.display());
    }
}
