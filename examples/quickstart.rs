//! Quickstart: build a tiny custom model on the public API and run it on
//! all three executives.
//!
//! The model is a two-object ping-pong: `ping` starts a ball with a TTL;
//! each bounce forwards it after a random delay. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use warped_online::core::rng::SimRng;
use warped_online::core::wire::{PayloadReader, PayloadWriter};
use warped_online::core::{
    CostModel, ErasedState, Event, ExecutionContext, ObjectId, ObjectState, Partition, SimObject,
};
use warped_online::exec::{run_sequential, run_threaded, run_virtual, SimulationSpec};

/// Everything that must survive a rollback lives in the state — including
/// the RNG, so a rolled-back object replays identical random draws.
#[derive(Clone, Debug)]
struct PlayerState {
    rng: SimRng,
    bounces: u64,
}
impl ObjectState for PlayerState {}

struct Player {
    me: u32,
    peer: ObjectId,
    serves: bool,
    state: PlayerState,
}

impl Player {
    fn hit(&mut self, ctx: &mut dyn ExecutionContext, ttl: u32) {
        if ttl == 0 {
            return;
        }
        let delay = self.state.rng.exp_ticks(25.0);
        let mut w = PayloadWriter::new();
        w.u32(ttl - 1);
        ctx.send(self.peer, delay, 0, w.finish());
    }
}

impl SimObject for Player {
    fn name(&self) -> String {
        format!("player-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        if self.serves {
            self.hit(ctx, 500);
        }
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        self.state.bounces += 1;
        let ttl = PayloadReader::new(&ev.payload).u32().expect("ttl");
        self.hit(ctx, ttl);
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<PlayerState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<PlayerState>()
    }
}

fn main() {
    // Two objects on two LPs (= two workstations of the modeled cluster).
    let partition = Partition::round_robin(2, 2);
    let spec = SimulationSpec::new(
        partition,
        Arc::new(|id: ObjectId| {
            Box::new(Player {
                me: id.0,
                peer: ObjectId(1 - id.0),
                serves: id.0 == 0,
                state: PlayerState {
                    rng: SimRng::derive(42, id.0 as u64),
                    bounces: 0,
                },
            }) as Box<dyn SimObject>
        }),
    )
    .with_cost(CostModel::sparc_now_10mbps());

    println!("sequential golden model:");
    println!("  {}", run_sequential(&spec).summary_line());
    println!("deterministic virtual cluster (modeled 10 Mb Ethernet NOW):");
    println!("  {}", run_virtual(&spec).summary_line());
    println!("threaded (one OS thread per LP, Mattern-token GVT):");
    println!("  {}", run_threaded(&spec).summary_line());
}
