#![doc = include_str!("../README.md")]
pub mod cluster;

pub use warp_control as control;
pub use warp_core as core;
pub use warp_exec as exec;
pub use warp_models as models;
pub use warp_net as net;
pub use warp_telemetry as telemetry;
