//! Worker process of the distributed executive.
//!
//! Spawned by `warp_exec::distributed::run_coordinator`, never by hand
//! — except with `--join ADDR`, which dials a running coordinator's
//! admission listener instead of speaking over stdio; the coordinator
//! adopts the process at its next elastic scale-out (see
//! `docs/elasticity.md`). Either way the worker announces its listen
//! address (`LISTEN <addr>`), reads one line of init JSON, joins the
//! TCP mesh, runs its block of LPs, reports, and exits. See
//! `warp_exec::distributed` for the protocol and
//! `warped_online::cluster` for the model vocabulary.
//!
//! With a rejoin grace (offered by the coordinator's init, or forced
//! locally with `--rejoin-grace MS`) a worker that loses its
//! coordinator *parks* instead of exiting: it keeps its kernel state,
//! dials the coordinator's re-admission point with jittered backoff,
//! and presents a `Reattach` handshake so a restarted coordinator
//! (`warp-cluster --resume`) can re-adopt it without replay. See
//! `docs/coordinator-failover.md`.

const USAGE: &str = "\
usage: warp-worker [--join COORDINATOR_ADDR] [--rejoin-grace MS]

options:
  --join ADDR        dial a running coordinator's admission listener
                     instead of speaking the stdio bootstrap protocol
  --rejoin-grace MS  park for MS milliseconds on coordinator loss and
                     try to reattach to a restarted coordinator; 0
                     disables parking even when the coordinator offers
                     it (overrides the grace in the init line)
  --help             print this message

exit codes:
  0  clean finish, or retired by an elastic scale-in
  2  bootstrap or run error (details on stderr)
  3  orphaned — the coordinator died with no rejoin grace configured
     (control channel closed, or no recovery instructions in time),
     or a peer was lost with recovery disabled
  4  rejoin grace expired — the worker parked after losing its
     coordinator, but no successor adopted it in time
";

fn main() {
    let mut join: Option<String> = None;
    let mut rejoin_grace: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--join" => {
                join = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("warp-worker: --join needs an address");
                    eprint!("{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--rejoin-grace" => {
                let ms = argv.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("warp-worker: --rejoin-grace needs a millisecond count");
                    eprint!("{USAGE}");
                    std::process::exit(2);
                });
                rejoin_grace = Some(ms);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("warp-worker: unknown argument {other:?}");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let build = &warped_online::cluster::spec_from_model_json;
    let result = match join {
        Some(addr) => warp_exec::distributed::join_main_with(&addr, build, rejoin_grace),
        None => warp_exec::worker_main_with(build, rejoin_grace),
    };
    if let Err(e) = result {
        eprintln!("warp-worker: {e}");
        std::process::exit(2);
    }
}
