//! Worker process of the distributed executive.
//!
//! Spawned by `warp_exec::distributed::run_coordinator`, never by hand
//! — except with `--join ADDR`, which dials a running coordinator's
//! admission listener instead of speaking over stdio; the coordinator
//! adopts the process at its next elastic scale-out (see
//! `docs/elasticity.md`). Either way the worker announces its listen
//! address (`LISTEN <addr>`), reads one line of init JSON, joins the
//! TCP mesh, runs its block of LPs, reports, and exits. See
//! `warp_exec::distributed` for the protocol and
//! `warped_online::cluster` for the model vocabulary.
//!
//! Exit codes: 0 success, 2 bootstrap/run error (printed to stderr),
//! 3 orphaned or unrecoverable — the coordinator died (stdin/stdout
//! closed, or no recovery instructions arrived in time) or a peer was
//! lost with recovery disabled.

fn main() {
    let mut argv = std::env::args().skip(1);
    let result = match argv.next().as_deref() {
        None => warp_exec::worker_main(&warped_online::cluster::spec_from_model_json),
        Some("--join") => {
            let addr = argv.next().unwrap_or_else(|| {
                eprintln!("usage: warp-worker [--join COORDINATOR_ADDR]");
                std::process::exit(2);
            });
            warp_exec::distributed::join_main(&addr, &warped_online::cluster::spec_from_model_json)
        }
        Some(other) => {
            eprintln!("warp-worker: unknown argument {other:?}");
            eprintln!("usage: warp-worker [--join COORDINATOR_ADDR]");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("warp-worker: {e}");
        std::process::exit(2);
    }
}
