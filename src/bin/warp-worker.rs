//! Worker process of the distributed executive.
//!
//! Spawned by `warp_exec::distributed::run_coordinator`, never by hand:
//! it announces its listen address on stdout (`LISTEN <addr>`), reads
//! one line of init JSON on stdin, joins the TCP mesh, runs its block
//! of LPs, reports, and exits. See `warp_exec::distributed` for the
//! protocol and `warped_online::cluster` for the model vocabulary.
//!
//! Exit codes: 0 success, 2 bootstrap/run error (printed to stderr),
//! 3 orphaned or unrecoverable — the coordinator died (stdin/stdout
//! closed, or no recovery instructions arrived in time) or a peer was
//! lost with recovery disabled.

fn main() {
    if let Err(e) = warp_exec::worker_main(&warped_online::cluster::spec_from_model_json) {
        eprintln!("warp-worker: {e}");
        std::process::exit(2);
    }
}
