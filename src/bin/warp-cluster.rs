//! Coordinator CLI for distributed runs.
//!
//! Reads a `ClusterJob` as JSON (from a file argument, or stdin when no
//! file is given), stages it across worker processes, and prints the
//! merged `RunReport` as JSON on stdout.
//!
//! ```text
//! warp-cluster [JOB.json] [--workers N] [--timeout SECS] [--telemetry OUT.jsonl]
//!              [--balance] [--slow PROC:MICROS[:EVENTS]] [--store-dir DIR]
//!              [--elastic] [--min-workers N] [--max-workers N] [--admit-file PATH]
//!              [--max-frame-bytes N] [--resume-chunk-bytes N]
//!              [--transport threaded|poll] [--agg-window US] [--agg-fixed]
//!              [--rejoin-grace MS] [--supervise]
//! warp-cluster --resume STORE_DIR [--workers N] [--timeout SECS]
//!              [--telemetry OUT.jsonl] [--admit-file PATH]
//! warp-cluster stats TELEMETRY.jsonl
//! ```
//!
//! `--telemetry` forces telemetry on for the job and writes the merged
//! cluster-wide record (metric samples + control-trajectory events) as
//! JSONL; a one-line adaptation summary goes to stderr. The `stats`
//! subcommand re-reads such a file — validating every line against the
//! telemetry schema — and prints its summary.
//!
//! `--balance` arms the on-line load balancer (LP migration; implies
//! recovery). `--slow PROC:MICROS[:EVENTS]` artificially caps worker
//! `PROC` at one executed event per `MICROS` microseconds — a
//! reproducible "slow machine" for balance experiments. The optional
//! `:EVENTS` suffix makes the slowdown transient: it lapses after that
//! many events, so elastic experiments can watch a skew subside.
//!
//! `--elastic` arms elastic membership (grow/shrink the worker set
//! mid-run; implies recovery). `--min-workers`/`--max-workers` bound
//! the cluster size; `--admit-file PATH` publishes the admission
//! listener's address to `PATH` so external `warp-worker --join`
//! processes can dial in (see `docs/elasticity.md`).
//!
//! `--store-dir DIR` spills committed checkpoint delta chains to
//! per-worker segment files under `DIR` (implies recovery; see
//! `docs/recovery-store.md`). `--max-frame-bytes N` caps every frame
//! the mesh accepts; `--resume-chunk-bytes N` sets the payload size of
//! the streamed resume chunks (both override the job's `net`/`recovery`
//! settings).
//!
//! `--transport threaded|poll` picks the mesh engine (thread-per-link
//! vs. the single readiness-driven event loop; see
//! `docs/data-plane.md`). `--agg-window US` turns on on-the-wire DyMA
//! with an initial per-link window of `US` microseconds, SAAW-adapted
//! unless `--agg-fixed` pins it.
//!
//! `--rejoin-grace MS` arms coordinator fail-over (implies recovery;
//! needs `--store-dir`): the coordinator journals its control-plane
//! state at every checkpoint barrier, and workers that lose it *park*
//! for `MS` milliseconds instead of exiting, dialing the re-admission
//! point until a restarted coordinator adopts them. `--resume
//! STORE_DIR` is that restart: it replays the journal under
//! `STORE_DIR` (the job itself is journaled — no JOB.json needed),
//! re-adopts parked workers via the `Reattach` handshake, respawns the
//! rest, and continues the run. `--supervise` automates the loop: the
//! coordinator runs as a child process, and every unclean exit is
//! restarted with `--resume` until the job's recovery budget
//! (`recovery.max_recoveries`) is spent. See
//! `docs/coordinator-failover.md`.
//!
//! The worker binary is taken from `WARP_WORKER_BIN`, falling back to a
//! `warp-worker` sibling of this executable.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::Duration;
use warp_exec::distributed::{resume_coordinator, run_coordinator};
use warp_telemetry::TelemetryReport;
use warped_online::cluster::{dist_config, resume_job, ClusterJob};

fn usage() -> ! {
    eprintln!(
        "usage: warp-cluster [JOB.json] [--workers N] [--timeout SECS] [--telemetry OUT.jsonl]\n\
         \x20                [--balance] [--slow PROC:MICROS[:EVENTS]] [--store-dir DIR]\n\
         \x20                [--elastic] [--min-workers N] [--max-workers N] [--admit-file PATH]\n\
         \x20                [--max-frame-bytes N] [--resume-chunk-bytes N]\n\
         \x20                [--transport threaded|poll] [--agg-window US] [--agg-fixed]\n\
         \x20                [--rejoin-grace MS] [--supervise]\n\
         \x20      warp-cluster --resume STORE_DIR [--workers N] [--timeout SECS]\n\
         \x20                [--telemetry OUT.jsonl] [--admit-file PATH]\n\
         \x20      warp-cluster stats TELEMETRY.jsonl"
    );
    std::process::exit(2);
}

/// `warp-cluster stats FILE`: parse (and thereby schema-check) a
/// telemetry dump, print what it contains.
fn run_stats(path: &PathBuf) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let report =
        TelemetryReport::from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("{}", report.summary_line());
    Ok(())
}

fn worker_bin() -> Result<PathBuf, String> {
    if let Some(bin) = std::env::var_os("WARP_WORKER_BIN") {
        return Ok(PathBuf::from(bin));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name("warp-worker");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "no worker binary: set WARP_WORKER_BIN or install warp-worker next to {}",
            me.display()
        ))
    }
}

fn run() -> Result<(), String> {
    let mut job_file: Option<PathBuf> = None;
    let mut n_workers: u32 = 2;
    let mut timeout = Duration::from_secs(300);
    let mut telemetry_out: Option<PathBuf> = None;
    let mut balance = false;
    let mut elastic = false;
    let mut min_workers: Option<u32> = None;
    let mut max_workers: Option<u32> = None;
    let mut admit_file: Option<PathBuf> = None;
    let mut handicaps: Vec<(u32, u64)> = Vec::new();
    let mut handicap_events: Vec<(u32, u64)> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut max_frame_bytes: Option<u64> = None;
    let mut resume_chunk_bytes: Option<u64> = None;
    let mut transport: Option<warp_net::Transport> = None;
    let mut agg_window_us: Option<u64> = None;
    let mut agg_fixed = false;
    let mut resume: Option<PathBuf> = None;
    let mut rejoin_grace: Option<u64> = None;
    let mut supervise = false;
    // Flags that shape the job itself: refused together with --resume,
    // which must continue the journaled job verbatim (the executive
    // hashes the job against the journal header and rejects drift).
    let mut job_flags: Vec<&'static str> = Vec::new();

    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("stats") {
        argv.next();
        let path = argv.next().map(PathBuf::from).unwrap_or_else(|| usage());
        if argv.next().is_some() {
            usage();
        }
        return run_stats(&path);
    }
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--telemetry" => {
                telemetry_out = Some(argv.next().map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--workers" => {
                n_workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--timeout" => {
                let secs: u64 = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                timeout = Duration::from_secs(secs);
            }
            "--balance" => {
                balance = true;
                job_flags.push("--balance");
            }
            "--elastic" => {
                elastic = true;
                job_flags.push("--elastic");
            }
            "--min-workers" => {
                min_workers = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                job_flags.push("--min-workers");
            }
            "--max-workers" => {
                max_workers = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                job_flags.push("--max-workers");
            }
            "--admit-file" => {
                admit_file = Some(argv.next().map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--store-dir" => {
                store_dir = Some(argv.next().unwrap_or_else(|| usage()));
                job_flags.push("--store-dir");
            }
            "--max-frame-bytes" => {
                max_frame_bytes = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                job_flags.push("--max-frame-bytes");
            }
            "--resume-chunk-bytes" => {
                resume_chunk_bytes = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                job_flags.push("--resume-chunk-bytes");
            }
            "--transport" => {
                let spec = argv.next().unwrap_or_else(|| usage());
                transport = Some(warp_net::Transport::parse(&spec).unwrap_or_else(|_| usage()));
                job_flags.push("--transport");
            }
            "--agg-window" => {
                agg_window_us = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                job_flags.push("--agg-window");
            }
            "--agg-fixed" => {
                agg_fixed = true;
                job_flags.push("--agg-fixed");
            }
            "--rejoin-grace" => {
                rejoin_grace = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                job_flags.push("--rejoin-grace");
            }
            "--resume" => {
                resume = Some(argv.next().map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--supervise" => supervise = true,
            "--slow" => {
                let spec = argv.next().unwrap_or_else(|| usage());
                let (proc_id, rest) = spec.split_once(':').unwrap_or_else(|| usage());
                let proc_id: u32 = proc_id.parse().ok().unwrap_or_else(|| usage());
                let (gap, events) = match rest.split_once(':') {
                    Some((gap, events)) => (gap, Some(events)),
                    None => (rest, None),
                };
                let gap: u64 = gap.parse().ok().unwrap_or_else(|| usage());
                handicaps.push((proc_id, gap));
                if let Some(events) = events {
                    let events: u64 = events.parse().ok().unwrap_or_else(|| usage());
                    handicap_events.push((proc_id, events));
                }
                job_flags.push("--slow");
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => {
                if job_file.replace(PathBuf::from(arg)).is_some() {
                    usage();
                }
            }
        }
    }

    if let Some(dir) = &resume {
        if supervise {
            return Err(
                "--supervise starts a fresh run and resumes on its own; to continue a \
                 crashed run by hand use --resume alone"
                    .into(),
            );
        }
        if let Some(f) = job_flags.first() {
            return Err(format!(
                "{f} cannot be combined with --resume: a resumed run continues the \
                 journaled job verbatim (the executive refuses a job that drifted)"
            ));
        }
        if job_file.is_some() {
            return Err(
                "--resume reads the job from the journal; drop the JOB.json argument".into(),
            );
        }
        let job = resume_job(dir).map_err(|e| e.to_string())?;
        let mut cfg =
            dist_config(&job, n_workers, worker_bin()?, timeout).map_err(|e| e.to_string())?;
        cfg.admit_file = admit_file;
        let report = resume_coordinator(&cfg, dir).map_err(|e| e.to_string())?;
        return emit(&report, telemetry_out.as_deref());
    }

    let job_json = match &job_file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading job from stdin: {e}"))?;
            buf
        }
    };
    let mut job: ClusterJob =
        serde_json::from_str(&job_json).map_err(|e| format!("undecodable ClusterJob: {e}"))?;
    if telemetry_out.is_some() {
        job.telemetry = true;
    }
    if balance {
        job.balance.enabled = true;
        job.recovery.enabled = true;
    }
    if elastic {
        job.elastic.enabled = true;
        job.recovery.enabled = true;
    }
    if let Some(n) = min_workers {
        job.elastic.min_workers = n;
    }
    if let Some(n) = max_workers {
        job.elastic.max_workers = n;
    }
    if let Some(dir) = store_dir {
        job.recovery.store_dir = Some(dir);
        job.recovery.enabled = true;
    }
    if let Some(n) = max_frame_bytes {
        job.net.max_frame_bytes = n;
    }
    if let Some(n) = resume_chunk_bytes {
        job.recovery.resume_chunk_bytes = n;
    }
    if let Some(t) = transport {
        job.net.transport = t;
    }
    if let Some(us) = agg_window_us {
        job.net.agg_window_us = us;
    }
    if agg_fixed {
        job.net.agg_adapt = false;
    }
    if let Some(ms) = rejoin_grace {
        job.recovery.rejoin_grace_ms = ms;
        job.recovery.enabled = true;
    }
    job.handicaps.extend(handicaps);
    job.handicap_events.extend(handicap_events);

    if supervise {
        let Some(dir) = job.recovery.store_dir.clone() else {
            return Err(
                "--supervise needs a durable store: add --store-dir DIR (restarts resume \
                 from its run journal)"
                    .into(),
            );
        };
        return supervise_loop(
            &dir,
            &job,
            n_workers,
            timeout,
            telemetry_out.as_deref(),
            admit_file.as_deref(),
        );
    }

    let mut cfg =
        dist_config(&job, n_workers, worker_bin()?, timeout).map_err(|e| e.to_string())?;
    cfg.admit_file = admit_file;
    let report = run_coordinator(&cfg).map_err(|e| e.to_string())?;
    emit(&report, telemetry_out.as_deref())
}

/// Print the merged report: summary to stderr, JSON to stdout, and the
/// telemetry dump (plus adaptation summary) when requested.
fn emit(report: &warp_exec::RunReport, telemetry_out: Option<&Path>) -> Result<(), String> {
    eprintln!("{}", report.summary_line());
    if (!report.migrations.is_empty() || !report.scales.is_empty()) && telemetry_out.is_none() {
        // With --telemetry the adaptation summary prints below anyway.
        eprintln!("{}", report.adaptation_summary());
    }
    if let Some(path) = telemetry_out {
        let dump = report
            .telemetry
            .as_ref()
            .map(TelemetryReport::to_jsonl)
            .unwrap_or_default();
        std::fs::write(path, dump).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("{}", report.adaptation_summary());
    }
    println!(
        "{}",
        serde_json::to_string(report).map_err(|e| format!("report encode: {e}"))?
    );
    Ok(())
}

/// `--supervise`: run the coordinator as a child process and restart it
/// with `--resume` after every unclean exit, until the run finishes or
/// the job's recovery budget is spent. The fully-shaped job is staged
/// into the store directory so restarts never depend on the original
/// JOB.json or the shaping flags; the child inherits stdio, so the
/// surviving attempt's report lands on stdout exactly like an
/// unsupervised run.
fn supervise_loop(
    store_dir: &str,
    job: &ClusterJob,
    n_workers: u32,
    timeout: Duration,
    telemetry_out: Option<&Path>,
    admit_file: Option<&Path>,
) -> Result<(), String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    std::fs::create_dir_all(store_dir)
        .map_err(|e| format!("creating store dir {store_dir}: {e}"))?;
    let staged = Path::new(store_dir).join("job.json");
    let staged_json =
        serde_json::to_string_pretty(job).map_err(|e| format!("encoding job: {e}"))?;
    std::fs::write(&staged, staged_json)
        .map_err(|e| format!("staging {}: {e}", staged.display()))?;
    let budget = job.recovery.max_recoveries;
    let mut attempts = 0u32;
    loop {
        let mut cmd = std::process::Command::new(&me);
        if attempts == 0 {
            cmd.arg(&staged);
        } else {
            cmd.arg("--resume").arg(store_dir);
        }
        cmd.args(["--workers", &n_workers.to_string()]);
        cmd.args(["--timeout", &timeout.as_secs().to_string()]);
        if let Some(p) = telemetry_out {
            cmd.arg("--telemetry").arg(p);
        }
        if let Some(p) = admit_file {
            cmd.arg("--admit-file").arg(p);
        }
        let status = cmd
            .status()
            .map_err(|e| format!("spawning supervised coordinator: {e}"))?;
        if status.success() {
            return Ok(());
        }
        attempts += 1;
        if attempts > budget {
            return Err(format!(
                "supervised coordinator failed {attempts} time(s); recovery budget \
                 ({budget}) spent"
            ));
        }
        if !Path::new(store_dir).join("run.journal").exists() {
            return Err(format!(
                "supervised coordinator exited ({status}) before journaling anything; \
                 nothing to resume"
            ));
        }
        eprintln!(
            "warp-cluster: coordinator exited ({status}); resuming from {store_dir} \
             (attempt {attempts} of {budget})"
        );
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("warp-cluster: {e}");
        std::process::exit(1);
    }
}
