//! Model descriptions for distributed runs.
//!
//! The distributed executive in `warp-exec` is model-agnostic: the
//! coordinator ships an *opaque* JSON model description to each worker,
//! and the worker binary supplies the closure that turns it into a
//! [`SimulationSpec`]. This module is that closure's vocabulary — the
//! serializable union of models this repository can stage across
//! processes, plus the run options that must be identical on every
//! worker (GVT period, trace collection).
//!
//! Keeping the vocabulary here (and not in `warp-exec`) means adding a
//! model never touches the executive: extend [`ModelSpec`], rebuild the
//! `warp-worker` binary, done.

use serde::{Deserialize, Serialize};
use warp_balance::BalancePolicy;
use warp_elastic::ElasticPolicy;
use warp_exec::distributed::{run_coordinator, DistConfig, DistError, NetTuning, RecoveryPolicy};
use warp_exec::{RunReport, SimulationSpec};
use warp_models::{PholdConfig, QnetConfig, RaidConfig, ServeConfig, SmmpConfig};
use warp_net::FaultPlan;

/// A serializable model choice for distributed runs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ModelSpec {
    /// The PHOLD synthetic benchmark.
    Phold(PholdConfig),
    /// The shared-memory multiprocessor model (paper §7).
    Smmp(SmmpConfig),
    /// The RAID disk-array model (paper §7).
    Raid(RaidConfig),
    /// The closed FCFS queueing network (aggressive temperament).
    Qnet(QnetConfig),
    /// The open-arrival service-traffic cluster (diurnal + burst load).
    Serve(ServeConfig),
}

impl ModelSpec {
    /// Build the model's baseline spec.
    fn base_spec(&self) -> SimulationSpec {
        match self {
            ModelSpec::Phold(cfg) => cfg.spec(),
            ModelSpec::Smmp(cfg) => cfg.spec(),
            ModelSpec::Raid(cfg) => cfg.spec(),
            ModelSpec::Qnet(cfg) => cfg.spec(),
            ModelSpec::Serve(cfg) => cfg.spec(),
        }
    }
}

/// One distributed run: the model plus the options every worker must
/// agree on for the committed histories to line up.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterJob {
    /// The model to simulate.
    pub model: ModelSpec,
    /// Wall seconds between GVT rounds (`None` disables fossil
    /// collection; required for trace digests).
    pub gvt_period: Option<f64>,
    /// Record per-object committed-trace digests.
    #[serde(default)]
    pub collect_traces: bool,
    /// Record telemetry on every worker (metric series + control
    /// trajectory), streamed to the coordinator and merged into the
    /// final report. Purely observational: never perturbs the run.
    #[serde(default)]
    pub telemetry: bool,
    /// Transport tuning (heartbeats, liveness, dial backoff) applied to
    /// every process in the mesh.
    #[serde(default)]
    pub net: NetTuning,
    /// Checkpoint-and-recovery policy for the run.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
    /// On-line LP-migration policy (needs `recovery.enabled`).
    #[serde(default)]
    pub balance: BalancePolicy,
    /// Elastic cluster-membership policy: grow/shrink the worker set
    /// mid-run (needs `recovery.enabled`).
    #[serde(default)]
    pub elastic: ElasticPolicy,
    /// Artificial per-worker slowdowns, `(proc_id, gap_us)` pairs: that
    /// worker executes at most one event per `gap_us` microseconds.
    /// Benchmark/chaos knob for balance experiments.
    #[serde(default)]
    pub handicaps: Vec<(u32, u64)>,
    /// Like `handicaps`, but transient: `(proc_id, events)` caps how
    /// many events the slowdown applies to before the worker runs at
    /// full speed again. `0` = unlimited. Lets scale-out experiments
    /// inject a skew that later subsides, exercising scale-in too.
    #[serde(default)]
    pub handicap_events: Vec<(u32, u64)>,
    /// Deterministic fault plan to inject into the mesh (`None` =
    /// healthy links); mostly for chaos tests.
    #[serde(default)]
    pub fault: Option<FaultPlan>,
}

impl ClusterJob {
    /// A job with default transport tuning, recovery on, healthy links.
    pub fn new(model: ModelSpec, gvt_period: Option<f64>) -> Self {
        ClusterJob {
            model,
            gvt_period,
            collect_traces: false,
            telemetry: false,
            net: NetTuning::default(),
            recovery: RecoveryPolicy::default(),
            balance: BalancePolicy::default(),
            elastic: ElasticPolicy::default(),
            handicaps: Vec::new(),
            handicap_events: Vec::new(),
            fault: None,
        }
    }

    /// The fully-configured simulation spec this job describes.
    pub fn spec(&self) -> SimulationSpec {
        let mut spec = self.model.base_spec().with_gvt_period(self.gvt_period);
        if self.collect_traces {
            spec = spec.with_traces();
        }
        if self.telemetry {
            spec = spec.with_telemetry();
        }
        spec
    }

    /// Total LP count of the model (drives LP→worker placement).
    pub fn n_lps(&self) -> u32 {
        self.spec().partition.n_lps() as u32
    }
}

/// The worker side: decode a coordinator's opaque model JSON into a
/// spec. This is the function `warp-worker` hands to
/// [`warp_exec::distributed::worker_main`].
pub fn spec_from_model_json(model: &serde_json::Value) -> Result<SimulationSpec, String> {
    let job: ClusterJob = serde_json::from_value(model.clone())
        .map_err(|e| format!("undecodable ClusterJob: {e}"))?;
    Ok(job.spec())
}

/// Build the executive config for `job` without running it. Callers
/// that need coordinator knobs the job itself doesn't carry (e.g. the
/// elastic admission file) tweak the result and hand it to
/// [`run_coordinator`] themselves.
pub fn dist_config(
    job: &ClusterJob,
    n_workers: u32,
    worker_bin: std::path::PathBuf,
    timeout: std::time::Duration,
) -> Result<DistConfig, DistError> {
    let model =
        serde_json::to_value(job).map_err(|e| DistError::Protocol(format!("job encode: {e}")))?;
    Ok(DistConfig {
        n_workers,
        worker_bin,
        model,
        n_lps: job.n_lps(),
        timeout,
        net: job.net.clone(),
        recovery: job.recovery.clone(),
        balance: job.balance.clone(),
        elastic: job.elastic.clone(),
        handicaps: job.handicaps.clone(),
        handicap_events: job.handicap_events.clone(),
        fault: job.fault.clone(),
        admit_file: None,
    })
}

/// Recover the [`ClusterJob`] a durable run journal was created for:
/// the journal's job record *is* the serialized job (the coordinator
/// ships the whole job as its opaque model JSON), so resuming a run
/// needs nothing beyond its store directory. The returned job feeds
/// [`dist_config`] and then [`warp_exec::resume_coordinator`]; the
/// executive re-hashes the job against the journal header, so a job
/// edited between crash and resume is refused rather than silently
/// continued.
pub fn resume_job(store_dir: &std::path::Path) -> Result<ClusterJob, DistError> {
    let json = warp_exec::journal_job_json(store_dir)?;
    serde_json::from_str(&json)
        .map_err(|e| DistError::Protocol(format!("journaled job is undecodable: {e}")))
}

/// The coordinator side: run `job` across `n_workers` worker processes
/// using the given `warp-worker` binary, within `timeout`.
pub fn run_distributed_job(
    job: &ClusterJob,
    n_workers: u32,
    worker_bin: std::path::PathBuf,
    timeout: std::time::Duration,
) -> Result<RunReport, DistError> {
    run_coordinator(&dist_config(job, n_workers, worker_bin, timeout)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_job_round_trips_as_json() {
        let job = ClusterJob {
            collect_traces: true,
            telemetry: true,
            ..ClusterJob::new(ModelSpec::Smmp(SmmpConfig::small(50, 7)), None)
        };
        let v = serde_json::to_value(&job).unwrap();
        let spec = spec_from_model_json(&v).unwrap();
        assert_eq!(spec.partition.n_lps() as u32, job.n_lps());
        assert!(spec.collect_traces);
        assert!(spec.telemetry, "telemetry must reach every worker's spec");
        assert_eq!(spec.gvt_period, None);
    }

    #[test]
    fn each_model_variant_builds_a_spec() {
        let jobs = [
            ClusterJob::new(ModelSpec::Phold(PholdConfig::new(50, 1)), Some(0.02)),
            ClusterJob {
                collect_traces: true,
                ..ClusterJob::new(ModelSpec::Smmp(SmmpConfig::small(20, 2)), None)
            },
            ClusterJob {
                collect_traces: true,
                ..ClusterJob::new(ModelSpec::Raid(RaidConfig::small(20, 3)), None)
            },
            ClusterJob {
                collect_traces: true,
                ..ClusterJob::new(ModelSpec::Qnet(QnetConfig::new(20, 4)), None)
            },
            ClusterJob {
                collect_traces: true,
                ..ClusterJob::new(ModelSpec::Serve(ServeConfig::small(5)), None)
            },
        ];
        for job in jobs {
            let v = serde_json::to_value(&job).unwrap();
            let spec = spec_from_model_json(&v).unwrap();
            assert!(spec.partition.n_lps() >= 2, "models must be splittable");
        }
    }
}
