//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks run and report mean wall-clock time per iteration, with
//! no statistics, plots, or baseline storage. API surface matches what
//! this workspace uses: `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` sizes its setup batches. Accepted for source
/// compatibility; the shim runs one setup per routine call regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Drives a single benchmark's measurement loop.
pub struct Bencher {
    samples: u64,
    /// Mean duration of one routine call, recorded by `iter*`.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly and record the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up call, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / self.samples as u32;
    }

    /// Measure `routine` over fresh `setup` outputs, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed_per_iter = total / self.samples as u32;
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "{name:<48} {:>12.3?} /iter  ({samples} samples)",
        b.elapsed_per_iter
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: u64,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.samples, &mut f);
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            samples: self.default_samples,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.default_samples, &mut f);
        self
    }

    /// Hook for criterion's CLI-arg handling; the shim ignores args.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Hook for criterion's summary output; the shim prints per-bench.
    pub fn final_summary(&self) {}
}

/// Collect benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes harness=false bench binaries with
            // `--test`; benchmarks are not tests, so do nothing then.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 10);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
