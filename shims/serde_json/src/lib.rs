//! Offline stand-in for `serde_json`, layered on the `serde` shim.
//!
//! Emits and parses standard JSON text over [`serde::Value`]. Floats are
//! written with Rust's shortest round-trip formatting (`{:?}`), so
//! `from_str(&to_string(x))` reproduces `x` bit-for-bit for finite values.
//! Non-finite floats serialize as `null`, matching real serde_json.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error raised by JSON parsing or typed deserialization.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = Parser::new(s).parse_document()?;
    T::from_value(&v).map_err(Error::from)
}

/// Parse JSON bytes into a typed value.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into a typed value.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v).map_err(Error::from)
}

/// Build a [`Value`] with JSON-like syntax: object literals with
/// literal keys, array literals, `null`, and arbitrary serializable
/// expressions as values. Unlike real serde_json, *nested* object or
/// array literals must be wrapped in their own `json!(..)` call —
/// `json!({"a": json!({"b": 1})})` — because values are matched as
/// expressions, not re-parsed token trees.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( ::serde::Serialize::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), ::serde::Serialize::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // {:?} is Rust's shortest round-trip float rendering.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let start = self.pos;
                    let len = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    self.pos += len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = json!({
            "name": "phold",
            "lps": 4u32,
            "ratio": 0.25f64,
            "flags": json!([true, false, json!(null)]),
            "nested": json!({ "x": -3i64 })
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        // Field order is preserved in emission.
        assert!(text.find("\"name\"").unwrap() < text.find("\"lps\"").unwrap());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1e-9, 12345.6789, f64::MIN_POSITIVE, 1e300] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""a\n\t\"\\ é 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\ \u{e9} \u{1F600}");
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v = json!({ "series": json!([json!({ "x": 1u32, "y": 2.5f64 })]) });
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
