//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property over `cases` deterministically-seeded random
//! inputs (seeded from the test name, so failures reproduce across
//! runs). Failing cases report the generated inputs; there is **no
//! shrinking** — the reported case is the raw failing input. The
//! implemented surface is the subset this workspace uses: `Strategy`
//! with `prop_map`/`boxed`, integer/float range strategies, tuples,
//! `Just`, `any`, `proptest::collection::{vec, btree_set}`, and the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! macros.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A property-test case failure (raised by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Runner configuration. Only `cases` is honoured; `max_shrink_iters`
/// is accepted for source compatibility (the shim never shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
    /// Ignored: the shim does not shrink failing inputs.
    pub max_shrink_iters: u32,
    /// Ignored: the shim never rejects generated inputs. Present (as
    /// upstream) so `.. ProptestConfig::default()` in user structs
    /// always updates at least one field.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// Deterministic generator (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; equal seeds yield equal streams.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; requires `lo < hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generators of random values.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erase, so heterogeneous strategies can share a container
    /// (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_u64(0, self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                if hi == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    rng.range_u64(lo, hi + 1) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($( ( $($s:ident . $idx:tt),+ ) )+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The whole-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over all of `T` (for `T: Arbitrary`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Length bound for collection strategies: an exact length or a
    /// half-open range, as in real proptest.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.range_u64(self.lo as u64, self.hi as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from
    /// `size` (the element domain must be rich enough to reach the
    /// minimum; generation retries duplicates a bounded number of
    /// times).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Ordered sets of distinct `element`-generated values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 50 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.lo,
                "btree_set strategy could not reach minimum size {} (domain too small?)",
                self.size.lo
            );
            out
        }
    }
}

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Test-name hash used for deterministic per-property seeding.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Execute `config.cases` random cases of a property. Called by the
/// `proptest!` macro expansion, not directly by tests.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        let mut rng = TestRng::new(seed_for(name, i));
        let mut desc = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError(msg))) => {
                panic!(
                    "property `{name}` failed at case {i}/{total}: {msg}\n  inputs: {desc}\n  \
                     (proptest shim: deterministic seeding, no shrinking)",
                    total = config.cases
                );
            }
            Err(payload) => {
                eprintln!(
                    "property `{name}` panicked at case {i}/{total}\n  inputs: {desc}\n  \
                     (proptest shim: deterministic seeding, no shrinking)",
                    total = config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Declare property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng, __desc| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $(
                    __desc.push_str(stringify!($arg));
                    __desc.push_str(" = ");
                    __desc.push_str(&::std::format!("{:?}", &$arg));
                    __desc.push_str("; ");
                )+
                #[allow(unreachable_code)]
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategy arms (all arms must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(::std::vec![
            $( $crate::Strategy::boxed($strat) ),+
        ])
    };
}

/// Fail the current case (with inputs reported) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case if the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left), stringify!($right), __l, __r,
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let s = (0u32..100, crate::collection::vec(any::<bool>(), 0..5));
        let a = s.generate(&mut crate::TestRng::new(7));
        let b = s.generate(&mut crate::TestRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&y));
            let z = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn btree_set_hits_target_sizes() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let s = crate::collection::btree_set(1u64..200, 2..12).generate(&mut rng);
            assert!((2..12).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u32), (5u32..9).prop_map(|x| x * 10)],
            flag in any::<bool>(),
        ) {
            prop_assert!(v == 1 || (50..90).contains(&v), "v = {v}, flag = {flag}");
        }
    }
}
