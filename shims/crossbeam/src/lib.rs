//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the subset of the real API this
//! workspace uses — `unbounded`, cloneable `Sender`, `Receiver` with
//! `recv`/`try_recv`/`recv_timeout` — backed by `std::sync::mpsc`.
//! Semantics match for this subset: unbounded FIFO, multi-producer,
//! single consumer per `Receiver`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Multi-producer sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; errors iff the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Drain everything currently queued without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn fifo_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv().ok(), Some(1));
        assert_eq!(rx.try_recv().ok(), Some(2));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
