//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` — the environment has
//! no syn/quote. Supports the shapes this workspace actually uses:
//! non-generic structs (named, tuple, unit) and enums (unit, newtype,
//! tuple and struct variants), plus the `#[serde(default)]` field
//! attribute. Anything else panics with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Does an attribute token pair (`#` + `[...]`) spell `#[serde(default)]`?
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Consume leading attributes; report whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                default |= attr_is_serde_default(g);
                i += 2;
            }
            _ => break,
        }
    }
    (i, default)
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skip a type (or any token soup) until a top-level comma, tracking
/// angle-bracket depth so `Vec<Vec<T>>` commas don't split early.
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, default) = skip_attrs(&tokens, i);
        let j = skip_vis(&tokens, j);
        let name = match tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde shim derive: expected field name, got `{t}`"),
        };
        match tokens.get(j + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde shim derive: expected `:` after field `{name}`"),
        }
        fields.push(Field { name, default });
        i = skip_to_comma(&tokens, j + 2) + 1;
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        let j = skip_vis(&tokens, j);
        if j >= tokens.len() {
            break;
        }
        n += 1;
        i = skip_to_comma(&tokens, j) + 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        let name = match tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde shim derive: expected variant name, got `{t}`"),
        };
        let (fields, next) = match tokens.get(j + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (Fields::Named(parse_named_fields(g.stream())), j + 2)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (Fields::Tuple(count_tuple_fields(g.stream())), j + 2)
            }
            _ => (Fields::Unit, j + 1),
        };
        variants.push(Variant { name, fields });
        // Skip an explicit discriminant, then the separating comma.
        i = skip_to_comma(&tokens, next) + 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, _) = skip_attrs(&tokens, 0);
    let i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i + 2) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unsupported struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i + 2) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde shim derive: unsupported enum body {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value(&self.{0}))",
                                f.name
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), \
                                         ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated code parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            let helper = if f.default {
                                "__de_field_default"
                            } else {
                                "__de_field"
                            };
                            format!("{0}: ::serde::{helper}(__v, \"{0}\")?,", f.name)
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => {
                    format!(
                        "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                    )
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                        .collect();
                    format!(
                        "{{ let __s = ::serde::__de_tuple(__v, {n})?; \
                         ::std::result::Result::Ok({name}({})) }}",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __s = ::serde::__de_tuple(__inner, {n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    let helper = if f.default {
                                        "__de_field_default"
                                    } else {
                                        "__de_field"
                                    };
                                    format!("{0}: ::serde::{helper}(__inner, \"{0}\")?,", f.name)
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __inner) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{name} variant\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated code parses")
}
