//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, std-only serialization facility
//! under the familiar `serde` name. It is *not* wire-compatible with the
//! real serde; it implements exactly the surface this workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (named fields, newtype/tuple structs, unit/newtype/tuple/struct
//!   variants), honouring `#[serde(default)]` on fields;
//! * a self-describing [`Value`] tree as the data model;
//! * JSON encode/decode of that tree, consumed by the sibling
//!   `serde_json` shim.
//!
//! If the real serde ever becomes available, deleting `shims/` and
//! restoring the registry dependencies restores full fidelity — the
//! derive surface used by the workspace is a strict subset of serde's.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Self-describing serialized value (the shim's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for maps; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view, coercing any number representation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned view (exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => (*n >= 0).then_some(*n as u64),
            _ => None,
        }
    }

    /// Signed view (exact).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// `v["key"]` / `v[idx]` lookup that yields `Null` for misses, matching
/// `serde_json::Value` indexing semantics.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Seq(s) => s.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: what was expected, and a short rendering of
/// what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Convenience constructor used by generated code.
    pub fn expected(what: &str, got: &Value) -> DeError {
        let got = match got {
            Value::Null => "null".to_string(),
            Value::Bool(_) => "a bool".to_string(),
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "a number".to_string(),
            Value::Str(s) => format!("string {s:?}"),
            Value::Seq(_) => "a sequence".to_string(),
            Value::Map(_) => "a map".to_string(),
        };
        DeError(format!("expected {what}, got {got}"))
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the self-describing data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the self-describing data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_array().ok_or_else(|| DeError::expected("pair", v))?;
        if s.len() != 2 {
            return Err(DeError::expected("pair", v));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Generated-code helper: look up a required struct field.
pub fn __de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => {
            T::from_value(f).map_err(|DeError(m)| DeError(format!("in field `{name}`: {m}")))
        }
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

/// Generated-code helper: a `#[serde(default)]` struct field.
pub fn __de_field_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(T::default()),
        Some(f) => {
            T::from_value(f).map_err(|DeError(m)| DeError(format!("in field `{name}`: {m}")))
        }
    }
}

/// Generated-code helper: a tuple-struct / tuple-variant body of known
/// arity.
pub fn __de_tuple(v: &Value, arity: usize) -> Result<&[Value], DeError> {
    let s = v
        .as_array()
        .ok_or_else(|| DeError::expected("tuple", v))?
        .as_slice();
    if s.len() != arity {
        return Err(DeError(format!(
            "expected a tuple of {arity} elements, got {}",
            s.len()
        )));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = Vec::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<String> = Option::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn index_misses_yield_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(v["b"].is_null());
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v[3].is_null());
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
