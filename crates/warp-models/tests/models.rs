//! Model-level integration tests: the paper's applications running on the
//! real kernel, validated against the sequential golden model.

use std::sync::Arc;
use warp_control::{DynamicCancellation, DynamicCheckpoint};
use warp_core::policy::{CancellationMode, FixedCancellation, FixedCheckpoint, ObjectPolicies};
use warp_exec::{run_sequential, run_virtual, RunReport};
use warp_models::{PholdConfig, RaidConfig, SmmpConfig};
use warp_net::AggregationConfig;

fn assert_same_traces(a: &RunReport, b: &RunReport) {
    assert_eq!(
        a.committed_events, b.committed_events,
        "{} vs {}",
        a.executive, b.executive
    );
    assert_eq!(
        a.trace_digests(),
        b.trace_digests(),
        "{} vs {}",
        a.executive,
        b.executive
    );
}

#[test]
fn smmp_small_matches_sequential() {
    let spec = SmmpConfig::small(40, 11)
        .spec()
        .with_gvt_period(None)
        .with_traces();
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert_same_traces(&seq, &tw);
    assert!(seq.committed_events > 300, "got {}", seq.committed_events);
}

#[test]
fn smmp_small_matches_sequential_lazy() {
    let spec = SmmpConfig::small(40, 12)
        .spec()
        .with_gvt_period(None)
        .with_traces()
        .with_policies(Arc::new(|_| {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Lazy)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }));
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert_same_traces(&seq, &tw);
}

#[test]
fn smmp_favors_lazy_hits() {
    // SMMP's services are pure functions of their requests: when rollbacks
    // happen under lazy cancellation, regenerated messages overwhelmingly
    // match the held-back ones.
    let spec = SmmpConfig::small(150, 13)
        .spec()
        .with_gvt_period(None)
        .with_policies(Arc::new(|_| {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Lazy)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }));
    let tw = run_virtual(&spec);
    assert!(tw.kernel.rollbacks() > 0, "no rollbacks — test is vacuous");
    let hits = tw.kernel.lazy_hits as f64;
    let total = (tw.kernel.lazy_hits + tw.kernel.lazy_misses) as f64;
    assert!(total > 0.0);
    assert!(
        hits / total > 0.8,
        "SMMP should be hit-dominated, got {hits}/{total}"
    );
}

#[test]
fn raid_small_matches_sequential() {
    let spec = RaidConfig::small(30, 21)
        .spec()
        .with_gvt_period(None)
        .with_traces();
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert_same_traces(&seq, &tw);
    assert!(seq.committed_events > 200);
}

#[test]
fn raid_small_matches_sequential_under_dynamic_everything() {
    let spec = RaidConfig::small(30, 22)
        .spec()
        .with_gvt_period(None)
        .with_traces()
        .with_aggregation(AggregationConfig::saaw(1e-3))
        .with_policies(Arc::new(|_| {
            ObjectPolicies::new(
                Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
                Box::new(DynamicCheckpoint::new(1, 32, 32)),
            )
        }));
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert_same_traces(&seq, &tw);
}

#[test]
fn raid_cancellation_preference_is_heterogeneous() {
    // Figure 6's premise: under dynamic cancellation, disks settle lazy
    // (pure services) and forks settle aggressive (order-dependent tags).
    let cfg = RaidConfig::paper(60, 23);
    let spec = cfg
        .spec()
        .with_gvt_period(None)
        .with_policies(Arc::new(|_| {
            ObjectPolicies::new(
                Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
                Box::new(FixedCheckpoint::new(4)),
            )
        }));
    let tw = run_virtual(&spec);
    assert!(tw.kernel.rollbacks() > 0);
    let mut disk_lazy = 0;
    let mut disk_total = 0;
    let mut fork_hits = 0u64;
    let mut fork_misses = 0u64;
    let mut fork_rollbacks = 0u64;
    for lp in &tw.per_lp {
        for o in &lp.objects {
            if o.name.starts_with("disk-") {
                disk_total += 1;
                if o.final_mode == "Lazy" {
                    disk_lazy += 1;
                }
            } else if o.name.starts_with("fork-") {
                fork_hits += o.stats.lazy_hits + o.stats.monitor_hits;
                fork_misses += o.stats.lazy_misses + o.stats.monitor_misses;
                fork_rollbacks += o.stats.rollbacks();
            }
        }
    }
    assert_eq!(disk_total, 8);
    assert!(
        fork_rollbacks > 0,
        "forks never rolled back — test is vacuous"
    );
    assert!(
        disk_lazy >= 6,
        "most disks should settle on lazy cancellation, got {disk_lazy}/8"
    );
    // Forks regenerate different tags after rollback: misses dominate.
    assert!(
        fork_misses > fork_hits,
        "fork comparisons should be miss-heavy: {fork_hits} hits / {fork_misses} misses"
    );
}

#[test]
fn phold_matches_sequential_all_executives() {
    let cfg = PholdConfig {
        n_objects: 16,
        n_lps: 4,
        ttl: 40,
        ..PholdConfig::new(40, 31)
    };
    let spec = cfg.spec().with_gvt_period(None).with_traces();
    let seq = run_sequential(&spec);
    let v = run_virtual(&spec);
    assert_same_traces(&seq, &v);
    assert_eq!(seq.committed_events, cfg.expected_hops());
    let t = warp_exec::run_threaded(&spec);
    assert_same_traces(&seq, &t);
}

#[test]
fn smmp_paper_configuration_runs_with_fossils() {
    // The full 100-object topology at modest request counts, with GVT and
    // fossil collection on — the memory-bounded production setup.
    let spec = SmmpConfig::paper(25, 41).spec();
    let tw = run_virtual(&spec);
    assert!(tw.gvt_rounds > 0);
    assert!(tw.kernel.fossils_collected > 0);
    // 400 requests; ~2 events per cache hit, ~5 per miss at 90% hits.
    assert!(tw.committed_events > 800, "got {}", tw.committed_events);
    assert!(tw.completion_seconds > 0.0);
}

#[test]
fn raid_paper_configuration_runs_with_aggregation() {
    let spec = RaidConfig::paper(40, 42)
        .spec()
        .with_aggregation(AggregationConfig::Faw { window: 5e-3 });
    let tw = run_virtual(&spec);
    assert!(
        tw.comm.aggregation_ratio() > 1.2,
        "got {}",
        tw.comm.aggregation_ratio()
    );
    assert!(tw.committed_events > 2000);
}
