//! PHOLD: the standard synthetic PDES benchmark (Fujimoto 1990), included
//! as an extra validation workload beyond the paper's SMMP and RAID.
//!
//! A fixed population of jobs circulates among objects: each received job
//! is re-sent to a (seeded-)random object after an exponentially
//! distributed delay. A time-to-live bounds the run. The `locality` knob
//! controls how often a job stays within the sender's LP — the lever for
//! communication-intensity studies.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    ErasedState, Event, ExecutionContext, ObjectId, ObjectState, Partition, SimObject,
};
use warp_exec::SimulationSpec;

/// The circulating job message.
pub const K_JOB: u16 = 20;

/// PHOLD configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PholdConfig {
    /// Simulation objects.
    pub n_objects: usize,
    /// Logical processes.
    pub n_lps: usize,
    /// Jobs started per object at time zero.
    pub population_per_object: usize,
    /// Hops each job makes before retiring.
    pub ttl: u32,
    /// Mean hop delay in ticks.
    pub mean_delay: f64,
    /// Probability a hop stays within the sender's LP.
    pub locality: f64,
    /// Workload seed.
    pub seed: u64,
}

impl PholdConfig {
    /// A balanced default: 32 objects over 4 LPs, 1 job each.
    pub fn new(ttl: u32, seed: u64) -> Self {
        PholdConfig {
            n_objects: 32,
            n_lps: 4,
            population_per_object: 1,
            ttl,
            mean_delay: 50.0,
            locality: 0.5,
            seed,
        }
    }

    /// Build the simulation spec (round-robin partition).
    pub fn spec(&self) -> SimulationSpec {
        let cfg = self.clone();
        let partition = Partition::round_robin(self.n_objects, self.n_lps);
        SimulationSpec::new(
            partition,
            Arc::new(move |id| {
                Box::new(Phold {
                    cfg: cfg.clone(),
                    me: id.0,
                    state: PholdState {
                        rng: SimRng::derive(cfg.seed, id.0 as u64),
                        hops_seen: 0,
                    },
                }) as Box<dyn SimObject>
            }),
        )
    }

    /// Total job hops the run will execute.
    pub fn expected_hops(&self) -> u64 {
        (self.n_objects * self.population_per_object) as u64 * (self.ttl as u64 + 1)
    }
}

#[derive(Clone, Debug)]
struct PholdState {
    rng: SimRng,
    hops_seen: u64,
}
impl ObjectState for PholdState {}

struct Phold {
    cfg: PholdConfig,
    me: u32,
    state: PholdState,
}

impl Phold {
    fn hop(&mut self, ctx: &mut dyn ExecutionContext, ttl: u32) {
        if ttl == 0 {
            return;
        }
        let n = self.cfg.n_objects as u64;
        let per_lp = n / self.cfg.n_lps as u64;
        let dst = if self.state.rng.chance(self.cfg.locality) && per_lp > 0 {
            // Stay on my LP: objects with the same residue (round-robin).
            let k = self.state.rng.below(per_lp);
            (self.me as u64 % self.cfg.n_lps as u64) + k * self.cfg.n_lps as u64
        } else {
            self.state.rng.below(n)
        };
        let delay = self.state.rng.exp_ticks(self.cfg.mean_delay);
        let mut w = PayloadWriter::new();
        w.u32(ttl - 1);
        ctx.send(ObjectId(dst as u32), delay, K_JOB, w.finish());
    }
}

impl SimObject for Phold {
    fn name(&self) -> String {
        format!("phold-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        for _ in 0..self.cfg.population_per_object {
            self.hop(ctx, self.cfg.ttl + 1);
        }
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_JOB);
        self.state.hops_seen += 1;
        let ttl = PayloadReader::new(&ev.payload).u32().expect("phold ttl");
        self.hop(ctx, ttl);
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<PholdState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<PholdState>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_exec::run_sequential;

    #[test]
    fn sequential_run_executes_expected_hops() {
        let cfg = PholdConfig {
            n_objects: 8,
            n_lps: 2,
            ttl: 10,
            ..PholdConfig::new(10, 5)
        };
        let spec = cfg.spec();
        let report = run_sequential(&spec);
        assert_eq!(report.committed_events, cfg.expected_hops());
    }

    #[test]
    fn locality_keeps_hops_on_lp() {
        // With locality 1.0 every hop stays on the sender's LP: a
        // round-robin partition means dst ≡ src (mod n_lps).
        let cfg = PholdConfig {
            n_objects: 12,
            n_lps: 3,
            ttl: 30,
            locality: 1.0,
            ..PholdConfig::new(30, 9)
        };
        let mut obj = Phold {
            cfg: cfg.clone(),
            me: 4, // LP 1
            state: PholdState {
                rng: SimRng::derive(9, 4),
                hops_seen: 0,
            },
        };
        let mut ctx =
            warp_core::object::RecordingContext::new(ObjectId(4), warp_core::VirtualTime::new(1));
        for _ in 0..50 {
            obj.hop(&mut ctx, 5);
        }
        for (dst, _, _, _) in &ctx.sent {
            assert_eq!(dst.0 % 3, 1, "hop left LP 1: {dst:?}");
        }
    }

    #[test]
    fn expected_hops_formula() {
        let cfg = PholdConfig {
            n_objects: 4,
            population_per_object: 2,
            ttl: 9,
            ..PholdConfig::new(9, 1)
        };
        assert_eq!(cfg.expected_hops(), 4 * 2 * 10);
    }
}
