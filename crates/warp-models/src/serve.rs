//! SERVE: an open-arrival service-traffic workload.
//!
//! Every other model in this crate is a closed population seeded at
//! t=0 with near-uniform load, so the on-line controllers (balance,
//! elastic) only ever fired from artificial `--slow` handicaps. SERVE
//! is the first workload whose *modeled* traffic drives them: an open
//! arrival process with a diurnal rate curve, configurable burst
//! waves, and Zipf hot-key skew over tenants, feeding batched service
//! stations whose shared-state cache makes service time depend on
//! admission history.
//!
//! The pipeline, in virtual microseconds:
//!
//! * **Sources** draw a candidate stream by thinning (Lewis–Shedler)
//!   against a piecewise-constant envelope of the diurnal×burst rate.
//!   Millions of simulated users exist only as ids drawn per-arrival —
//!   no per-user state. All randomness lives in rollback-managed
//!   object state ([`SimRng`]), so re-execution reproduces the stream.
//! * **Routers** forward each request to the station owning its tenant
//!   (`tenant % n_stations`) — the affinity that turns tenant skew
//!   into station skew, and station skew into LP/worker imbalance.
//! * **Stations** model a GPU replica: an admission queue drained in
//!   batches every `batch_window_us`, per-batch service time growing
//!   *sublinearly* with batch size, and a KV-cache of `kv_slots`
//!   resident tenants. A batch may reload at most
//!   `max_reloads_per_batch` missing tenants (evicting LRU residents);
//!   requests beyond that budget are re-queued. Each batch also runs a
//!   chain of decode-step self-events, so a hot station is dense in
//!   events per virtual microsecond — which is exactly what makes its
//!   LP's LVT lag and the controllers react. Queue state (`busy_until`,
//!   the cache, the backlog) makes regenerated sends rarely match
//!   prematurely sent ones: a rollback-rich, state-dependent
//!   temperament distinct from SMMP (lazy), QNET (aggressive) and RAID
//!   (mixed).
//! * **Sinks** accumulate end-to-end latency histograms into committed
//!   state, so trace digests capture end-to-end behavior.
//!
//! Placement interleaves the roles round-robin over the LPs, so every
//! LP carries sources, routers, stations and sinks and advances in one
//! unified virtual-time order; per-LP load differences then come from
//! *which stations* an LP hosts. Hot tenants are low-numbered, so the
//! burst concentrates on low-numbered LPs — the ones the contiguous
//! worker assignment gives to worker 1.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    ErasedState, Event, ExecutionContext, LpId, NodeId, ObjectId, ObjectState, Partition,
    SimObject, VirtualTime,
};
use warp_exec::SimulationSpec;

/// Source self-event: the next thinning candidate (accepted or not).
pub const K_CANDIDATE: u16 = 40;
/// Source → router: an accepted request.
pub const K_REQ: u16 = 41;
/// Router → station: a routed request.
pub const K_DISPATCH: u16 = 42;
/// Station self-event: the batch window closes.
pub const K_BATCH: u16 = 43;
/// Station self-event: one decode step of an in-flight batch.
pub const K_TICK: u16 = 44;
/// Station → sink: a completed request.
pub const K_DONE: u16 = 45;

/// A burst wave: the arrival rate is multiplied by `mult` over
/// `[start_us, end_us)`. A `hot` wave also switches tenant choice to
/// the hot (`burst_zipf_s`) skew; a non-hot wave is a plain traffic
/// plateau (evening load, say) that raises the rate but keeps routing
/// uniform.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BurstWave {
    /// Wave start (inclusive), µs.
    pub start_us: u64,
    /// Wave end (exclusive), µs.
    pub end_us: u64,
    /// Rate multiplier over the window.
    pub mult: f64,
    /// Whether the wave's traffic is hot-tenant skewed.
    pub hot: bool,
}

/// SERVE configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Open-arrival source objects.
    pub n_sources: usize,
    /// Router objects (requests routed by `user % n_routers`).
    pub n_routers: usize,
    /// Batched service stations (tenant affinity `tenant % n_stations`).
    pub n_stations: usize,
    /// Latency-histogram sinks (`user % n_sinks`).
    pub n_sinks: usize,
    /// Logical processes; every role is spread round-robin over all of
    /// them, so station `i` lives on LP `i % n_lps`.
    pub n_lps: usize,
    /// Simulated user population (ids only — no per-user state).
    pub n_users: u64,
    /// Tenants (the routing key; Zipf-skewed under bursts).
    pub n_tenants: usize,
    /// Zipf exponent for tenant choice outside bursts (≈0 = uniform).
    pub zipf_s: f64,
    /// Zipf exponent during bursts (hot-key skew).
    pub burst_zipf_s: f64,
    /// Mean inter-arrival per source at the diurnal midpoint, µs.
    pub base_interarrival_us: f64,
    /// Diurnal modulation amplitude in `[0, 1)`:
    /// `rate(t) = base·(1 + amp·sin(2πt/day))·burst_mult(t)`.
    pub diurnal_amp: f64,
    /// Diurnal period, µs.
    pub day_us: u64,
    /// Burst waves (each multiplies the rate over its window).
    pub bursts: Vec<BurstWave>,
    /// Arrivals stop at this virtual time, µs.
    pub horizon_us: u64,
    /// Source → router delay, µs.
    pub route_delay_us: u64,
    /// Router → station delay, µs.
    pub dispatch_delay_us: u64,
    /// Station batch window: queue drains this long after the first
    /// enqueue, µs.
    pub batch_window_us: u64,
    /// Max requests per batch.
    pub max_batch: usize,
    /// Fixed per-batch service overhead, µs.
    pub service_base_us: u64,
    /// Marginal service cost coefficient, µs: a batch of `b` costs
    /// `service_base + service_per_item·b^batch_exponent` (+ reloads).
    pub service_per_item_us: f64,
    /// Sublinearity of batch service time (e.g. 0.7).
    pub batch_exponent: f64,
    /// Uniform extra service jitter in `[0, service_jitter_us]`, µs.
    pub service_jitter_us: u64,
    /// Decode-step self-events per batch (hot-LP event density).
    pub decode_steps: u32,
    /// KV-cache capacity: tenants resident at a station.
    pub kv_slots: usize,
    /// Service-time penalty per tenant load into the KV cache, µs.
    pub reload_us: u64,
    /// Evictions allowed per batch (the first request is exempt);
    /// requests beyond the budget are re-queued.
    pub max_reloads_per_batch: usize,
    /// Station → sink delay, µs.
    pub sink_delay_us: u64,
    /// Workload seed.
    pub seed: u64,
}

impl ServeConfig {
    /// A small cluster for digest tests: 16 objects over 4 LPs, one
    /// mid-run burst, ≈10k committed events.
    pub fn small(seed: u64) -> Self {
        ServeConfig {
            n_sources: 4,
            n_routers: 2,
            n_stations: 8,
            n_sinks: 2,
            n_lps: 4,
            n_users: 2_000_000,
            n_tenants: 32,
            zipf_s: 0.4,
            burst_zipf_s: 1.4,
            base_interarrival_us: 600.0,
            diurnal_amp: 0.4,
            day_us: 120_000,
            bursts: vec![BurstWave {
                start_us: 50_000,
                end_us: 110_000,
                mult: 3.0,
                hot: true,
            }],
            horizon_us: 160_000,
            route_delay_us: 25,
            dispatch_delay_us: 30,
            batch_window_us: 250,
            max_batch: 8,
            service_base_us: 50,
            service_per_item_us: 60.0,
            batch_exponent: 0.7,
            service_jitter_us: 20,
            decode_steps: 3,
            // 32 tenants over 8 stations is 4 residents per station;
            // two slots short forces eviction churn and, in burst-fat
            // batches, reload-budget re-queues.
            kv_slots: 2,
            reload_us: 90,
            max_reloads_per_batch: 1,
            sink_delay_us: 40,
            seed,
        }
    }

    /// The diurnal-wave scenario the controller experiments run: 36
    /// objects over 6 LPs, a 4× burst spanning the middle of the day
    /// with hot-tenant skew, and a long post-wave tail so scale-in has
    /// time to fire. The layout is deliberately symmetric — every LP
    /// hosts exactly one source, one router, three stations and one
    /// sink — so steady-state leads are flat and the *only* source of
    /// imbalance is the wave's tenant skew. ≈150k committed events.
    pub fn wave(seed: u64) -> Self {
        ServeConfig {
            n_sources: 6,
            n_routers: 6,
            n_stations: 18,
            n_sinks: 6,
            n_lps: 6,
            n_users: 10_000_000,
            n_tenants: 64,
            zipf_s: 0.2,
            burst_zipf_s: 1.5,
            base_interarrival_us: 500.0,
            diurnal_amp: 0.25,
            day_us: 600_000,
            bursts: vec![
                // The hot wave: 4× traffic, skewed onto the low
                // tenants — the controllers' cue to act.
                BurstWave {
                    start_us: 150_000,
                    end_us: 600_000,
                    mult: 4.0,
                    hot: true,
                },
                // The evening plateau: elevated but *uniform* traffic
                // after the wave, dense enough in events that the
                // cool-down spans many controller rounds — the
                // scale-in window.
                BurstWave {
                    start_us: 650_000,
                    end_us: 1_300_000,
                    mult: 3.0,
                    hot: false,
                },
            ],
            horizon_us: 1_300_000,
            route_delay_us: 25,
            dispatch_delay_us: 30,
            batch_window_us: 200,
            max_batch: 8,
            service_base_us: 40,
            service_per_item_us: 50.0,
            batch_exponent: 0.7,
            service_jitter_us: 16,
            decode_steps: 4,
            // 64 tenants over 18 stations: stations 0..10 host four
            // residents, the rest three. Three slots means exactly the
            // stations the hot skew concentrates on are the ones that
            // evict and re-queue under the wave.
            kv_slots: 3,
            reload_us: 80,
            max_reloads_per_batch: 1,
            sink_delay_us: 40,
            seed,
        }
    }

    /// Total simulation objects.
    pub fn n_objects(&self) -> usize {
        self.n_sources + self.n_routers + self.n_stations + self.n_sinks
    }

    /// Object id of source `i`.
    pub fn source_id(&self, i: usize) -> u32 {
        i as u32
    }

    /// Object id of router `i`.
    pub fn router_id(&self, i: usize) -> u32 {
        (self.n_sources + i) as u32
    }

    /// Object id of station `i`.
    pub fn station_id(&self, i: usize) -> u32 {
        (self.n_sources + self.n_routers + i) as u32
    }

    /// Object id of sink `i`.
    pub fn sink_id(&self, i: usize) -> u32 {
        (self.n_sources + self.n_routers + self.n_stations + i) as u32
    }

    /// Base arrival rate per source, per µs.
    fn base_rate(&self) -> f64 {
        1.0 / self.base_interarrival_us
    }

    /// Product of the burst multipliers active at `t`.
    pub fn burst_mult(&self, t: u64) -> f64 {
        self.bursts
            .iter()
            .filter(|b| b.start_us <= t && t < b.end_us)
            .map(|b| b.mult)
            .product()
    }

    /// Is any *hot* burst wave active at `t` (i.e. is tenant choice
    /// skewed right now)?
    pub fn burst_active(&self, t: u64) -> bool {
        self.bursts
            .iter()
            .any(|b| b.hot && b.start_us <= t && t < b.end_us)
    }

    /// Instantaneous arrival rate per source at `t`, per µs.
    pub fn rate_at(&self, t: u64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t as f64 / self.day_us as f64;
        self.base_rate() * (1.0 + self.diurnal_amp * phase.sin()) * self.burst_mult(t)
    }

    /// The thinning envelope at `t`: a piecewise-constant rate that
    /// dominates [`Self::rate_at`] until the returned boundary (the
    /// next burst edge, or the horizon).
    fn envelope_at(&self, t: u64) -> (f64, u64) {
        let env = self.base_rate() * (1.0 + self.diurnal_amp) * self.burst_mult(t);
        let mut until = self.horizon_us;
        for b in &self.bursts {
            for edge in [b.start_us, b.end_us] {
                if edge > t && edge < until {
                    until = edge;
                }
            }
        }
        (env, until)
    }

    /// The analytic arrival-count integral `Σ_sources ∫₀^horizon λ(t) dt`,
    /// evaluated piecewise in closed form over the burst edges.
    pub fn expected_arrivals(&self) -> f64 {
        let mut edges = vec![0, self.horizon_us];
        for b in &self.bursts {
            edges.push(b.start_us.min(self.horizon_us));
            edges.push(b.end_us.min(self.horizon_us));
        }
        edges.sort_unstable();
        edges.dedup();
        let day = self.day_us as f64;
        let tau = day / (2.0 * std::f64::consts::PI);
        let mut per_source = 0.0;
        for w in edges.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b <= a {
                continue;
            }
            let mult = self.burst_mult(a.midpoint(b));
            let (pa, pb) = (a as f64 / tau, b as f64 / tau);
            per_source += mult
                * self.base_rate()
                * ((b - a) as f64 + self.diurnal_amp * tau * (pa.cos() - pb.cos()));
        }
        per_source * self.n_sources as f64
    }

    /// The partition: every role round-robin over all LPs (station `i`
    /// on LP `i % n_lps`), one LP per node.
    pub fn partition(&self) -> Partition {
        let mut lp_of = Vec::with_capacity(self.n_objects());
        for role in [
            self.n_sources,
            self.n_routers,
            self.n_stations,
            self.n_sinks,
        ] {
            for i in 0..role {
                lp_of.push(LpId((i % self.n_lps) as u32));
            }
        }
        let node_of_lp = (0..self.n_lps).map(|l| NodeId(l as u32)).collect();
        Partition::new(lp_of, node_of_lp).expect("serve partition is valid")
    }

    /// Build the simulation spec.
    pub fn spec(&self) -> SimulationSpec {
        let cfg = self.clone();
        SimulationSpec::new(self.partition(), Arc::new(move |id| build_object(&cfg, id)))
    }
}

fn build_object(cfg: &ServeConfig, id: ObjectId) -> Box<dyn SimObject> {
    let i = id.0 as usize;
    let (s, r, n) = (cfg.n_sources, cfg.n_routers, cfg.n_stations);
    if i < s {
        Box::new(Source {
            cfg: cfg.clone(),
            me: id.0,
            tables: ZipfTables::new(cfg),
            state: SourceState::fresh(cfg, id.0),
        })
    } else if i < s + r {
        Box::new(Router {
            cfg: cfg.clone(),
            me: id.0,
            state: RouterState { routed: 0 },
        })
    } else if i < s + r + n {
        Box::new(Station {
            cfg: cfg.clone(),
            me: id.0,
            state: StationState::fresh(cfg, id.0),
        })
    } else {
        Box::new(Sink {
            me: id.0,
            state: SinkState::default(),
        })
    }
}

// ---------------------------------------------------------------- zipf

/// Precomputed cumulative Zipf weight tables over the tenants — built
/// deterministically from the config (immutable, *not* rollback
/// state), sampled by binary search on a `[0,1)` draw.
#[derive(Clone, Debug)]
pub struct ZipfTables {
    base: Vec<f64>,
    burst: Vec<f64>,
}

fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (1..=n)
        .map(|k| {
            acc += (k as f64).powf(-s);
            acc
        })
        .collect();
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

impl ZipfTables {
    /// Build both skew tables for a config.
    pub fn new(cfg: &ServeConfig) -> Self {
        ZipfTables {
            base: zipf_cdf(cfg.n_tenants, cfg.zipf_s),
            burst: zipf_cdf(cfg.n_tenants, cfg.burst_zipf_s),
        }
    }

    /// Draw a tenant (low ids are the hot ones).
    pub fn sample(&self, burst: bool, u: f64) -> u32 {
        let cdf = if burst { &self.burst } else { &self.base };
        cdf.partition_point(|&c| c <= u) as u32
    }
}

// -------------------------------------------------------------- source

/// One accepted arrival from a source's stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time, µs.
    pub at: u64,
    /// Simulated user id.
    pub user: u64,
    /// Tenant (routing key).
    pub tenant: u32,
}

/// Source rollback state: the rng and the candidate cursor. The same
/// stepping code drives both the [`SimObject`] and the offline
/// [`arrival_stream`] helper, so determinism tests exercise the exact
/// simulation path.
#[derive(Clone, Debug)]
struct SourceState {
    rng: SimRng,
    /// Time of the candidate being processed (the cursor of the
    /// thinning walk).
    t: u64,
    accepted: u64,
    candidates: u64,
}
impl ObjectState for SourceState {}

impl SourceState {
    fn fresh(cfg: &ServeConfig, me: u32) -> Self {
        SourceState {
            rng: SimRng::derive(cfg.seed, me as u64),
            t: 0,
            accepted: 0,
            candidates: 0,
        }
    }

    /// Advance the thinning walk to the next candidate instant, or
    /// `None` once the horizon is reached. Exact for the
    /// piecewise-constant envelope: a draw that crosses the next
    /// envelope boundary restarts there (memorylessness).
    fn next_candidate(&mut self, cfg: &ServeConfig) -> Option<u64> {
        let mut t = self.t;
        loop {
            if t >= cfg.horizon_us {
                return None;
            }
            let (env, until) = cfg.envelope_at(t);
            let c = t + self.rng.exp_ticks(1.0 / env);
            if c >= until && until < cfg.horizon_us {
                t = until;
                continue;
            }
            if c >= cfg.horizon_us {
                return None;
            }
            self.t = c;
            self.candidates += 1;
            return Some(c);
        }
    }

    /// Thin the candidate at the cursor: `Some((user, tenant))` if it
    /// is a real arrival, `None` if rejected.
    fn classify(&mut self, cfg: &ServeConfig, tables: &ZipfTables) -> Option<(u64, u32)> {
        let (env, _) = cfg.envelope_at(self.t);
        if self.rng.unit_f64() * env >= cfg.rate_at(self.t) {
            return None;
        }
        let user = self.rng.below(cfg.n_users);
        let tenant = tables.sample(cfg.burst_active(self.t), self.rng.unit_f64());
        self.accepted += 1;
        Some((user, tenant))
    }
}

/// The full accepted-arrival stream source `i` will emit, computed
/// offline through the identical state-stepping code the simulation
/// object runs. For determinism and rate-integral tests.
pub fn arrival_stream(cfg: &ServeConfig, source: usize) -> Vec<Arrival> {
    let tables = ZipfTables::new(cfg);
    let mut st = SourceState::fresh(cfg, cfg.source_id(source));
    let mut out = Vec::new();
    while st.next_candidate(cfg).is_some() {
        if let Some((user, tenant)) = st.classify(cfg, &tables) {
            out.push(Arrival {
                at: st.t,
                user,
                tenant,
            });
        }
    }
    out
}

struct Source {
    cfg: ServeConfig,
    me: u32,
    tables: ZipfTables,
    state: SourceState,
}

impl Source {
    fn schedule_next(&mut self, ctx: &mut dyn ExecutionContext) {
        if let Some(c) = self.state.next_candidate(&self.cfg) {
            ctx.try_send_at(
                ObjectId(self.me),
                VirtualTime::new(c),
                K_CANDIDATE,
                Vec::new(),
            )
            .expect("serve candidate schedule");
        }
    }
}

impl SimObject for Source {
    fn name(&self) -> String {
        format!("source-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        self.schedule_next(ctx);
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_CANDIDATE);
        debug_assert_eq!(ctx.now().ticks(), self.state.t);
        if let Some((user, tenant)) = self.state.classify(&self.cfg, &self.tables) {
            let router = self.cfg.router_id(user as usize % self.cfg.n_routers);
            let mut w = PayloadWriter::new();
            w.u64(user).u32(tenant).u64(self.state.t);
            ctx.send(
                ObjectId(router),
                self.cfg.route_delay_us.max(1),
                K_REQ,
                w.finish(),
            );
        }
        self.schedule_next(ctx);
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<SourceState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<SourceState>()
    }
}

// -------------------------------------------------------------- router

#[derive(Clone, Debug)]
struct RouterState {
    routed: u64,
}
impl ObjectState for RouterState {}

struct Router {
    cfg: ServeConfig,
    me: u32,
    state: RouterState,
}

impl SimObject for Router {
    fn name(&self) -> String {
        format!("router-{}", self.me)
    }
    fn init(&mut self, _ctx: &mut dyn ExecutionContext) {}
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_REQ);
        let mut r = PayloadReader::new(&ev.payload);
        let user = r.u64().expect("serve req user");
        let tenant = r.u32().expect("serve req tenant");
        let t0 = r.u64().expect("serve req t0");
        self.state.routed += 1;
        // Tenant affinity: the whole point. Hot tenants concentrate on
        // low-numbered stations, hence low-numbered LPs.
        let station = self.cfg.station_id(tenant as usize % self.cfg.n_stations);
        let mut w = PayloadWriter::new();
        w.u64(user).u32(tenant).u64(t0);
        ctx.send(
            ObjectId(station),
            self.cfg.dispatch_delay_us.max(1),
            K_DISPATCH,
            w.finish(),
        );
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<RouterState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<RouterState>()
    }
}

// ------------------------------------------------------------- station

#[derive(Clone, Debug, PartialEq, Eq)]
struct Req {
    user: u64,
    tenant: u32,
    t0: u64,
}

/// Station rollback state — the queue, the KV cache, and the server
/// occupancy are all time-warped, so a straggler reshapes batching,
/// admission and every subsequent departure.
#[derive(Clone, Debug)]
pub struct StationState {
    rng: SimRng,
    queue: VecDeque<Req>,
    /// A batch-window close is already scheduled.
    batch_pending: bool,
    /// Server occupancy: batches serialize behind this.
    busy_until: u64,
    /// Resident tenants, LRU first.
    kv: Vec<u32>,
    /// Requests served (left in a batch).
    pub served: u64,
    /// Requests bounced back to the queue by the reload budget.
    pub requeued: u64,
    /// Tenants evicted from the KV cache.
    pub evictions: u64,
    /// Batches executed.
    pub batches: u64,
    /// Decode-step self-events executed.
    pub ticks: u64,
}
impl ObjectState for StationState {}

impl StationState {
    fn fresh(cfg: &ServeConfig, me: u32) -> Self {
        StationState {
            rng: SimRng::derive(cfg.seed, 0x5EE0_0000 + me as u64),
            queue: VecDeque::new(),
            batch_pending: false,
            busy_until: 0,
            kv: Vec::new(),
            served: 0,
            requeued: 0,
            evictions: 0,
            batches: 0,
            ticks: 0,
        }
    }

    /// KV admission for one request. A resident tenant is a hit
    /// (LRU-touched); a missing tenant is loaded (`loads` counts the
    /// service-time penalty), evicting the LRU resident when the cache
    /// is full. Evictions under pressure are rationed by
    /// `evict_budget` — the batch's first request is exempt (progress
    /// guarantee). Returns `false` when the budget is spent and the
    /// request must be re-queued.
    fn admit(
        &mut self,
        cfg: &ServeConfig,
        tenant: u32,
        loads: &mut usize,
        evict_budget: &mut usize,
        first: bool,
    ) -> bool {
        if let Some(pos) = self.kv.iter().position(|&t| t == tenant) {
            let t = self.kv.remove(pos);
            self.kv.push(t);
            return true;
        }
        if self.kv.len() >= cfg.kv_slots.max(1) {
            if !first {
                if *evict_budget == 0 {
                    return false;
                }
                *evict_budget -= 1;
            }
            self.kv.remove(0);
            self.evictions += 1;
        }
        *loads += 1;
        self.kv.push(tenant);
        true
    }
}

struct Station {
    cfg: ServeConfig,
    me: u32,
    state: StationState,
}

impl Station {
    fn close_batch(&mut self, ctx: &mut dyn ExecutionContext) {
        let now = ctx.now().ticks();
        self.state.batch_pending = false;
        let mut batch = Vec::new();
        let mut deferred = Vec::new();
        let mut loads = 0usize;
        let mut evict_budget = self.cfg.max_reloads_per_batch;
        while batch.len() < self.cfg.max_batch {
            let Some(req) = self.state.queue.pop_front() else {
                break;
            };
            let first = batch.is_empty();
            if self
                .state
                .admit(&self.cfg, req.tenant, &mut loads, &mut evict_budget, first)
            {
                batch.push(req);
            } else {
                self.state.requeued += 1;
                deferred.push(req);
            }
        }
        // Bounced requests keep their place at the head of the queue;
        // the next window's fresh reload budget will admit them.
        for req in deferred.into_iter().rev() {
            self.state.queue.push_front(req);
        }
        if batch.is_empty() {
            return;
        }
        let b = batch.len() as f64;
        let dur = self.cfg.service_base_us
            + (self.cfg.service_per_item_us * b.powf(self.cfg.batch_exponent)) as u64
            + loads as u64 * self.cfg.reload_us
            + self.state.rng.below(self.cfg.service_jitter_us + 1);
        let start = self.state.busy_until.max(now);
        let depart = start + dur.max(1);
        self.state.busy_until = depart;
        self.state.batches += 1;
        self.state.served += batch.len() as u64;
        // The decode chain: evenly spaced self-events across the
        // batch's service interval, strictly increasing, strictly
        // after `now` — pure event density on the hot path.
        let steps = self.cfg.decode_steps.max(1) as u64;
        let mut prev = now;
        for k in 1..steps {
            let at = (start + dur * k / steps).max(prev + 1);
            prev = at;
            ctx.try_send_at(ObjectId(self.me), VirtualTime::new(at), K_TICK, Vec::new())
                .expect("serve decode tick");
        }
        for req in &batch {
            let sink = self.cfg.sink_id(req.user as usize % self.cfg.n_sinks);
            let mut w = PayloadWriter::new();
            w.u64(req.user).u32(req.tenant).u64(req.t0);
            ctx.try_send_at(
                ObjectId(sink),
                VirtualTime::new(depart + self.cfg.sink_delay_us),
                K_DONE,
                w.finish(),
            )
            .expect("serve done");
        }
        if !self.state.queue.is_empty() {
            self.state.batch_pending = true;
            ctx.try_send_at(
                ObjectId(self.me),
                VirtualTime::new(now + self.cfg.batch_window_us.max(1)),
                K_BATCH,
                Vec::new(),
            )
            .expect("serve next window");
        }
    }
}

impl SimObject for Station {
    fn name(&self) -> String {
        format!("serve-station-{}", self.me)
    }
    fn init(&mut self, _ctx: &mut dyn ExecutionContext) {}
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        match ev.kind {
            K_DISPATCH => {
                let mut r = PayloadReader::new(&ev.payload);
                let req = Req {
                    user: r.u64().expect("serve dispatch user"),
                    tenant: r.u32().expect("serve dispatch tenant"),
                    t0: r.u64().expect("serve dispatch t0"),
                };
                self.state.queue.push_back(req);
                if !self.state.batch_pending {
                    self.state.batch_pending = true;
                    let at = ctx.now().ticks() + self.cfg.batch_window_us.max(1);
                    ctx.try_send_at(ObjectId(self.me), VirtualTime::new(at), K_BATCH, Vec::new())
                        .expect("serve window open");
                }
            }
            K_BATCH => self.close_batch(ctx),
            K_TICK => self.state.ticks += 1,
            k => panic!("serve station got unexpected kind {k}"),
        }
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<StationState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<StationState>()
            + self.state.queue.len() * std::mem::size_of::<Req>()
            + self.state.kv.len() * std::mem::size_of::<u32>()
    }
}

// ---------------------------------------------------------------- sink

/// Sink committed state: an end-to-end latency histogram (log₂ µs
/// buckets) plus totals. Lives in rollback state, so the committed
/// digest covers end-to-end behavior.
#[derive(Clone, Debug, Default)]
pub struct SinkState {
    /// Completed requests.
    pub done: u64,
    /// Sum of end-to-end latencies, µs.
    pub sum_latency_us: u64,
    /// Max end-to-end latency, µs.
    pub max_latency_us: u64,
    /// `buckets[i]` counts latencies with `floor(log2(us)) == i`.
    pub buckets: [u64; 24],
}
impl ObjectState for SinkState {}

impl SinkState {
    /// Record one completion.
    pub fn record(&mut self, latency_us: u64) {
        self.done += 1;
        self.sum_latency_us += latency_us;
        self.max_latency_us = self.max_latency_us.max(latency_us);
        let idx = (latency_us.max(1).ilog2() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Mean latency, µs.
    pub fn mean_latency_us(&self) -> f64 {
        if self.done == 0 {
            0.0
        } else {
            self.sum_latency_us as f64 / self.done as f64
        }
    }
}

struct Sink {
    me: u32,
    state: SinkState,
}

impl SimObject for Sink {
    fn name(&self) -> String {
        format!("sink-{}", self.me)
    }
    fn init(&mut self, _ctx: &mut dyn ExecutionContext) {}
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_DONE);
        let mut r = PayloadReader::new(&ev.payload);
        let _user = r.u64().expect("serve done user");
        let _tenant = r.u32().expect("serve done tenant");
        let t0 = r.u64().expect("serve done t0");
        self.state.record(ctx.now().ticks().saturating_sub(t0));
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<SinkState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<SinkState>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::object::RecordingContext;
    use warp_exec::{run_sequential, run_virtual, run_virtual_inspect, VirtualOptions};

    #[test]
    fn arrival_stream_is_seed_deterministic_across_fresh_builds() {
        // Satellite: same config + seed ⇒ byte-identical stream from
        // two independently constructed configs.
        let a = ServeConfig::small(77);
        let b = ServeConfig::small(77);
        for s in 0..a.n_sources {
            assert_eq!(arrival_stream(&a, s), arrival_stream(&b, s));
        }
        // Different seeds diverge; different sources diverge.
        let c = ServeConfig::small(78);
        assert_ne!(arrival_stream(&a, 0), arrival_stream(&c, 0));
        assert_ne!(arrival_stream(&a, 0), arrival_stream(&a, 1));
    }

    #[test]
    fn arrival_count_matches_the_rate_integral() {
        // A long horizon for tight statistics: ≥5k arrivals.
        let cfg = ServeConfig {
            horizon_us: 1_200_000,
            ..ServeConfig::small(11)
        };
        let total: usize = (0..cfg.n_sources)
            .map(|s| arrival_stream(&cfg, s).len())
            .sum();
        let expected = cfg.expected_arrivals();
        assert!(expected > 5_000.0, "scenario too small: {expected}");
        let err = (total as f64 - expected).abs() / expected;
        assert!(
            err < 0.10,
            "thinned arrivals {total} vs analytic {expected:.0} ({:.1}% off)",
            err * 100.0
        );
    }

    #[test]
    fn arrivals_are_ordered_bounded_and_rate_dominated() {
        let cfg = ServeConfig::small(5);
        for s in 0..cfg.n_sources {
            let stream = arrival_stream(&cfg, s);
            assert!(!stream.is_empty());
            let mut prev = 0;
            for a in &stream {
                assert!(a.at > prev, "arrivals must be strictly increasing");
                assert!(a.at < cfg.horizon_us);
                assert!(a.user < cfg.n_users);
                assert!((a.tenant as usize) < cfg.n_tenants);
                prev = a.at;
            }
        }
        // The envelope dominates the true rate everywhere.
        for t in (0..cfg.horizon_us).step_by(777) {
            let (env, _) = cfg.envelope_at(t);
            assert!(cfg.rate_at(t) <= env + 1e-12, "envelope violated at {t}");
        }
    }

    #[test]
    fn bursts_skew_tenants_hot() {
        let cfg = ServeConfig::small(13);
        let mid = |a: &Arrival| cfg.burst_active(a.at);
        let (mut hot_burst, mut n_burst, mut hot_base, mut n_base) = (0u64, 0u64, 0u64, 0u64);
        for s in 0..cfg.n_sources {
            for a in arrival_stream(&cfg, s) {
                let hot = (a.tenant as usize) < cfg.n_tenants / 8;
                if mid(&a) {
                    n_burst += 1;
                    hot_burst += hot as u64;
                } else {
                    n_base += 1;
                    hot_base += hot as u64;
                }
            }
        }
        assert!(n_burst > 100 && n_base > 100);
        let f_burst = hot_burst as f64 / n_burst as f64;
        let f_base = hot_base as f64 / n_base as f64;
        assert!(
            f_burst > 1.5 * f_base,
            "burst skew missing: hot share {f_burst:.2} in-burst vs {f_base:.2} outside"
        );
    }

    #[test]
    fn station_batches_reload_and_requeue() {
        let cfg = ServeConfig {
            kv_slots: 2,
            max_reloads_per_batch: 1,
            max_batch: 8,
            ..ServeConfig::small(3)
        };
        let mut st = Station {
            cfg: cfg.clone(),
            me: cfg.station_id(0),
            state: StationState::fresh(&cfg, cfg.station_id(0)),
        };
        // Five distinct tenants queued: slots 2 + reload budget 1 ⇒
        // the first batch serves 3 and re-queues 2.
        for tenant in 0..5u32 {
            st.state.queue.push_back(Req {
                user: tenant as u64,
                tenant,
                t0: 100,
            });
        }
        let mut ctx = RecordingContext::new(ObjectId(st.me), VirtualTime::new(500));
        st.close_batch(&mut ctx);
        assert_eq!(st.state.served, 3);
        assert_eq!(st.state.requeued, 2);
        assert_eq!(st.state.queue.len(), 2);
        assert!(st.state.batch_pending, "leftovers must reopen the window");
        let dones = ctx.sent.iter().filter(|e| e.2 == K_DONE).count();
        let ticks = ctx.sent.iter().filter(|e| e.2 == K_TICK).count();
        let windows = ctx.sent.iter().filter(|e| e.2 == K_BATCH).count();
        assert_eq!(dones, 3);
        assert_eq!(ticks, cfg.decode_steps as usize - 1);
        assert_eq!(windows, 1);
        // Next window: fresh budget admits the bounced tenants.
        let mut ctx2 = RecordingContext::new(ObjectId(st.me), VirtualTime::new(1_000));
        st.close_batch(&mut ctx2);
        assert_eq!(st.state.served, 5);
        assert!(st.state.queue.is_empty());
        assert!(st.state.evictions >= 2);
    }

    #[test]
    fn batch_service_time_is_sublinear() {
        let cfg = ServeConfig {
            service_jitter_us: 0,
            ..ServeConfig::small(1)
        };
        let dur = |b: f64| {
            cfg.service_base_us as f64 + cfg.service_per_item_us * b.powf(cfg.batch_exponent)
        };
        let per_item_small = dur(2.0) / 2.0;
        let per_item_big = dur(8.0) / 8.0;
        assert!(
            per_item_big < per_item_small,
            "batching must amortize: {per_item_big:.1} vs {per_item_small:.1} µs/req"
        );
    }

    #[test]
    fn sink_histogram_accumulates() {
        let mut s = SinkState::default();
        s.record(1);
        s.record(900);
        s.record(1_000_000);
        assert_eq!(s.done, 3);
        assert_eq!(s.max_latency_us, 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[9], 1); // 2^9 ≤ 900 < 2^10
        assert!(s.mean_latency_us() > 0.0);
    }

    #[test]
    fn virtual_matches_sequential_and_rolls_back() {
        let cfg = ServeConfig::small(21);
        let spec = cfg.spec().with_gvt_period(None).with_traces();
        let seq = run_sequential(&spec);
        let tw = run_virtual(&spec);
        assert_eq!(seq.committed_events, tw.committed_events);
        assert_eq!(seq.trace_digests(), tw.trace_digests());
        assert!(
            tw.kernel.rollbacks() > 0,
            "open-arrival pipeline should be rollback-rich"
        );
    }

    #[test]
    fn every_request_reaches_a_sink() {
        // Conservation: accepted arrivals == sink completions once the
        // run drains (no arrivals after the horizon, queues empty).
        let cfg = ServeConfig::small(9);
        let arrivals: u64 = (0..cfg.n_sources)
            .map(|s| arrival_stream(&cfg, s).len() as u64)
            .sum();
        let spec = cfg.spec().with_gvt_period(None);
        let mut done = 0u64;
        run_virtual_inspect(&spec, &VirtualOptions::default(), |lps| {
            for lp in lps {
                for o in lp.objects() {
                    if o.id().0 >= cfg.sink_id(0) {
                        done += o.snapshot_state().get::<SinkState>().done;
                    }
                }
            }
        });
        assert!(arrivals > 1_000, "scenario too small: {arrivals}");
        assert_eq!(done, arrivals, "requests were lost or duplicated");
    }
}
