//! LOGIC: gate-level digital circuit simulation.
//!
//! The paper's cancellation observations (Section 5) come from "digital
//! systems models written in the hardware description language VHDL" —
//! this model recreates that workload class: a netlist of logic gates
//! with propagation delays, driven by stimulus vectors, simulated with
//! classic event-driven semantics (a gate schedules an output event only
//! when its output *changes*).
//!
//! Gate evaluation is a pure function of the gate's latched input values,
//! and output suppression on no-change keeps traffic sparse — after a
//! rollback most gates regenerate exactly the messages they sent before,
//! so digital logic sits on the lazy-friendly end of the spectrum, with
//! occasional misses where a straggler actually flips a signal. That
//! mixture (mostly hits, occasional real misses) is precisely the regime
//! in which the paper observed neither strategy dominating.
//!
//! Virtual time is in gate-delay units (≈ nanoseconds).

use crate::util::spread;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    ErasedState, Event, ExecutionContext, LpId, NodeId, ObjectId, ObjectState, Partition, SimObject,
};
use warp_exec::SimulationSpec;

/// A signal transition: (input pin, new value).
pub const K_SIGNAL: u16 = 40;
/// Stimulus self-timer at a driver.
pub const K_STIM: u16 = 41;

/// Supported gate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Logical OR of all inputs.
    Or,
    /// Exclusive OR of all inputs.
    Xor,
    /// NOT of input 0 (single-input).
    Not,
    /// NAND of all inputs.
    Nand,
}

impl GateKind {
    /// Evaluate over the latched inputs.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |a, &b| a ^ b),
            GateKind::Not => !inputs.first().copied().unwrap_or(false),
            GateKind::Nand => !inputs.iter().all(|&b| b),
        }
    }
}

/// One fan-out edge: deliver my output to `gate`'s input pin `pin`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Wire {
    /// Destination gate (object id).
    pub gate: u32,
    /// Destination input pin.
    pub pin: u8,
}

/// Static description of one gate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GateSpec {
    /// Function computed.
    pub kind: GateKind,
    /// Number of input pins.
    pub n_inputs: u8,
    /// Propagation delay in ticks.
    pub delay: u64,
    /// Fan-out.
    pub outputs: Vec<Wire>,
}

/// A stimulus driver toggling a primary input.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriverSpec {
    /// Mean ticks between toggles.
    pub mean_period: f64,
    /// Toggles to emit.
    pub n_toggles: u64,
    /// Fan-out.
    pub outputs: Vec<Wire>,
}

/// A full netlist: drivers first, then gates (object ids in that order).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Netlist {
    /// Stimulus drivers.
    pub drivers: Vec<DriverSpec>,
    /// Gates.
    pub gates: Vec<GateSpec>,
    /// Logical processes to partition over.
    pub n_lps: usize,
    /// Workload seed (driver jitter).
    pub seed: u64,
}

impl Netlist {
    /// Total simulation objects.
    pub fn n_objects(&self) -> usize {
        self.drivers.len() + self.gates.len()
    }

    /// Generate a random layered combinational netlist: `width` gates per
    /// layer, `depth` layers, each gate fed by gates (or drivers) of the
    /// previous layer. Structure is seed-deterministic.
    pub fn random(
        width: usize,
        depth: usize,
        n_drivers: usize,
        n_lps: usize,
        n_toggles: u64,
        seed: u64,
    ) -> Netlist {
        assert!(width >= 2 && depth >= 1 && n_drivers >= 1);
        let mut rng = SimRng::derive(seed, 0x0D16_17A1);
        let drivers = (0..n_drivers)
            .map(|_| DriverSpec {
                mean_period: 40.0 + rng.below(40) as f64,
                n_toggles,
                outputs: Vec::new(),
            })
            .collect::<Vec<_>>();
        let mut gates: Vec<GateSpec> = Vec::with_capacity(width * depth);
        for layer in 0..depth {
            for _ in 0..width {
                let kind = match rng.below(5) {
                    0 => GateKind::And,
                    1 => GateKind::Or,
                    2 => GateKind::Xor,
                    3 => GateKind::Not,
                    _ => GateKind::Nand,
                };
                let n_inputs = if kind == GateKind::Not { 1 } else { 2 };
                gates.push(GateSpec {
                    kind,
                    n_inputs,
                    delay: 1 + rng.below(4),
                    outputs: Vec::new(),
                });
                let _ = layer;
            }
        }
        // Wire inputs: layer 0 feeds from drivers, layer k from layer k-1.
        let mut net = Netlist {
            drivers,
            gates,
            n_lps,
            seed,
        };
        for layer in 0..depth {
            for g in 0..width {
                let gate_idx = layer * width + g;
                let n_in = net.gates[gate_idx].n_inputs;
                for pin in 0..n_in {
                    let dst = Wire {
                        gate: (n_drivers + gate_idx) as u32,
                        pin,
                    };
                    if layer == 0 {
                        let d = spread(seed ^ (gate_idx as u64) << 8 | pin as u64, 3) as usize
                            % n_drivers;
                        net.drivers[d].outputs.push(dst);
                    } else {
                        let p =
                            spread(seed ^ (gate_idx as u64) << 8 | pin as u64, 11) as usize % width;
                        let src = (layer - 1) * width + p;
                        net.gates[src].outputs.push(dst);
                    }
                }
            }
        }
        net
    }

    /// Partition: blocked by object id (keeps layers together, so signal
    /// propagation crosses LPs at layer boundaries).
    pub fn partition(&self) -> Partition {
        let n = self.n_objects();
        let per = n.div_ceil(self.n_lps);
        let lp_of = (0..n)
            .map(|o| LpId((o / per).min(self.n_lps - 1) as u32))
            .collect();
        let nodes = (0..self.n_lps).map(|l| NodeId(l as u32)).collect();
        Partition::new(lp_of, nodes).expect("logic partition is well formed")
    }

    /// Build the simulation spec.
    pub fn spec(&self) -> SimulationSpec {
        let net = Arc::new(self.clone());
        SimulationSpec::new(
            self.partition(),
            Arc::new(move |id: ObjectId| build_object(&net, id)),
        )
    }
}

fn encode_signal(pin: u8, value: bool) -> Vec<u8> {
    let mut w = PayloadWriter::with_capacity(2);
    w.u8(pin).u8(value as u8);
    w.finish()
}

fn decode_signal(payload: &[u8]) -> (u8, bool) {
    let mut r = PayloadReader::new(payload);
    let pin = r.u8().expect("signal pin");
    let value = r.u8().expect("signal value") != 0;
    (pin, value)
}

fn build_object(net: &Arc<Netlist>, id: ObjectId) -> Box<dyn SimObject> {
    let i = id.index();
    if i < net.drivers.len() {
        let spec = net.drivers[i].clone();
        Box::new(Driver {
            me: id.0,
            spec,
            state: DriverState {
                rng: SimRng::derive(net.seed, id.0 as u64),
                level: false,
                emitted: 0,
            },
        })
    } else {
        let spec = net.gates[i - net.drivers.len()].clone();
        let n = spec.n_inputs as usize;
        Box::new(Gate {
            me: id.0,
            spec,
            state: GateState {
                inputs: vec![false; n],
                output: false,
            },
        })
    }
}

// -------------------------------------------------------------- Driver --

#[derive(Clone, Debug)]
struct DriverState {
    rng: SimRng,
    level: bool,
    emitted: u64,
}
impl ObjectState for DriverState {}

struct Driver {
    me: u32,
    spec: DriverSpec,
    state: DriverState,
}

impl Driver {
    fn schedule(&mut self, ctx: &mut dyn ExecutionContext) {
        if self.state.emitted >= self.spec.n_toggles {
            return;
        }
        let gap = self.state.rng.exp_ticks(self.spec.mean_period);
        ctx.send(ctx.me(), gap, K_STIM, Vec::new());
    }
}

impl SimObject for Driver {
    fn name(&self) -> String {
        format!("driver-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        self.schedule(ctx);
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_STIM);
        self.state.level = !self.state.level;
        self.state.emitted += 1;
        for w in &self.spec.outputs {
            ctx.send(
                ObjectId(w.gate),
                1,
                K_SIGNAL,
                encode_signal(w.pin, self.state.level),
            );
        }
        self.schedule(ctx);
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<DriverState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<DriverState>()
    }
}

// ---------------------------------------------------------------- Gate --

#[derive(Clone, Debug)]
struct GateState {
    inputs: Vec<bool>,
    output: bool,
}
impl ObjectState for GateState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.inputs.len()
    }
}

struct Gate {
    me: u32,
    spec: GateSpec,
    state: GateState,
}

impl SimObject for Gate {
    fn name(&self) -> String {
        format!("gate-{}", self.me)
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_SIGNAL);
        let (pin, value) = decode_signal(&ev.payload);
        self.state.inputs[pin as usize] = value;
        let new_out = self.spec.kind.eval(&self.state.inputs);
        if new_out != self.state.output {
            // Event-driven semantics: propagate only on change.
            self.state.output = new_out;
            for w in &self.spec.outputs {
                ctx.send(
                    ObjectId(w.gate),
                    self.spec.delay,
                    K_SIGNAL,
                    encode_signal(w.pin, new_out),
                );
            }
        }
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<GateState>().clone();
    }
    fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_exec::{run_sequential, run_virtual};

    #[test]
    fn gate_functions_truth_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
    }

    #[test]
    fn signal_roundtrip() {
        let (pin, v) = decode_signal(&encode_signal(3, true));
        assert_eq!((pin, v), (3, true));
    }

    #[test]
    fn random_netlist_is_wired_completely() {
        let net = Netlist::random(6, 4, 3, 4, 10, 42);
        assert_eq!(net.n_objects(), 3 + 24);
        // Every gate input pin is driven exactly once.
        let mut fanin = vec![0u32; net.n_objects()];
        for d in &net.drivers {
            for w in &d.outputs {
                fanin[w.gate as usize] += 1;
            }
        }
        for g in &net.gates {
            for w in &g.outputs {
                fanin[w.gate as usize] += 1;
            }
        }
        for (i, g) in net.gates.iter().enumerate() {
            assert_eq!(
                fanin[net.drivers.len() + i],
                g.n_inputs as u32,
                "gate {i} fan-in mismatch"
            );
        }
        // Determinism of generation.
        let again = Netlist::random(6, 4, 3, 4, 10, 42);
        assert_eq!(format!("{net:?}"), format!("{again:?}"));
    }

    #[test]
    fn virtual_matches_sequential() {
        let net = Netlist::random(8, 5, 4, 4, 40, 7);
        let spec = net.spec().with_gvt_period(None).with_traces();
        let seq = run_sequential(&spec);
        let tw = run_virtual(&spec);
        assert_eq!(seq.committed_events, tw.committed_events);
        assert_eq!(seq.trace_digests(), tw.trace_digests());
        assert!(seq.committed_events > 100, "circuit never switched");
    }

    #[test]
    fn logic_is_hit_rich_under_lazy_cancellation() {
        use warp_core::policy::{
            CancellationMode, FixedCancellation, FixedCheckpoint, ObjectPolicies,
        };
        let net = Netlist::random(10, 6, 5, 4, 150, 3);
        let spec = net
            .spec()
            .with_gvt_period(None)
            .with_policies(Arc::new(|_| {
                ObjectPolicies::new(
                    Box::new(FixedCancellation(CancellationMode::Lazy)),
                    Box::new(FixedCheckpoint::new(4)),
                )
            }));
        let tw = run_virtual(&spec);
        assert!(
            tw.kernel.rollbacks() > 0,
            "no rollbacks — enlarge the circuit"
        );
        let hits = tw.kernel.lazy_hits;
        let misses = tw.kernel.lazy_misses;
        assert!(
            hits > misses,
            "gate re-evaluation mostly regenerates identical transitions: {hits}h/{misses}m"
        );
    }

    #[test]
    fn half_adder_computes() {
        // A hand-wired half adder: driver a, driver b; XOR -> sum,
        // AND -> carry. Checked by counting events (both outputs switch).
        let net = Netlist {
            drivers: vec![
                DriverSpec {
                    mean_period: 50.0,
                    n_toggles: 8,
                    outputs: vec![Wire { gate: 2, pin: 0 }, Wire { gate: 3, pin: 0 }],
                },
                DriverSpec {
                    mean_period: 70.0,
                    n_toggles: 8,
                    outputs: vec![Wire { gate: 2, pin: 1 }, Wire { gate: 3, pin: 1 }],
                },
            ],
            gates: vec![
                GateSpec {
                    kind: GateKind::Xor,
                    n_inputs: 2,
                    delay: 2,
                    outputs: vec![],
                },
                GateSpec {
                    kind: GateKind::And,
                    n_inputs: 2,
                    delay: 2,
                    outputs: vec![],
                },
            ],
            n_lps: 2,
            seed: 5,
        };
        let spec = net.spec().with_gvt_period(None).with_traces();
        let seq = run_sequential(&spec);
        let tw = run_virtual(&spec);
        assert_eq!(seq.trace_digests(), tw.trace_digests());
        // 16 stimulus self-events + 16 signal deliveries per gate input
        // chain: just require the adder actually computed.
        assert!(seq.committed_events >= 16 + 32);
    }
}

/// Builders for hand-wired reference circuits (also used by tests).
pub mod circuits {
    use super::*;

    /// An n-bit ripple-carry adder netlist.
    ///
    /// Drivers: `a`-bits (objects `0..n`), `b`-bits (`n..2n`), and a
    /// constant-0 carry-in (`2n`). Per bit, five gates in the classic
    /// full-adder arrangement; returns the netlist plus the object ids of
    /// the sum gates (LSB first) and of the final carry-out gate.
    pub fn ripple_carry_adder(
        n_bits: usize,
        a: u64,
        b: u64,
        n_lps: usize,
        seed: u64,
    ) -> (Netlist, Vec<u32>, u32) {
        assert!((1..=63).contains(&n_bits));
        let n_drivers = 2 * n_bits + 1;
        let gate_id = |bit: usize, which: usize| (n_drivers + bit * 5 + which) as u32;
        // which: 0=X1, 1=X2(sum), 2=A1, 3=A2, 4=OR(cout)
        let mut drivers = Vec::with_capacity(n_drivers);
        for bit in 0..n_bits {
            drivers.push(DriverSpec {
                mean_period: 20.0,
                n_toggles: u64::from(a >> bit & 1 == 1),
                outputs: vec![
                    Wire {
                        gate: gate_id(bit, 0),
                        pin: 0,
                    },
                    Wire {
                        gate: gate_id(bit, 2),
                        pin: 0,
                    },
                ],
            });
        }
        for bit in 0..n_bits {
            drivers.push(DriverSpec {
                mean_period: 20.0,
                n_toggles: u64::from(b >> bit & 1 == 1),
                outputs: vec![
                    Wire {
                        gate: gate_id(bit, 0),
                        pin: 1,
                    },
                    Wire {
                        gate: gate_id(bit, 2),
                        pin: 1,
                    },
                ],
            });
        }
        // Constant-0 carry-in: a driver that never toggles.
        drivers.push(DriverSpec {
            mean_period: 20.0,
            n_toggles: 0,
            outputs: vec![
                Wire {
                    gate: gate_id(0, 1),
                    pin: 1,
                },
                Wire {
                    gate: gate_id(0, 3),
                    pin: 1,
                },
            ],
        });

        let mut gates = Vec::with_capacity(5 * n_bits);
        for bit in 0..n_bits {
            let carry_out_targets = if bit + 1 < n_bits {
                vec![
                    Wire {
                        gate: gate_id(bit + 1, 1),
                        pin: 1,
                    },
                    Wire {
                        gate: gate_id(bit + 1, 3),
                        pin: 1,
                    },
                ]
            } else {
                Vec::new()
            };
            // X1 = a ^ b
            gates.push(GateSpec {
                kind: GateKind::Xor,
                n_inputs: 2,
                delay: 1,
                outputs: vec![
                    Wire {
                        gate: gate_id(bit, 1),
                        pin: 0,
                    },
                    Wire {
                        gate: gate_id(bit, 3),
                        pin: 0,
                    },
                ],
            });
            // X2 = X1 ^ cin  (the sum bit; no fan-out)
            gates.push(GateSpec {
                kind: GateKind::Xor,
                n_inputs: 2,
                delay: 1,
                outputs: vec![],
            });
            // A1 = a & b
            gates.push(GateSpec {
                kind: GateKind::And,
                n_inputs: 2,
                delay: 1,
                outputs: vec![Wire {
                    gate: gate_id(bit, 4),
                    pin: 0,
                }],
            });
            // A2 = X1 & cin
            gates.push(GateSpec {
                kind: GateKind::And,
                n_inputs: 2,
                delay: 1,
                outputs: vec![Wire {
                    gate: gate_id(bit, 4),
                    pin: 1,
                }],
            });
            // OR = A1 | A2  (the carry out)
            gates.push(GateSpec {
                kind: GateKind::Or,
                n_inputs: 2,
                delay: 1,
                outputs: carry_out_targets,
            });
        }
        let sums = (0..n_bits).map(|bit| gate_id(bit, 1)).collect();
        let cout = gate_id(n_bits - 1, 4);
        (
            Netlist {
                drivers,
                gates,
                n_lps,
                seed,
            },
            sums,
            cout,
        )
    }
}

#[cfg(test)]
mod adder_tests {
    use super::circuits::ripple_carry_adder;
    use super::*;
    use warp_exec::{run_virtual_inspect, VirtualOptions};

    fn gate_output(lps: &[warp_core::LpRuntime], id: u32) -> bool {
        for lp in lps {
            for o in lp.objects() {
                if o.id().0 == id {
                    return o.snapshot_state().get::<GateState>().output;
                }
            }
        }
        panic!("gate {id} not found");
    }

    /// The optimistic kernel must *compute correct arithmetic*: build an
    /// adder, feed operands as bit toggles, and read the settled outputs
    /// — a semantic end-to-end check, not just engine-vs-engine equality.
    #[test]
    fn ripple_carry_adder_adds() {
        for (a, b, seed) in [
            (0u64, 0u64, 1u64),
            (5, 3, 2),
            (255, 1, 3),
            (0b1010_1100, 0b0110_0110, 4),
            (97, 158, 5),
        ] {
            let n_bits = 8;
            let (net, sums, cout) = ripple_carry_adder(n_bits, a, b, 3, seed);
            let spec = net.spec().with_gvt_period(None);
            let mut got = 0u64;
            let mut carry = false;
            run_virtual_inspect(&spec, &VirtualOptions::default(), |lps| {
                for (bit, &sum_gate) in sums.iter().enumerate() {
                    if gate_output(lps, sum_gate) {
                        got |= 1 << bit;
                    }
                }
                carry = gate_output(lps, cout);
            });
            let expect = a + b;
            let expect_bits = expect & ((1 << n_bits) - 1);
            let expect_carry = expect >> n_bits & 1 == 1;
            assert_eq!(got, expect_bits, "{a} + {b}: sum bits wrong");
            assert_eq!(carry, expect_carry, "{a} + {b}: carry wrong");
        }
    }
}
