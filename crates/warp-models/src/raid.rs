//! RAID: the disk-array model (Section 7 of the paper).
//!
//! Source processes generate read requests that flow through fork
//! (controller) objects to a striped array of disks; disks answer the
//! originating source. Each request token carries the geometry the paper
//! lists — disk count, cylinders, tracks, sectors, sector size, stripe
//! and parity information. Virtual time is in microseconds.
//!
//! Cancellation behaviour is heterogeneous *by construction*, matching
//! the paper's observation for Figure 6:
//!
//! * **Disks favor lazy cancellation** — service time is a pure function
//!   of request geometry (seek + rotation + transfer from a fixed
//!   reference position), so re-execution after a rollback regenerates
//!   byte-identical responses.
//! * **Forks favor aggressive cancellation** — a fork stamps every
//!   dispatch with its own monotone sequence number (the array
//!   controller's request tag). A straggler reorders the requests seen
//!   after rollback, every regenerated dispatch carries a different tag,
//!   and held-back lazy messages would all be cancelled anyway.
//!
//! Partition: LP *k* hosts 5 sources and 2 disks, but fork *k* is placed
//! on LP *(k+1) mod L*, so the source→fork hop crosses LPs and forks see
//! genuinely concurrent traffic (an LP's objects are causally serialized
//! internally — a fork co-located with its sources would never roll
//! back, hiding exactly the effect Figure 6 measures).

use crate::util::spread;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    ErasedState, Event, ExecutionContext, LpId, NodeId, ObjectId, ObjectState, Partition, SimObject,
};
use warp_exec::SimulationSpec;

/// Source self-timer tick.
pub const K_TICK: u16 = 10;
/// Source → fork read request.
pub const K_RREQ: u16 = 11;
/// Fork → disk dispatch.
pub const K_DREQ: u16 = 12;
/// Disk → source completion.
pub const K_DRESP: u16 = 13;

/// RAID configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RaidConfig {
    /// Request-generating source processes.
    pub n_sources: usize,
    /// Fork (array controller) objects.
    pub n_forks: usize,
    /// Disks in the array.
    pub n_disks: usize,
    /// Logical processes.
    pub n_lps: usize,
    /// Requests generated per source.
    pub requests_per_source: u64,
    /// Mean inter-request time at a source, µs.
    pub inter_request_us: f64,
    /// Disk geometry: cylinders.
    pub cylinders: u32,
    /// Disk geometry: tracks per cylinder.
    pub tracks: u32,
    /// Disk geometry: sectors per track.
    pub sectors: u32,
    /// Sector size in bytes.
    pub sector_bytes: u32,
    /// Stripe unit in sectors.
    pub stripe_sectors: u32,
    /// Disk track-cache entries (checkpointable state bulk per disk).
    pub track_cache_entries: usize,
    /// Workload seed.
    pub seed: u64,
}

impl RaidConfig {
    /// The configuration of Section 7: 20 sources × `requests` requests
    /// to 8 disks via 4 forks, in 4 LPs.
    pub fn paper(requests_per_source: u64, seed: u64) -> Self {
        RaidConfig {
            n_sources: 20,
            n_forks: 4,
            n_disks: 8,
            n_lps: 4,
            requests_per_source,
            inter_request_us: 900.0,
            cylinders: 1024,
            tracks: 8,
            sectors: 64,
            sector_bytes: 512,
            stripe_sectors: 8,
            track_cache_entries: 512,
            seed,
        }
    }

    /// A reduced instance for tests.
    pub fn small(requests_per_source: u64, seed: u64) -> Self {
        RaidConfig {
            n_sources: 4,
            n_forks: 2,
            n_disks: 4,
            n_lps: 2,
            track_cache_entries: 32,
            ..Self::paper(requests_per_source, seed)
        }
    }

    /// Total simulation objects.
    pub fn n_objects(&self) -> usize {
        self.n_sources + self.n_forks + self.n_disks
    }

    /// Source object ids come first.
    pub fn source_id(&self, s: usize) -> ObjectId {
        ObjectId(s as u32)
    }
    /// Fork object ids follow the sources.
    pub fn fork_id(&self, f: usize) -> ObjectId {
        ObjectId((self.n_sources + f) as u32)
    }
    /// Disk object ids come last.
    pub fn disk_id(&self, d: usize) -> ObjectId {
        ObjectId((self.n_sources + self.n_forks + d) as u32)
    }

    /// The partition described in the module docs.
    pub fn partition(&self) -> Partition {
        assert_eq!(self.n_forks, self.n_lps, "one fork per LP");
        assert!(
            self.n_disks.is_multiple_of(self.n_lps),
            "disks must split evenly over LPs"
        );
        let mut lp_of = vec![LpId(0); self.n_objects()];
        for s in 0..self.n_sources {
            lp_of[self.source_id(s).index()] = LpId((s % self.n_lps) as u32);
        }
        for f in 0..self.n_forks {
            // Offset placement: the source→fork hop crosses LPs.
            lp_of[self.fork_id(f).index()] = LpId(((f + 1) % self.n_lps) as u32);
        }
        let disks_per_lp = self.n_disks / self.n_lps;
        for d in 0..self.n_disks {
            lp_of[self.disk_id(d).index()] = LpId((d / disks_per_lp) as u32);
        }
        let nodes = (0..self.n_lps).map(|l| NodeId(l as u32)).collect();
        Partition::new(lp_of, nodes).expect("RAID partition is well formed")
    }

    /// Build the simulation spec (baseline policies).
    pub fn spec(&self) -> SimulationSpec {
        let cfg = self.clone();
        SimulationSpec::new(self.partition(), Arc::new(move |id| build_object(&cfg, id)))
    }
}

/// A disk request token: the paper's "token that carries information
/// about the number of disks, cylinders, tracks, sectors, size of each
/// sector and specific information about which stripe to read and parity
/// information".
#[derive(Clone, Debug, PartialEq)]
pub struct DiskRequest {
    /// Originating source.
    pub source: u32,
    /// Per-source request serial.
    pub serial: u64,
    /// Logical stripe number being read.
    pub stripe: u64,
    /// Fork-assigned dispatch tag (the history-dependent part).
    pub fork_tag: u64,
    /// Target cylinder (derived from the stripe).
    pub cylinder: u32,
    /// Target track.
    pub track: u32,
    /// Target sector.
    pub sector: u32,
    /// Sectors to transfer.
    pub n_sectors: u32,
    /// Parity disk for the stripe's group (RAID-5 rotation).
    pub parity_disk: u32,
}

impl DiskRequest {
    /// Canonical encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(48);
        w.u32(self.source)
            .u64(self.serial)
            .u64(self.stripe)
            .u64(self.fork_tag)
            .u32(self.cylinder)
            .u32(self.track)
            .u32(self.sector)
            .u32(self.n_sectors)
            .u32(self.parity_disk);
        w.finish()
    }

    /// Decode; panics on malformed payload (a model bug).
    pub fn decode(payload: &[u8]) -> DiskRequest {
        let mut r = PayloadReader::new(payload);
        DiskRequest {
            source: r.u32().expect("source"),
            serial: r.u64().expect("serial"),
            stripe: r.u64().expect("stripe"),
            fork_tag: r.u64().expect("fork_tag"),
            cylinder: r.u32().expect("cylinder"),
            track: r.u32().expect("track"),
            sector: r.u32().expect("sector"),
            n_sectors: r.u32().expect("n_sectors"),
            parity_disk: r.u32().expect("parity_disk"),
        }
    }
}

fn build_object(cfg: &RaidConfig, id: ObjectId) -> Box<dyn SimObject> {
    let i = id.index();
    if i < cfg.n_sources {
        Box::new(Source {
            cfg: cfg.clone(),
            me: i,
            state: SourceState {
                rng: SimRng::derive(cfg.seed, id.0 as u64),
                issued: 0,
                completed: 0,
                total_latency: 0,
            },
        })
    } else if i < cfg.n_sources + cfg.n_forks {
        Box::new(Fork {
            cfg: cfg.clone(),
            me: i - cfg.n_sources,
            state: ForkState {
                next_tag: 0,
                dispatched: 0,
            },
        })
    } else {
        Box::new(Disk {
            cfg: cfg.clone(),
            me: i - cfg.n_sources - cfg.n_forks,
            state: DiskState {
                served: 0,
                sectors_read: 0,
                track_cache: vec![0; cfg.track_cache_entries],
            },
        })
    }
}

// -------------------------------------------------------------- Source --

#[derive(Clone, Debug)]
struct SourceState {
    rng: SimRng,
    issued: u64,
    completed: u64,
    total_latency: u64,
}
impl ObjectState for SourceState {}

struct Source {
    cfg: RaidConfig,
    me: usize,
    state: SourceState,
}

impl Source {
    fn fork_of(&self) -> usize {
        self.me % self.cfg.n_forks
    }

    fn schedule_tick(&mut self, ctx: &mut dyn ExecutionContext) {
        if self.state.issued >= self.cfg.requests_per_source {
            return;
        }
        let gap = self.state.rng.exp_ticks(self.cfg.inter_request_us);
        ctx.send(ctx.me(), gap, K_TICK, Vec::new());
    }

    fn issue(&mut self, ctx: &mut dyn ExecutionContext) {
        let serial = self.state.issued;
        self.state.issued += 1;
        let stripe = self.state.rng.next_u64() % 1_000_000;
        let mut w = PayloadWriter::with_capacity(20);
        w.u32(self.me as u32).u64(serial).u64(stripe);
        // The source→fork hop models the host I/O stack: a variable
        // submission latency, so concurrent sources interleave at the
        // fork in non-deterministic (virtual-time) order.
        let lat = self.state.rng.range(20, 120);
        ctx.send(self.cfg.fork_id(self.fork_of()), lat, K_RREQ, w.finish());
    }
}

impl SimObject for Source {
    fn name(&self) -> String {
        format!("source-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        self.schedule_tick(ctx);
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        match ev.kind {
            K_TICK => {
                self.issue(ctx);
                self.schedule_tick(ctx);
            }
            K_DRESP => {
                let req = DiskRequest::decode(&ev.payload);
                self.state.completed += 1;
                // Latency bookkeeping: serials index the issue order, so
                // creation time is recoverable from the tick stream; here
                // we simply accumulate the service component.
                self.state.total_latency += req.n_sectors as u64;
            }
            other => panic!("source received unexpected kind {other}"),
        }
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<SourceState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<SourceState>()
    }
}

// ---------------------------------------------------------------- Fork --

#[derive(Clone, Debug)]
struct ForkState {
    /// Monotone dispatch tag — the history-dependent state that makes
    /// forks favor aggressive cancellation.
    next_tag: u64,
    dispatched: u64,
}
impl ObjectState for ForkState {}

struct Fork {
    cfg: RaidConfig,
    me: usize,
    state: ForkState,
}

impl SimObject for Fork {
    fn name(&self) -> String {
        format!("fork-{}", self.me)
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_RREQ);
        let mut r = PayloadReader::new(&ev.payload);
        let source = r.u32().expect("rreq source");
        let serial = r.u64().expect("rreq serial");
        let stripe = r.u64().expect("rreq stripe");

        let tag = self.state.next_tag;
        self.state.next_tag += 1;
        self.state.dispatched += 1;

        // RAID-5 striping: rotate data+parity placement per stripe group.
        let n = self.cfg.n_disks as u64;
        let group = stripe / (n - 1);
        let parity_disk = (group % n) as u32;
        let mut data_disk = (spread(stripe, 4) % n) as u32;
        if data_disk == parity_disk {
            data_disk = (data_disk + 1) % n as u32;
        }
        let sectors_per_cyl = (self.cfg.tracks * self.cfg.sectors) as u64;
        let lba = stripe * self.cfg.stripe_sectors as u64;
        let req = DiskRequest {
            source,
            serial,
            stripe,
            fork_tag: tag,
            cylinder: ((lba / sectors_per_cyl) % self.cfg.cylinders as u64) as u32,
            track: ((lba / self.cfg.sectors as u64) % self.cfg.tracks as u64) as u32,
            sector: (lba % self.cfg.sectors as u64) as u32,
            n_sectors: self.cfg.stripe_sectors,
            parity_disk,
        };
        // Controller firmware latency.
        ctx.send(
            self.cfg.disk_id(data_disk as usize),
            15,
            K_DREQ,
            req.encode(),
        );
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<ForkState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<ForkState>()
    }
}

// ---------------------------------------------------------------- Disk --

#[derive(Clone, Debug)]
struct DiskState {
    served: u64,
    sectors_read: u64,
    /// Track-cache tags: checkpointable bulk updated per access. Service
    /// time and response content never depend on it, preserving the
    /// disks' pure-function (lazy-friendly) behaviour.
    track_cache: Vec<u64>,
}
impl ObjectState for DiskState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.track_cache.len() * std::mem::size_of::<u64>()
    }
}

struct Disk {
    cfg: RaidConfig,
    me: usize,
    state: DiskState,
}

impl Disk {
    /// Service time in µs: seek from a fixed reference cylinder, half a
    /// rotation of latency, plus transfer — a pure function of geometry
    /// (the disk is modeled positioned at cylinder 0 per request, the
    /// same simplification the WARPED distribution's model makes; it is
    /// what lets disks favor lazy cancellation).
    fn service_us(&self, req: &DiskRequest) -> u64 {
        let seek = 2_000 + (req.cylinder as u64 * 8_000) / self.cfg.cylinders as u64;
        let rotation = 4_000; // half of ~8.3 ms at 7200 rpm, rounded
        let transfer = (req.n_sectors as u64 * self.cfg.sector_bytes as u64) / 40; // ~40 MB/s in µs terms
        seek + rotation + transfer
    }
}

impl SimObject for Disk {
    fn name(&self) -> String {
        format!("disk-{}", self.me)
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_DREQ);
        let req = DiskRequest::decode(&ev.payload);
        self.state.served += 1;
        self.state.sectors_read += req.n_sectors as u64;
        let slot = (req.cylinder as u64 * self.cfg.tracks as u64 + req.track as u64)
            % self.state.track_cache.len() as u64;
        self.state.track_cache[slot as usize] = req.stripe;
        let t = self.service_us(&req);
        ctx.send(ObjectId(req.source), t, K_DRESP, ev.payload.clone());
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<DiskState>().clone();
    }
    fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::object::RecordingContext;
    use warp_core::{EventId, VirtualTime};

    #[test]
    fn paper_configuration_shape() {
        let cfg = RaidConfig::paper(1000, 1);
        assert_eq!(cfg.n_objects(), 32); // 20 + 4 + 8
        let p = cfg.partition();
        assert_eq!(p.n_lps(), 4);
        for lp in p.lps() {
            assert_eq!(p.objects_of(lp).len(), 8); // 5 sources + 1 fork + 2 disks
        }
        // Forks are offset from their sources' LP.
        assert_ne!(
            p.lp_of(cfg.fork_id(0)),
            p.lp_of(cfg.source_id(0)),
            "fork must not share its sources' LP"
        );
    }

    #[test]
    fn token_roundtrip() {
        let req = DiskRequest {
            source: 3,
            serial: 77,
            stripe: 123_456,
            fork_tag: 9,
            cylinder: 500,
            track: 3,
            sector: 17,
            n_sectors: 8,
            parity_disk: 2,
        };
        assert_eq!(DiskRequest::decode(&req.encode()), req);
    }

    fn rreq_event(cfg: &RaidConfig, src: u32, serial: u64, stripe: u64, t: u64) -> Event {
        let mut w = PayloadWriter::new();
        w.u32(src).u64(serial).u64(stripe);
        Event::new(
            EventId {
                sender: cfg.source_id(src as usize),
                serial,
            },
            cfg.fork_id(0),
            VirtualTime::new(t.saturating_sub(1)),
            VirtualTime::new(t),
            K_RREQ,
            w.finish(),
        )
    }

    #[test]
    fn fork_tags_are_order_dependent() {
        // The property behind "forks favor aggressive": replaying the
        // same requests in a different order changes the dispatches.
        let cfg = RaidConfig::small(10, 1);
        let mk = || Fork {
            cfg: cfg.clone(),
            me: 0,
            state: ForkState {
                next_tag: 0,
                dispatched: 0,
            },
        };
        let (a, b) = (
            rreq_event(&cfg, 0, 0, 100, 50),
            rreq_event(&cfg, 1, 0, 200, 60),
        );

        let mut f1 = mk();
        let mut c1 = RecordingContext::new(cfg.fork_id(0), a.recv_time);
        f1.execute(&mut c1, &a);
        c1.now = b.recv_time;
        f1.execute(&mut c1, &b);

        let mut f2 = mk();
        let mut c2 = RecordingContext::new(cfg.fork_id(0), a.recv_time);
        // Opposite order (as after a straggler-induced rollback).
        let b_early = rreq_event(&cfg, 1, 0, 200, 40);
        f2.execute(&mut c2, &b_early);
        c2.now = a.recv_time;
        f2.execute(&mut c2, &a);

        // The dispatch for stripe 100 differs between the two histories
        // (its fork_tag moved), so lazy comparison would miss.
        let d1 = DiskRequest::decode(&c1.sent[0].3);
        let d2 = DiskRequest::decode(&c2.sent[1].3);
        assert_eq!(d1.stripe, 100);
        assert_eq!(d2.stripe, 100);
        assert_ne!(d1.fork_tag, d2.fork_tag);
    }

    #[test]
    fn disk_service_is_pure_function_of_geometry() {
        let cfg = RaidConfig::small(10, 1);
        let disk = Disk {
            cfg: cfg.clone(),
            me: 0,
            state: DiskState {
                served: 0,
                sectors_read: 0,
                track_cache: vec![0; 32],
            },
        };
        let req = DiskRequest {
            source: 0,
            serial: 0,
            stripe: 42,
            fork_tag: 7,
            cylinder: 512,
            track: 1,
            sector: 3,
            n_sectors: 8,
            parity_disk: 1,
        };
        let t1 = disk.service_us(&req);
        let t2 = disk.service_us(&req);
        assert_eq!(t1, t2);
        assert!(t1 > 4_000, "must include rotation: {t1}");
        let far = DiskRequest {
            cylinder: 1023,
            ..req.clone()
        };
        assert!(
            disk.service_us(&far) > t1,
            "longer seek for farther cylinder"
        );
    }

    #[test]
    fn parity_disk_differs_from_data_disk() {
        // Exercise the fork's striping on many stripes.
        let cfg = RaidConfig::paper(10, 1);
        let mut fork = Fork {
            cfg: cfg.clone(),
            me: 0,
            state: ForkState {
                next_tag: 0,
                dispatched: 0,
            },
        };
        for s in 0..200u64 {
            let ev = rreq_event(&cfg, 0, s, s * 37, 100 + s);
            let mut ctx = RecordingContext::new(cfg.fork_id(0), ev.recv_time);
            fork.execute(&mut ctx, &ev);
            let req = DiskRequest::decode(&ctx.sent[0].3);
            let data_disk = ctx.sent[0].0;
            assert_ne!(
                data_disk,
                cfg.disk_id(req.parity_disk as usize),
                "a RAID-5 read must not target the parity disk"
            );
        }
        assert_eq!(fork.state.dispatched, 200);
    }

    #[test]
    fn source_issues_exactly_its_quota() {
        let cfg = RaidConfig::small(5, 3);
        let mut src = Source {
            cfg: cfg.clone(),
            me: 0,
            state: SourceState {
                rng: SimRng::derive(3, 0),
                issued: 0,
                completed: 0,
                total_latency: 0,
            },
        };
        let mut ctx = RecordingContext::new(cfg.source_id(0), VirtualTime::ZERO);
        src.init(&mut ctx);
        let mut ticks: Vec<_> = ctx.sent.drain(..).collect();
        let mut issued = 0;
        let mut serial = 0u64;
        while let Some((dst, at, kind, payload)) = ticks.pop() {
            assert_eq!(kind, K_TICK);
            assert_eq!(dst, cfg.source_id(0));
            let ev = Event::new(
                EventId {
                    sender: dst,
                    serial,
                },
                dst,
                VirtualTime::ZERO,
                at,
                kind,
                payload,
            );
            serial += 1;
            let mut c = RecordingContext::new(dst, at);
            src.execute(&mut c, &ev);
            for s in c.sent {
                if s.2 == K_TICK {
                    ticks.push(s);
                } else {
                    assert_eq!(s.2, K_RREQ);
                    issued += 1;
                }
            }
        }
        assert_eq!(issued, 5);
        assert_eq!(src.state.issued, 5);
    }
}
