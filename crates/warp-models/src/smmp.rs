//! SMMP: the shared-memory multiprocessor model (Section 7 of the paper).
//!
//! Each simulated processor owns a private cache with access to a common
//! interleaved main memory. Per the paper, the memory is deliberately
//! *not* serialized ("main memory can have multiple requests pending at
//! any given moment"), which makes every service a pure function of the
//! request — the property that makes SMMP objects strictly favor lazy
//! cancellation, exactly as Section 8 reports.
//!
//! Object layout (paper configuration: 16 processors, 4 LPs, **100
//! simulation objects**):
//!
//! ```text
//! 16 CPUs  +  16 caches  +  4 memory controllers  +  64 banks  =  100
//! ```
//!
//! A request flows CPU → cache; on a hit the cache answers after the
//! cache delay; on a miss it goes cache → controller → bank, and the
//! response retraces bank → cache → CPU. By default CPUs generate test
//! vectors *open loop* — each request is pre-scheduled a think-time after
//! the previous one, carrying its creation time, creator and
//! satisfaction metadata, matching the paper's description (a closed-loop
//! mode is available via [`SmmpConfig::open_loop`]). Virtual time is in
//! nanoseconds.
//!
//! Partition: LP *k* hosts its 4 CPUs and caches, memory controller *k*
//! and that controller's 16 banks, so cache-miss traffic fans out across
//! LPs (address-interleaved) — the cross-LP skew that generates
//! stragglers at controllers and banks.

use crate::util::spread;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    ErasedState, Event, ExecutionContext, LpId, NodeId, ObjectId, ObjectState, Partition, SimObject,
};
use warp_exec::SimulationSpec;

/// CPU → cache memory request.
pub const K_REQ: u16 = 1;
/// Cache → CPU response (hit or completed miss).
pub const K_RESP: u16 = 2;
/// Cache → memory-controller miss.
pub const K_MISS: u16 = 3;
/// Controller → bank access.
pub const K_BANK: u16 = 4;
/// Bank → cache response.
pub const K_FILL: u16 = 5;
/// CPU self-timer for open-loop generation.
pub const K_TICK: u16 = 6;

/// SMMP configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SmmpConfig {
    /// Simulated processors (each contributes a CPU and a cache object).
    pub n_processors: usize,
    /// Logical processes (= memory controllers; banks split evenly).
    pub n_lps: usize,
    /// Interleaved memory banks in total.
    pub n_banks: usize,
    /// Cache hit probability.
    pub cache_hit_ratio: f64,
    /// Cache access time in ns.
    pub cache_ns: u64,
    /// Main-memory access time in ns.
    pub memory_ns: u64,
    /// Mean CPU think time between requests, ns.
    pub think_ns: f64,
    /// Memory requests ("test vectors") issued per processor.
    pub requests_per_processor: u64,
    /// Cache tag-array lines (the bulk of checkpointable state).
    pub cache_lines: usize,
    /// Bank row-buffer tags (bank-side checkpointable state; service
    /// stays a pure function of the request).
    pub bank_rows: usize,
    /// Open-loop generation: requests are pre-scheduled at think-time
    /// intervals ("test vectors" carrying the time at which each request
    /// should be satisfied, per the paper) rather than waiting for the
    /// previous response.
    pub open_loop: bool,
    /// Scatter caches away from their CPUs' LPs. The default localized
    /// partition ("to take advantage of the fast intra-LP communication")
    /// keeps ~95% of events inside an LP, which starves the message
    /// aggregation experiment; the scattered variant makes every
    /// request/response hop cross LPs — the communication-bound
    /// configuration used to regenerate Figure 8.
    pub scattered: bool,
    /// Workload seed.
    pub seed: u64,
}

impl SmmpConfig {
    /// The configuration of Section 7: 16 processors in 4 LPs, 10 ns
    /// cache, 100 ns memory, 90% hit ratio, 100 simulation objects.
    pub fn paper(requests_per_processor: u64, seed: u64) -> Self {
        SmmpConfig {
            n_processors: 16,
            n_lps: 4,
            n_banks: 64,
            cache_hit_ratio: 0.90,
            cache_ns: 10,
            memory_ns: 100,
            think_ns: 120.0,
            requests_per_processor,
            cache_lines: 1024,
            bank_rows: 64,
            open_loop: true,
            scattered: false,
            seed,
        }
    }

    /// A reduced instance for tests: same topology shape, less work.
    pub fn small(requests_per_processor: u64, seed: u64) -> Self {
        SmmpConfig {
            n_processors: 4,
            n_lps: 2,
            n_banks: 8,
            cache_lines: 32,
            bank_rows: 8,
            ..Self::paper(requests_per_processor, seed)
        }
    }

    /// Total simulation objects.
    pub fn n_objects(&self) -> usize {
        2 * self.n_processors + self.n_lps + self.n_banks
    }

    fn banks_per_ctrl(&self) -> usize {
        self.n_banks / self.n_lps
    }

    /// Object-id layout helpers.
    pub fn cpu_id(&self, p: usize) -> ObjectId {
        ObjectId(p as u32)
    }
    /// Cache object of processor `p`.
    pub fn cache_id(&self, p: usize) -> ObjectId {
        ObjectId((self.n_processors + p) as u32)
    }
    /// Memory controller `c`.
    pub fn ctrl_id(&self, c: usize) -> ObjectId {
        ObjectId((2 * self.n_processors + c) as u32)
    }
    /// Memory bank `b`.
    pub fn bank_id(&self, b: usize) -> ObjectId {
        ObjectId((2 * self.n_processors + self.n_lps + b) as u32)
    }

    /// The partition described in the module docs.
    pub fn partition(&self) -> Partition {
        assert!(
            self.n_processors.is_multiple_of(self.n_lps),
            "processors must split evenly over LPs"
        );
        assert!(
            self.n_banks.is_multiple_of(self.n_lps),
            "banks must split evenly over LPs"
        );
        let mut lp_of = vec![LpId(0); self.n_objects()];
        for p in 0..self.n_processors {
            let lp = LpId((p % self.n_lps) as u32);
            lp_of[self.cpu_id(p).index()] = lp;
            let cache_lp = if self.scattered {
                LpId(((p + 1) % self.n_lps) as u32)
            } else {
                lp
            };
            lp_of[self.cache_id(p).index()] = cache_lp;
        }
        for c in 0..self.n_lps {
            lp_of[self.ctrl_id(c).index()] = LpId(c as u32);
            for b in 0..self.banks_per_ctrl() {
                lp_of[self.bank_id(c * self.banks_per_ctrl() + b).index()] = LpId(c as u32);
            }
        }
        let nodes = (0..self.n_lps).map(|l| NodeId(l as u32)).collect();
        Partition::new(lp_of, nodes).expect("SMMP partition is well formed")
    }

    /// Build the simulation spec (baseline policies; callers layer
    /// configuration on top).
    pub fn spec(&self) -> SimulationSpec {
        let cfg = self.clone();
        SimulationSpec::new(self.partition(), Arc::new(move |id| build_object(&cfg, id)))
    }
}

/// Request token: everything the paper says a test vector carries —
/// creation time, creating processor, and satisfaction metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Creating processor.
    pub creator: u32,
    /// Per-creator request serial.
    pub serial: u64,
    /// Accessed address.
    pub address: u64,
    /// Virtual time the request was created.
    pub created_at: u64,
}

impl Token {
    /// Canonical encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(28);
        w.u32(self.creator)
            .u64(self.serial)
            .u64(self.address)
            .u64(self.created_at);
        w.finish()
    }

    /// Decode; panics on malformed payload (a model bug).
    pub fn decode(payload: &[u8]) -> Token {
        let mut r = PayloadReader::new(payload);
        Token {
            creator: r.u32().expect("token creator"),
            serial: r.u64().expect("token serial"),
            address: r.u64().expect("token address"),
            created_at: r.u64().expect("token created_at"),
        }
    }
}

fn build_object(cfg: &SmmpConfig, id: ObjectId) -> Box<dyn SimObject> {
    let i = id.index();
    let p = cfg.n_processors;
    if i < p {
        Box::new(Cpu {
            cfg: cfg.clone(),
            me: i,
            state: CpuState {
                rng: SimRng::derive(cfg.seed, id.0 as u64),
                issued: 0,
                satisfied: 0,
                total_latency: 0,
            },
        })
    } else if i < 2 * p {
        let pid = i - p;
        Box::new(Cache {
            cfg: cfg.clone(),
            me: pid,
            state: CacheState {
                rng: SimRng::derive(cfg.seed ^ 0xCAFE, id.0 as u64),
                tags: vec![0u64; cfg.cache_lines],
                hits: 0,
                misses: 0,
            },
        })
    } else if i < 2 * p + cfg.n_lps {
        Box::new(Controller {
            cfg: cfg.clone(),
            me: i - 2 * p,
            state: CtrlState { forwarded: 0 },
        })
    } else {
        Box::new(Bank {
            cfg: cfg.clone(),
            me: i - 2 * p - cfg.n_lps,
            state: BankState {
                served: 0,
                rows: vec![0; cfg.bank_rows],
            },
        })
    }
}

// ---------------------------------------------------------------- CPU --

#[derive(Clone, Debug)]
struct CpuState {
    rng: SimRng,
    issued: u64,
    satisfied: u64,
    total_latency: u64,
}
impl ObjectState for CpuState {}

struct Cpu {
    cfg: SmmpConfig,
    me: usize,
    state: CpuState,
}

impl Cpu {
    fn issue(&mut self, ctx: &mut dyn ExecutionContext) {
        if self.state.issued >= self.cfg.requests_per_processor {
            return;
        }
        let think = self.state.rng.exp_ticks(self.cfg.think_ns);
        let address = self.state.rng.next_u64();
        let serial = self.state.issued;
        self.state.issued += 1;
        let at = ctx.now().after(think);
        let token = Token {
            creator: self.me as u32,
            serial,
            address,
            created_at: at.ticks(),
        };
        ctx.try_send_at(self.cfg.cache_id(self.me), at, K_REQ, token.encode())
            .expect("cpu request send");
        if self.cfg.open_loop {
            // Pre-schedule the next test vector regardless of responses.
            ctx.try_send_at(ctx.me(), at, K_TICK, Vec::new())
                .expect("cpu tick send");
        }
    }
}

impl SimObject for Cpu {
    fn name(&self) -> String {
        format!("cpu-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        self.issue(ctx);
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        match ev.kind {
            K_TICK => self.issue(ctx),
            K_RESP => {
                let token = Token::decode(&ev.payload);
                self.state.satisfied += 1;
                self.state.total_latency += ev.recv_time.ticks().saturating_sub(token.created_at);
                if !self.cfg.open_loop {
                    self.issue(ctx);
                }
            }
            other => panic!("cpu received unexpected kind {other}"),
        }
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<CpuState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<CpuState>()
    }
}

// -------------------------------------------------------------- Cache --

#[derive(Clone, Debug)]
struct CacheState {
    rng: SimRng,
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}
impl ObjectState for CacheState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tags.len() * std::mem::size_of::<u64>()
    }
}

struct Cache {
    cfg: SmmpConfig,
    me: usize,
    state: CacheState,
}

impl SimObject for Cache {
    fn name(&self) -> String {
        format!("cache-{}", self.me)
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        match ev.kind {
            K_REQ => {
                let token = Token::decode(&ev.payload);
                let line = (token.address >> 6) as usize % self.state.tags.len();
                self.state.tags[line] = token.address;
                if self.state.rng.chance(self.cfg.cache_hit_ratio) {
                    self.state.hits += 1;
                    ctx.send(
                        self.cfg.cpu_id(self.me),
                        self.cfg.cache_ns,
                        K_RESP,
                        ev.payload.clone(),
                    );
                } else {
                    self.state.misses += 1;
                    let ctrl = spread(token.address, 8) as usize % self.cfg.n_lps;
                    ctx.send(
                        self.cfg.ctrl_id(ctrl),
                        self.cfg.cache_ns,
                        K_MISS,
                        ev.payload.clone(),
                    );
                }
            }
            K_FILL => {
                // Fill the line and answer the CPU.
                let token = Token::decode(&ev.payload);
                let line = (token.address >> 6) as usize % self.state.tags.len();
                self.state.tags[line] = token.address;
                ctx.send(
                    self.cfg.cpu_id(self.me),
                    self.cfg.cache_ns,
                    K_RESP,
                    ev.payload.clone(),
                );
            }
            other => panic!("cache received unexpected kind {other}"),
        }
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<CacheState>().clone();
    }
    fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }
}

// --------------------------------------------------------- Controller --

#[derive(Clone, Debug)]
struct CtrlState {
    forwarded: u64,
}
impl ObjectState for CtrlState {}

struct Controller {
    cfg: SmmpConfig,
    me: usize,
    state: CtrlState,
}

impl SimObject for Controller {
    fn name(&self) -> String {
        format!("memctrl-{}", self.me)
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_MISS);
        let token = Token::decode(&ev.payload);
        self.state.forwarded += 1;
        // Pure address-interleaved routing: a rollback regenerates the
        // identical access (lazy hits).
        let per = self.cfg.n_banks / self.cfg.n_lps;
        let local = spread(token.address, 16) as usize % per;
        let bank = self.me * per + local;
        ctx.send(self.cfg.bank_id(bank), 2, K_BANK, ev.payload.clone());
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<CtrlState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<CtrlState>()
    }
}

// --------------------------------------------------------------- Bank --

#[derive(Clone, Debug)]
struct BankState {
    served: u64,
    /// Open-row tags (DRAM row buffer): checkpointable bulk updated per
    /// access. Service time and response content never depend on it, so
    /// bank services remain pure functions of their requests.
    rows: Vec<u64>,
}
impl ObjectState for BankState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.rows.len() * std::mem::size_of::<u64>()
    }
}

struct Bank {
    cfg: SmmpConfig,
    me: usize,
    state: BankState,
}

impl SimObject for Bank {
    fn name(&self) -> String {
        format!("bank-{}", self.me)
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_BANK);
        let token = Token::decode(&ev.payload);
        self.state.served += 1;
        let row = (token.address >> 12) as usize % self.state.rows.len();
        self.state.rows[row] = token.address;
        // Unserialized memory (the paper's explicit modeling choice):
        // service time is a pure function of the request.
        let cache = self.cfg.cache_id(token.creator as usize);
        ctx.send(cache, self.cfg.memory_ns, K_FILL, ev.payload.clone());
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<BankState>().clone();
    }
    fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::object::RecordingContext;
    use warp_core::VirtualTime;

    #[test]
    fn paper_configuration_has_100_objects() {
        let cfg = SmmpConfig::paper(100, 1);
        assert_eq!(cfg.n_objects(), 100);
        let p = cfg.partition();
        assert_eq!(p.n_lps(), 4);
        // 25 objects per LP: 4 CPUs, 4 caches, 1 controller, 16 banks.
        for lp in p.lps() {
            assert_eq!(p.objects_of(lp).len(), 25);
        }
    }

    #[test]
    fn token_roundtrip() {
        let t = Token {
            creator: 3,
            serial: 9,
            address: 0xDEAD_BEEF,
            created_at: 42,
        };
        assert_eq!(Token::decode(&t.encode()), t);
    }

    #[test]
    fn cpu_issues_bounded_requests() {
        // Closed-loop mode: the next request waits for the response.
        let cfg = SmmpConfig {
            open_loop: false,
            ..SmmpConfig::small(3, 7)
        };
        let mut cpu = Cpu {
            cfg: cfg.clone(),
            me: 0,
            state: CpuState {
                rng: SimRng::derive(7, 0),
                issued: 0,
                satisfied: 0,
                total_latency: 0,
            },
        };
        let mut ctx = RecordingContext::new(cfg.cpu_id(0), VirtualTime::ZERO);
        cpu.init(&mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        let (dst, _, kind, _) = &ctx.sent[0];
        assert_eq!(*dst, cfg.cache_id(0));
        assert_eq!(*kind, K_REQ);
        // Drive it with responses until it stops issuing.
        let mut issued = 1;
        while let Some((_, at, _, payload)) = ctx.sent.pop() {
            let resp = Event::new(
                warp_core::EventId {
                    sender: cfg.cache_id(0),
                    serial: issued,
                },
                cfg.cpu_id(0),
                at,
                at.after(10),
                K_RESP,
                payload,
            );
            let mut ctx2 = RecordingContext::new(cfg.cpu_id(0), resp.recv_time);
            cpu.execute(&mut ctx2, &resp);
            issued += 1;
            ctx.sent = ctx2.sent;
        }
        assert_eq!(cpu.state.issued, 3, "exactly requests_per_processor issued");
        assert_eq!(cpu.state.satisfied, 3);
    }

    #[test]
    fn cache_hit_and_miss_paths() {
        let cfg = SmmpConfig::small(1, 1);
        let mut cache = Cache {
            cfg: cfg.clone(),
            me: 1,
            state: CacheState {
                rng: SimRng::derive(1, 99),
                tags: vec![0; cfg.cache_lines],
                hits: 0,
                misses: 0,
            },
        };
        let token = Token {
            creator: 1,
            serial: 0,
            address: 1234,
            created_at: 5,
        };
        let mut hits = 0;
        let mut misses = 0;
        for s in 0..200 {
            let ev = Event::new(
                warp_core::EventId {
                    sender: cfg.cpu_id(1),
                    serial: s,
                },
                cfg.cache_id(1),
                VirtualTime::new(5),
                VirtualTime::new(10 + s),
                K_REQ,
                token.encode(),
            );
            let mut ctx = RecordingContext::new(cfg.cache_id(1), ev.recv_time);
            cache.execute(&mut ctx, &ev);
            let (dst, _, kind, _) = &ctx.sent[0];
            if *kind == K_RESP {
                assert_eq!(*dst, cfg.cpu_id(1));
                hits += 1;
            } else {
                assert_eq!(*kind, K_MISS);
                misses += 1;
            }
        }
        assert_eq!(cache.state.hits, hits);
        assert_eq!(cache.state.misses, misses);
        // 90% hit ratio, 200 draws: misses should be roughly 20.
        assert!((5..=45).contains(&misses), "misses {misses}");
    }

    #[test]
    fn bank_service_is_pure() {
        // Identical requests produce identical responses — the property
        // behind SMMP's lazy-cancellation preference.
        let cfg = SmmpConfig::small(1, 1);
        let mut bank = Bank {
            cfg: cfg.clone(),
            me: 0,
            state: BankState {
                served: 0,
                rows: vec![0; 8],
            },
        };
        let token = Token {
            creator: 2,
            serial: 7,
            address: 555,
            created_at: 1,
        };
        let ev = Event::new(
            warp_core::EventId {
                sender: cfg.ctrl_id(0),
                serial: 0,
            },
            cfg.bank_id(0),
            VirtualTime::new(1),
            VirtualTime::new(20),
            K_BANK,
            token.encode(),
        );
        let mut a = RecordingContext::new(cfg.bank_id(0), ev.recv_time);
        bank.execute(&mut a, &ev);
        let snap = bank.snapshot();
        let mut b = RecordingContext::new(cfg.bank_id(0), ev.recv_time);
        bank.restore(&snap);
        bank.execute(&mut b, &ev);
        // Note: second execution re-runs from post-first-event state; the
        // *sends* are still identical because service is stateless.
        assert_eq!(a.sent, b.sent);
    }
}
