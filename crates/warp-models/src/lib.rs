//! # warp-models — benchmark applications for the warped-online kernel
//!
//! The two models the paper evaluates (available, it notes, in the
//! WARPED distribution), plus the standard PHOLD synthetic benchmark:
//!
//! * [`smmp`] — a 16-processor shared-memory multiprocessor (100
//!   simulation objects, 4 LPs): private caches in front of an
//!   interleaved, unserialized main memory. Uniformly favors lazy
//!   cancellation.
//! * [`raid`] — a RAID-5 disk array driven by 20 request sources through
//!   4 fork controllers to 8 disks (4 LPs). Disks favor lazy
//!   cancellation, forks aggressive — the heterogeneity Figure 6's
//!   dynamic-cancellation experiment exploits.
//! * [`phold`] — the classic synthetic PDES workload, for validation and
//!   stress beyond the paper's models.
//! * [`qnet`] — a closed FCFS queueing network whose queue-state
//!   dependence makes it favor *aggressive* cancellation uniformly — the
//!   temperament SMMP lacks, completing the spectrum of Section 5's
//!   observations.
//! * [`logic`] — gate-level digital circuits (the workload class behind
//!   the paper's Section 5 observations, which came from VHDL
//!   digital-system models): event-driven gates that propagate only on
//!   output change, making rollback re-execution hit-rich.
//! * [`serve`] — an open-arrival service-traffic cluster (diurnal rate,
//!   burst waves, Zipf tenant skew, batched GPU-style stations with a
//!   KV cache): the first workload whose *modeled* load drives the
//!   on-line balance and elastic controllers.

#![warn(missing_docs)]

pub mod logic;
pub mod phold;
pub mod qnet;
pub mod raid;
pub mod serve;
pub mod smmp;
pub mod util;

pub use logic::Netlist;
pub use phold::PholdConfig;
pub use qnet::QnetConfig;
pub use raid::RaidConfig;
pub use serve::ServeConfig;
pub use smmp::SmmpConfig;
