//! QNET: a closed queueing network of FCFS stations.
//!
//! An extension workload beyond the paper's two models, included because
//! it is the *opposite* cancellation temperament to SMMP: a station's
//! departure time depends on its queue state (`busy_until`), so a
//! straggler shifts every subsequent departure and regenerated messages
//! rarely match the prematurely sent ones — lazy cancellation misses,
//! and dynamic cancellation should settle on **aggressive** across the
//! board. Together with SMMP (all lazy) and RAID (mixed), the three
//! models span the space the paper's Section 5 observations describe.
//!
//! Jobs circulate forever-minus-TTL among stations: on completing service
//! at one station a job is routed (state-seeded randomness) to another,
//! arriving after a transfer delay; each station serves one job at a
//! time, FCFS, with exponential service times drawn on arrival. Virtual
//! time is in microseconds.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    ErasedState, Event, ExecutionContext, ObjectId, ObjectState, Partition, SimObject,
};
use warp_exec::SimulationSpec;

/// A job arriving at a station.
pub const K_JOB: u16 = 30;

/// QNET configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QnetConfig {
    /// Service stations.
    pub n_stations: usize,
    /// Logical processes (stations split round-robin).
    pub n_lps: usize,
    /// Jobs injected at time zero (spread over stations).
    pub n_jobs: usize,
    /// Service hops each job makes before retiring.
    pub hops_per_job: u32,
    /// Mean service time, µs.
    pub mean_service_us: f64,
    /// Inter-station transfer delay, µs.
    pub transfer_us: u64,
    /// Workload seed.
    pub seed: u64,
}

impl QnetConfig {
    /// A medium closed network: 16 stations over 4 LPs, 32 jobs.
    pub fn new(hops_per_job: u32, seed: u64) -> Self {
        QnetConfig {
            n_stations: 16,
            n_lps: 4,
            n_jobs: 32,
            hops_per_job,
            mean_service_us: 400.0,
            transfer_us: 50,
            seed,
        }
    }

    /// Total service completions the run will execute.
    pub fn expected_services(&self) -> u64 {
        self.n_jobs as u64 * self.hops_per_job as u64
    }

    /// Build the simulation spec.
    pub fn spec(&self) -> SimulationSpec {
        let cfg = self.clone();
        let partition = Partition::round_robin(self.n_stations, self.n_lps);
        SimulationSpec::new(
            partition,
            Arc::new(move |id| {
                Box::new(Station {
                    cfg: cfg.clone(),
                    me: id.0,
                    state: StationState {
                        rng: SimRng::derive(cfg.seed, id.0 as u64),
                        busy_until: 0,
                        served: 0,
                    },
                }) as Box<dyn SimObject>
            }),
        )
    }
}

#[derive(Clone, Debug)]
struct StationState {
    rng: SimRng,
    /// FCFS server occupancy: the time the server frees up. This is the
    /// queue-state dependence that makes QNET favor aggressive
    /// cancellation — a straggler shifts it, and with it every
    /// subsequent departure time.
    busy_until: u64,
    served: u64,
}
impl ObjectState for StationState {}

struct Station {
    cfg: QnetConfig,
    me: u32,
    state: StationState,
}

impl Station {
    fn serve(&mut self, ctx: &mut dyn ExecutionContext, ttl: u32) {
        self.state.served += 1;
        let now = ctx.now().ticks();
        let service = self.state.rng.exp_ticks(self.cfg.mean_service_us);
        let start = self.state.busy_until.max(now);
        let departs = start + service;
        self.state.busy_until = departs;
        if ttl == 0 {
            return;
        }
        // Route to a random *other* station.
        let other = self.state.rng.below(self.cfg.n_stations as u64 - 1) as u32;
        let dst = if other >= self.me { other + 1 } else { other };
        let mut w = PayloadWriter::new();
        w.u32(ttl - 1);
        let at = warp_core::VirtualTime::new(departs + self.cfg.transfer_us);
        ctx.try_send_at(ObjectId(dst), at, K_JOB, w.finish())
            .expect("qnet route");
    }
}

impl SimObject for Station {
    fn name(&self) -> String {
        format!("station-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        // Jobs are spread round-robin over stations at t=0.
        let mine = (self.cfg.n_jobs as u32 + self.cfg.n_stations as u32 - 1 - self.me)
            / self.cfg.n_stations as u32;
        for _ in 0..mine {
            self.serve(ctx, self.cfg.hops_per_job);
        }
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        debug_assert_eq!(ev.kind, K_JOB);
        let ttl = PayloadReader::new(&ev.payload).u32().expect("qnet ttl");
        self.serve(ctx, ttl);
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<StationState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<StationState>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_exec::{run_sequential, run_virtual};

    #[test]
    fn jobs_conserve_hops() {
        let cfg = QnetConfig {
            n_stations: 6,
            n_lps: 2,
            n_jobs: 7,
            ..QnetConfig::new(15, 3)
        };
        let seq = run_sequential(&cfg.spec().with_gvt_period(None));
        // init() performs each job's first service in place and routes it
        // onward; the job then arrives as an event `hops_per_job` times
        // (TTLs hops-1 down to 0), so committed events = jobs × hops.
        assert_eq!(seq.committed_events, cfg.expected_services());
    }

    #[test]
    fn virtual_matches_sequential() {
        let cfg = QnetConfig {
            n_stations: 8,
            n_lps: 4,
            n_jobs: 12,
            ..QnetConfig::new(25, 9)
        };
        let spec = cfg.spec().with_gvt_period(None).with_traces();
        let seq = run_sequential(&spec);
        let tw = run_virtual(&spec);
        assert_eq!(seq.committed_events, tw.committed_events);
        assert_eq!(seq.trace_digests(), tw.trace_digests());
        assert!(
            tw.kernel.rollbacks() > 0,
            "closed network must produce rollbacks"
        );
    }

    #[test]
    fn qnet_favors_aggressive_cancellation() {
        use warp_control::DynamicCancellation;
        use warp_core::policy::{FixedCheckpoint, ObjectPolicies};
        let cfg = QnetConfig::new(60, 17);
        let spec = cfg
            .spec()
            .with_gvt_period(None)
            .with_policies(Arc::new(|_| {
                ObjectPolicies::new(
                    Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
                    Box::new(FixedCheckpoint::new(4)),
                )
            }));
        let tw = run_virtual(&spec);
        assert!(tw.kernel.rollbacks() > 0);
        let (mut aggressive, mut total) = (0, 0);
        for lp in &tw.per_lp {
            for o in &lp.objects {
                total += 1;
                if o.final_mode == "Aggressive" {
                    aggressive += 1;
                }
            }
        }
        assert!(
            aggressive * 4 >= total * 3,
            "queue-state-dependent stations should overwhelmingly settle aggressive: {aggressive}/{total}"
        );
        // And the hit ratio evidence backs the setting.
        let hits = tw.kernel.lazy_hits + tw.kernel.monitor_hits;
        let misses = tw.kernel.lazy_misses + tw.kernel.monitor_misses;
        assert!(
            misses > hits,
            "comparisons should be miss-dominated: {hits}h/{misses}m"
        );
    }

    #[test]
    fn busy_until_serializes_departures() {
        let cfg = QnetConfig::new(5, 1);
        let mut st = Station {
            cfg: cfg.clone(),
            me: 0,
            state: StationState {
                rng: SimRng::derive(1, 0),
                busy_until: 0,
                served: 0,
            },
        };
        let mut ctx =
            warp_core::object::RecordingContext::new(ObjectId(0), warp_core::VirtualTime::new(10));
        st.serve(&mut ctx, 3);
        let first_departure = st.state.busy_until;
        st.serve(&mut ctx, 3);
        assert!(
            st.state.busy_until > first_departure,
            "second arrival at the same instant must queue behind the first"
        );
        assert_eq!(ctx.sent.len(), 2);
    }
}
