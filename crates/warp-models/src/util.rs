//! Small shared helpers for the models.

/// Mix the bits of `x` and extract a well-distributed value from the
/// given bit offset — used for address-interleaving decisions so that
/// adjacent addresses spread across controllers/banks/disks.
pub fn spread(x: u64, shift: u32) -> u64 {
    let mut z = x.rotate_right(shift).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_distributes_sequential_inputs() {
        let mut buckets = [0usize; 8];
        for x in 0..8000u64 {
            buckets[(spread(x, 8) % 8) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} got {b}");
        }
    }

    #[test]
    fn spread_differs_by_shift() {
        assert_ne!(spread(12345, 8), spread(12345, 16));
    }
}
