//! The Hit Ratio window: the sampled output `O` of the dynamic
//! cancellation control system.
//!
//! Each LP keeps a record of its last *n* output-message comparisons
//! (`n` = the Filter Depth). A comparison is a *hit* when the message
//! regenerated after a rollback equals the prematurely sent one, a *miss*
//! otherwise. The Hit Ratio is
//!
//! ```text
//! HR = (lazy hits + lazy aggressive hits) / FilterDepth
//! ```
//!
//! — note the denominator is the filter *depth*, not the number of
//! comparisons seen so far, so HR ramps up conservatively while the
//! window warms.

use std::collections::VecDeque;

/// Sliding record of the last `depth` comparison outcomes.
#[derive(Clone, Debug)]
pub struct HitWindow {
    depth: usize,
    buf: VecDeque<bool>,
    hits: usize,
    consecutive_misses: usize,
    total: u64,
}

impl HitWindow {
    /// Window with the given filter depth (≥ 1).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "filter depth must be >= 1");
        HitWindow {
            depth,
            buf: VecDeque::with_capacity(depth),
            hits: 0,
            consecutive_misses: 0,
            total: 0,
        }
    }

    /// The filter depth `n`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Record one comparison outcome.
    pub fn record(&mut self, hit: bool) {
        if self.buf.len() == self.depth && self.buf.pop_front().expect("full window") {
            self.hits -= 1;
        }
        self.buf.push_back(hit);
        if hit {
            self.hits += 1;
            self.consecutive_misses = 0;
        } else {
            self.consecutive_misses += 1;
        }
        self.total += 1;
    }

    /// The Hit Ratio: hits in the window over the filter depth.
    pub fn ratio(&self) -> f64 {
        self.hits as f64 / self.depth as f64
    }

    /// Misses recorded since the last hit (drives the paper's PA variant).
    pub fn consecutive_misses(&self) -> usize {
        self.consecutive_misses
    }

    /// Comparisons recorded over the object's lifetime (drives the PS
    /// variant's permanent decision point).
    pub fn total_comparisons(&self) -> u64 {
        self.total
    }

    /// True once `depth` comparisons have been recorded.
    pub fn is_warm(&self) -> bool {
        self.buf.len() == self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_uses_depth_as_denominator() {
        let mut w = HitWindow::new(10);
        w.record(true);
        w.record(true);
        // 2 hits over depth 10, not over 2 comparisons.
        assert!((w.ratio() - 0.2).abs() < 1e-12);
        assert!(!w.is_warm());
    }

    #[test]
    fn window_slides() {
        let mut w = HitWindow::new(3);
        for hit in [true, true, true] {
            w.record(hit);
        }
        assert!((w.ratio() - 1.0).abs() < 1e-12);
        assert!(w.is_warm());
        w.record(false); // evicts a hit
        assert!((w.ratio() - 2.0 / 3.0).abs() < 1e-12);
        w.record(false);
        w.record(false);
        assert_eq!(w.ratio(), 0.0);
    }

    #[test]
    fn consecutive_misses_reset_on_hit() {
        let mut w = HitWindow::new(8);
        w.record(false);
        w.record(false);
        assert_eq!(w.consecutive_misses(), 2);
        w.record(true);
        assert_eq!(w.consecutive_misses(), 0);
        for _ in 0..5 {
            w.record(false);
        }
        assert_eq!(w.consecutive_misses(), 5);
        assert_eq!(w.total_comparisons(), 8);
    }

    #[test]
    #[should_panic]
    fn zero_depth_rejected() {
        let _ = HitWindow::new(0);
    }
}
