//! Adaptive GVT period — a fourth on-line configured facet.
//!
//! The paper configures three facets (checkpoint interval, cancellation
//! strategy, aggregation window) and closes by expecting "better control
//! systems" to be constructed on the same model. The GVT period is the
//! natural next facet: computing GVT costs CPU on every node, but
//! postponing it lets the history queues grow (§2: "periodic GVT
//! calculation is necessary to reclaim memory"). Expressed as the paper's
//! tuple:
//!
//! ```text
//! < (reclaimed, retained), P_gvt, P₀, T, everyRound >
//! ```
//!
//! with a transfer function that shortens the period when retained
//! history exceeds a memory target, and lengthens it when rounds reclaim
//! too little to be worth their cost.

/// Hill-climbing controller for the GVT/fossil-collection period.
#[derive(Clone, Debug)]
pub struct GvtPeriodLaw {
    period: f64,
    min: f64,
    max: f64,
    /// Multiplicative adjustment per round.
    step: f64,
    /// Retained history items per object above which memory pressure
    /// dominates and the period shrinks.
    target_retained_per_object: f64,
    rounds: u64,
    adjustments: u64,
}

impl GvtPeriodLaw {
    /// Start from `initial` seconds, clamped to `[min, max]`.
    pub fn new(initial: f64, min: f64, max: f64) -> Self {
        assert!(
            min > 0.0 && min <= max,
            "period bounds inverted or non-positive"
        );
        assert!(initial.is_finite() && initial > 0.0);
        GvtPeriodLaw {
            period: initial.clamp(min, max),
            min,
            max,
            step: 0.5,
            target_retained_per_object: 256.0,
            rounds: 0,
            adjustments: 0,
        }
    }

    /// Defaults suited to the SPARC cost model: start at 50 ms, adapt
    /// between 5 ms and 1 s.
    pub fn default_for_now() -> Self {
        Self::new(0.05, 0.005, 1.0)
    }

    /// Override the per-object retained-history target.
    pub fn with_target(mut self, items_per_object: f64) -> Self {
        assert!(items_per_object > 0.0 && items_per_object.is_finite());
        self.target_retained_per_object = items_per_object;
        self
    }

    /// Current period (seconds).
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Period adjustments performed.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feed back one completed GVT round: how many history items it
    /// reclaimed and how many remain retained across `n_objects` objects.
    /// Returns the period until the next round.
    pub fn on_round(&mut self, reclaimed: u64, retained: u64, n_objects: usize) -> f64 {
        self.rounds += 1;
        let per_object = retained as f64 / n_objects.max(1) as f64;
        let next = if per_object > self.target_retained_per_object {
            // Memory pressure: collect sooner.
            self.period / (1.0 + self.step)
        } else if (reclaimed as f64) < 0.1 * self.target_retained_per_object * n_objects as f64 {
            // The round barely paid for itself: collect later.
            self.period * (1.0 + self.step)
        } else {
            self.period
        }
        .clamp(self.min, self.max);
        if next != self.period {
            self.adjustments += 1;
            self.period = next;
        }
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pressure_shortens_the_period() {
        let mut law = GvtPeriodLaw::new(0.1, 0.001, 1.0).with_target(100.0);
        let p0 = law.period();
        // 64 objects retaining 400 items each: way over target.
        let p = law.on_round(1000, 64 * 400, 64);
        assert!(p < p0);
        // Sustained pressure keeps shrinking toward the floor.
        for _ in 0..40 {
            law.on_round(1000, 64 * 400, 64);
        }
        assert!((law.period() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn useless_rounds_lengthen_the_period() {
        let mut law = GvtPeriodLaw::new(0.01, 0.001, 1.0).with_target(100.0);
        for _ in 0..40 {
            // Nothing retained, nothing reclaimed: pure overhead.
            law.on_round(0, 0, 64);
        }
        assert!((law.period() - 1.0).abs() < 1e-9, "got {}", law.period());
        assert!(law.adjustments() > 0);
    }

    #[test]
    fn balanced_rounds_hold_steady() {
        let mut law = GvtPeriodLaw::new(0.05, 0.001, 1.0).with_target(100.0);
        // Retained right at half the target, healthy reclaim volume.
        let before = law.period();
        for _ in 0..10 {
            law.on_round(64 * 50, 64 * 50, 64);
        }
        assert_eq!(law.period(), before);
        assert_eq!(law.adjustments(), 0);
    }

    #[test]
    fn respects_bounds_and_counts() {
        let mut law = GvtPeriodLaw::default_for_now();
        assert!(law.period() >= 0.005 && law.period() <= 1.0);
        law.on_round(0, 10_000_000, 1);
        assert!(law.period() >= 0.005);
        assert_eq!(law.rounds(), 1);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_rejected() {
        let _ = GvtPeriodLaw::new(0.1, 1.0, 0.001);
    }
}
