//! The SAAW window-adaptation law (Section 6 of the paper).
//!
//! Control system `<R(age), W, W₀, SAAW, everyAggregate>`: when an
//! aggregate physical message departs, a feedback index computed from its
//! achieved size `n` and age is compared against the previous aggregate's,
//! and the window for the *next* aggregate is adjusted. The paper leaves
//! `R(age)` underspecified ("the rate of reception of messages, modified
//! to reflect the age of the aggregate") beyond one property — at equal
//! raw rate, a younger aggregate should score better.
//!
//! **Deviation, and why** (see DESIGN.md): taken literally, any score
//! that is monotone-better for younger aggregates at equal rate drives
//! the window to its minimum on steady traffic (halving the window keeps
//! the rate and halves the age, so "shrink" always wins). To converge on
//! the performance-optimal window — which is what Figures 8–9 show SAAW
//! doing — the law needs an index with an interior optimum. We use the
//! estimated **per-event communication cost**
//!
//! ```text
//! score(n, age) = overhead / n  +  delay_penalty × age
//! ```
//!
//! (amortized per-message overhead vs. the expected cost of delaying
//! events), which for a steady arrival rate `r` is minimized at
//! `W* = sqrt(overhead / (r × delay_penalty))` — an interior optimum.
//! The transfer function is a direction-aware hill climb: keep moving the
//! window in the current direction while the score improves, reverse
//! when it worsens — the same cheap heuristic family the paper's dynamic
//! checkpointing uses.

/// Multiplicative hill-climbing SAAW controller.
#[derive(Clone, Debug)]
pub struct SaawLaw {
    window: f64,
    min: f64,
    max: f64,
    /// Multiplicative step: grow by ×(1+step), shrink by ÷(1+step).
    step: f64,
    /// Per-physical-message overhead being amortized (seconds).
    overhead: f64,
    /// Cost attributed to one second of event delay (dimensionless weight
    /// applied to the age term).
    delay_penalty: f64,
    last_score: Option<f64>,
    /// Current walk direction: +1 grow, −1 shrink.
    dir: f64,
    adjustments: u64,
}

impl SaawLaw {
    /// SAAW starting from `initial_window` (modeled seconds), bounded to
    /// `[min, max]`.
    pub fn new(initial_window: f64, min: f64, max: f64) -> Self {
        assert!(
            min > 0.0 && min <= max,
            "window bounds inverted or non-positive"
        );
        assert!(initial_window.is_finite() && initial_window > 0.0);
        SaawLaw {
            window: initial_window.clamp(min, max),
            min,
            max,
            step: 0.25,
            overhead: 1.0e-3,
            delay_penalty: 0.02,
            last_score: None,
            dir: 1.0,
            adjustments: 0,
        }
    }

    /// Override the multiplicative step (must be positive).
    pub fn with_step(mut self, step: f64) -> Self {
        assert!(step > 0.0 && step.is_finite());
        self.step = step;
        self
    }

    /// Override the per-message overhead estimate (seconds).
    pub fn with_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead > 0.0 && overhead.is_finite());
        self.overhead = overhead;
        self
    }

    /// Override the delay-penalty weight.
    pub fn with_delay_penalty(mut self, penalty: f64) -> Self {
        assert!(penalty > 0.0 && penalty.is_finite());
        self.delay_penalty = penalty;
        self
    }

    /// Current window size in modeled seconds.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Window adjustments performed so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The feedback index of an aggregate of `n` events that lived `age`
    /// seconds: estimated communication cost per aggregated event
    /// (smaller is better).
    pub fn score(&self, n: usize, age: f64) -> f64 {
        let n = n.max(1) as f64;
        self.overhead / n + self.delay_penalty * age.max(0.0)
    }

    /// Invoked as each aggregate is sent: feeds back its achieved
    /// `(n, age)` and returns the window for the next aggregate.
    pub fn on_aggregate_sent(&mut self, n: usize, age: f64) -> f64 {
        let score = self.score(n, age);
        if let Some(last) = self.last_score {
            if n <= 1 {
                // A singleton aggregate amortized nothing: the window is
                // below the traffic's bundling threshold, where the score
                // landscape only rewards shrinking further (less delay,
                // same overhead). Grow to seek actual aggregation; the
                // hill climb takes over once bundles form.
                self.dir = 1.0;
            } else if score > last {
                // The last move made things worse: reverse.
                self.dir = -self.dir;
            }
            let factor = if self.dir > 0.0 {
                1.0 + self.step
            } else {
                1.0 / (1.0 + self.step)
            };
            let next = (self.window * factor).clamp(self.min, self.max);
            if next != self.window {
                self.adjustments += 1;
            }
            self.window = next;
        }
        self.last_score = Some(score);
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the law against a synthetic steady stream of rate `r`
    /// events/second: an aggregate under window W collects n = r·W events
    /// at age ≈ W.
    fn drive_steady(law: &mut SaawLaw, r: f64, rounds: usize) -> f64 {
        for _ in 0..rounds {
            let w = law.window();
            let n = (r * w).max(1.0) as usize;
            law.on_aggregate_sent(n, w);
        }
        law.window()
    }

    #[test]
    fn converges_to_interior_optimum_from_below() {
        // r=300/s, overhead 1 ms, penalty 0.02 → W* = sqrt(1e-3/6) ≈ 12.9 ms.
        let mut law = SaawLaw::new(1e-3, 1e-5, 1.0);
        let w = drive_steady(&mut law, 300.0, 120);
        assert!(
            (5e-3..40e-3).contains(&w),
            "expected convergence near the ~13 ms optimum, got {w}"
        );
    }

    #[test]
    fn converges_to_interior_optimum_from_above() {
        let mut law = SaawLaw::new(300e-3, 1e-5, 1.0);
        let w = drive_steady(&mut law, 300.0, 120);
        assert!((5e-3..40e-3).contains(&w), "got {w}");
    }

    #[test]
    fn higher_rates_prefer_smaller_windows() {
        let mut slow = SaawLaw::new(10e-3, 1e-5, 1.0);
        let mut fast = SaawLaw::new(10e-3, 1e-5, 1.0);
        let ws = drive_steady(&mut slow, 50.0, 150);
        let wf = drive_steady(&mut fast, 5000.0, 150);
        assert!(
            wf < ws,
            "dense traffic amortizes with shorter delays: fast {wf} vs slow {ws}"
        );
    }

    #[test]
    fn score_prefers_amortization_and_punctuality() {
        let law = SaawLaw::new(1e-3, 1e-5, 1.0);
        // More events per message at the same age: better.
        assert!(law.score(10, 1e-3) < law.score(2, 1e-3));
        // Same size, younger: better.
        assert!(law.score(10, 1e-3) < law.score(10, 50e-3));
    }

    #[test]
    fn window_respects_bounds() {
        let mut law = SaawLaw::new(1e-3, 1e-4, 1e-2);
        for _ in 0..300 {
            // Pathological feedback: enormous aggregates at zero age push
            // the window up forever.
            law.on_aggregate_sent(100_000, 0.0);
        }
        assert!(law.window() <= 1e-2 + 1e-15);
        let mut law2 = SaawLaw::new(1e-3, 1e-4, 1e-2);
        for _ in 0..300 {
            // Singleton aggregates with huge age push it down forever.
            law2.on_aggregate_sent(1, 10.0);
        }
        assert!(law2.window() >= 1e-4 - 1e-15);
    }

    #[test]
    fn first_aggregate_only_primes_the_law() {
        let mut law = SaawLaw::new(5e-3, 1e-5, 1.0);
        let w = law.on_aggregate_sent(10, 1e-3);
        assert_eq!(w, 5e-3, "no previous score to compare against");
        assert_eq!(law.adjustments(), 0);
    }

    #[test]
    fn zero_age_and_zero_n_do_not_blow_up() {
        let mut law = SaawLaw::new(1e-3, 1e-5, 1.0);
        assert!(law.score(0, 0.0).is_finite());
        let w = law.on_aggregate_sent(0, 0.0);
        assert!(w.is_finite());
        let w = law.on_aggregate_sent(1, -1.0);
        assert!(w.is_finite());
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_rejected() {
        let _ = SaawLaw::new(1e-3, 1.0, 1e-5);
    }
}
