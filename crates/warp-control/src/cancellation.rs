//! Dynamic cancellation: on-line selection between aggressive and lazy
//! cancellation (Section 5 of the paper).
//!
//! Control system `<HR, I, Aggressive, A, P>`: the sampled output is the
//! Hit Ratio, the configured parameter the cancellation strategy, the
//! initial state aggressive, the transfer function the dead-zone
//! threshold heuristic, invoked every `P` processed events. Thrashing is
//! damped three ways, exactly as the paper prescribes: a large filter
//! depth, infrequent control invocation, and the hysteresis of the dead
//! zone between the A2L and L2A thresholds.
//!
//! The experimental variants of Figures 6–7 are all expressible:
//!
//! * **DC** — dead-zone dynamic cancellation (`A2L` > `L2A`).
//! * **ST** — single threshold (`A2L == L2A`, dead zone eliminated).
//! * **PS n** — permanently set to the then-favored strategy after `n`
//!   comparisons; monitoring stops (that is its small edge over DC).
//! * **PA n** — permanently set to aggressive after `n` successive
//!   misses; monitoring stops.

use crate::framework::DeadZone;
use crate::hitwindow::HitWindow;
use warp_core::policy::{CancellationMode, CancellationSelector};

/// Default control period (processed events between invocations).
pub const DEFAULT_PERIOD: u64 = 16;

/// When to freeze the strategy permanently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Permanence {
    /// Never freeze (DC, ST).
    Never,
    /// Freeze to the favored strategy after this many comparisons (PS n).
    AfterComparisons(u64),
    /// Freeze to aggressive after this many successive misses (PA n).
    AfterMisses(usize),
}

/// On-line cancellation selector (all paper variants).
#[derive(Debug)]
pub struct DynamicCancellation {
    window: HitWindow,
    dead: DeadZone,
    mode: CancellationMode,
    permanence: Permanence,
    frozen: bool,
    period: u64,
    label: &'static str,
}

impl DynamicCancellation {
    /// The paper's DC: dead-zone dynamic cancellation. Figure 6 uses
    /// `filter_depth = 16`, `a2l = 0.45`, `l2a = 0.2`.
    pub fn dc(filter_depth: usize, a2l: f64, l2a: f64, period: u64) -> Self {
        assert!(l2a <= a2l, "L2A threshold must not exceed A2L");
        assert!(period >= 1, "control period must be >= 1");
        DynamicCancellation {
            window: HitWindow::new(filter_depth),
            // Output "high" = lazy. Start aggressive (paper's initial S).
            dead: DeadZone::new(l2a, a2l, false),
            mode: CancellationMode::Aggressive,
            permanence: Permanence::Never,
            frozen: false,
            period,
            label: "DC",
        }
    }

    /// Single-threshold variant (`ST t`): dead zone eliminated.
    pub fn single_threshold(filter_depth: usize, t: f64, period: u64) -> Self {
        let mut s = Self::dc(filter_depth, t, t, period);
        s.label = "ST";
        s
    }

    /// `PS n`: behave like DC (with the given filter depth) until `n`
    /// comparisons have been observed, then permanently adopt the
    /// currently favored strategy and stop monitoring.
    pub fn permanent_set(filter_depth: usize, n: u64, a2l: f64, l2a: f64, period: u64) -> Self {
        let mut s = Self::dc(filter_depth, a2l, l2a, period);
        s.permanence = Permanence::AfterComparisons(n);
        s.label = "PS";
        s
    }

    /// `PA n`: behave like DC, but permanently fall back to aggressive
    /// (and stop monitoring) after `n` successive misses.
    pub fn permanent_aggressive(
        filter_depth: usize,
        n_misses: usize,
        a2l: f64,
        l2a: f64,
        period: u64,
    ) -> Self {
        let mut s = Self::dc(filter_depth, a2l, l2a, period);
        s.permanence = Permanence::AfterMisses(n_misses);
        s.label = "PA";
        s
    }

    /// Current Hit Ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.window.ratio()
    }

    /// Whether the strategy has been permanently frozen (PS/PA fired).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn freeze(&mut self, mode: CancellationMode) {
        self.mode = mode;
        self.frozen = true;
    }
}

impl CancellationSelector for DynamicCancellation {
    fn mode(&self) -> CancellationMode {
        self.mode
    }

    fn monitoring(&self) -> bool {
        // Passive comparisons (aggressive mode) feed the Hit Ratio; once
        // frozen there is nothing left to decide, so their cost is saved.
        !self.frozen
    }

    fn record_comparison(&mut self, hit: bool) {
        if self.frozen {
            return;
        }
        self.window.record(hit);
        // PA's trigger is evaluated on the spot: successive misses are a
        // burst signal that a periodic invocation could smear out.
        if let Permanence::AfterMisses(n) = self.permanence {
            if self.window.consecutive_misses() >= n {
                self.freeze(CancellationMode::Aggressive);
            }
        }
    }

    fn invoke(&mut self) -> Option<CancellationMode> {
        if self.frozen {
            return Some(self.mode);
        }
        let hr = self.window.ratio();
        let lazy = self.dead.update(hr);
        self.mode = if lazy {
            CancellationMode::Lazy
        } else {
            CancellationMode::Aggressive
        };
        if let Permanence::AfterComparisons(n) = self.permanence {
            if self.window.total_comparisons() >= n {
                self.freeze(self.mode);
            }
        }
        Some(self.mode)
    }

    fn period(&self) -> u64 {
        // Frozen selectors stop consuming control cycles entirely.
        if self.frozen {
            0
        } else {
            self.period
        }
    }

    fn sampled_output(&self) -> Option<f64> {
        // The Hit Ratio is the control output `O` behind every decision
        // this selector makes; telemetry records it beside each flip.
        Some(self.hit_ratio())
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sel: &mut DynamicCancellation, hits: &[bool]) {
        for &h in hits {
            sel.record_comparison(h);
        }
    }

    #[test]
    fn starts_aggressive_and_switches_to_lazy_on_high_hr() {
        let mut s = DynamicCancellation::dc(16, 0.45, 0.2, 16);
        assert_eq!(s.mode(), CancellationMode::Aggressive);
        assert!(s.monitoring());
        drive(&mut s, &[true; 8]); // HR = 8/16 = 0.5 > 0.45
        assert_eq!(s.invoke(), Some(CancellationMode::Lazy));
        assert_eq!(s.mode(), CancellationMode::Lazy);
    }

    #[test]
    fn dead_zone_prevents_thrashing() {
        let mut s = DynamicCancellation::dc(16, 0.45, 0.2, 16);
        drive(&mut s, &[true; 8]);
        s.invoke();
        assert_eq!(s.mode(), CancellationMode::Lazy);
        // HR decays into the dead zone (0.2..0.45): stays lazy.
        drive(&mut s, &[false; 3]); // window: 8 hits of 16 → evictions haven't started
                                    // Add misses until HR ~ 0.31 — inside the dead zone.
        while s.hit_ratio() > 0.3 {
            s.record_comparison(false);
        }
        s.invoke();
        assert_eq!(s.mode(), CancellationMode::Lazy, "dead zone holds");
        // Drop below L2A: flips back to aggressive.
        while s.hit_ratio() >= 0.2 {
            s.record_comparison(false);
        }
        assert_eq!(s.invoke(), Some(CancellationMode::Aggressive));
    }

    #[test]
    fn single_threshold_flips_both_ways_at_same_point() {
        let mut s = DynamicCancellation::single_threshold(10, 0.4, 8);
        drive(&mut s, &[true; 5]); // 0.5 > 0.4
        assert_eq!(s.invoke(), Some(CancellationMode::Lazy));
        for _ in 0..10 {
            s.record_comparison(false);
        }
        assert_eq!(s.invoke(), Some(CancellationMode::Aggressive));
        assert_eq!(s.name(), "ST");
    }

    #[test]
    fn ps_freezes_after_n_comparisons_and_stops_monitoring() {
        let mut s = DynamicCancellation::permanent_set(16, 32, 0.45, 0.2, 8);
        drive(&mut s, &[true; 31]);
        s.invoke();
        assert!(!s.is_frozen(), "31 < 32 comparisons");
        s.record_comparison(true);
        s.invoke();
        assert!(s.is_frozen());
        assert_eq!(s.mode(), CancellationMode::Lazy);
        assert!(!s.monitoring(), "frozen: passive comparison cost avoided");
        assert_eq!(s.period(), 0, "frozen: control cycles avoided");
        // Further comparisons are ignored.
        for _ in 0..100 {
            s.record_comparison(false);
        }
        assert_eq!(s.invoke(), Some(CancellationMode::Lazy));
    }

    #[test]
    fn pa_freezes_to_aggressive_on_successive_misses() {
        let mut s = DynamicCancellation::permanent_aggressive(64, 10, 0.45, 0.2, 16);
        // Hits interleaved: never 10 successive misses.
        for _ in 0..5 {
            drive(&mut s, &[false; 9]);
            s.record_comparison(true);
        }
        assert!(!s.is_frozen());
        drive(&mut s, &[false; 10]);
        assert!(s.is_frozen());
        assert_eq!(s.mode(), CancellationMode::Aggressive);
        assert_eq!(s.name(), "PA");
    }

    #[test]
    fn frozen_lazy_survives_miss_storm() {
        // PS frozen to lazy must not flip back even if behaviour changes —
        // that is the paper's stated risk trade-off of the PS variant.
        let mut s = DynamicCancellation::permanent_set(4, 4, 0.45, 0.2, 4);
        drive(&mut s, &[true; 4]);
        s.invoke();
        assert!(s.is_frozen());
        drive(&mut s, &[false; 50]);
        assert_eq!(s.invoke(), Some(CancellationMode::Lazy));
    }
}
