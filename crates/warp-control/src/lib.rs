//! # warp-control — on-line configuration by feedback control
//!
//! The paper's central contribution: a linear feedback-control framework
//! for configuring a running Time Warp simulator, applied to three facets
//! of the kernel. Each control system is an instance of the tuple
//! `<O, I, S, T, P>` (sampled output, configured parameter, initial
//! setting, transfer function, control period):
//!
//! | facet | `O` | `I` | module |
//! |-------|-----|-----|--------|
//! | checkpointing | cost index `Ec` (save + coast-forward cost) | interval χ | [`checkpoint`] |
//! | cancellation | Hit Ratio over a filter-depth window | aggressive/lazy | [`cancellation`] |
//! | aggregation | age-modified reception rate `R(age)` | window size `W` | [`aggregation`] |
//! | GVT cadence (extension) | reclaimed + retained history | period `P_gvt` | [`gvtperiod`] |
//!
//! Controllers plug into the kernel through the `warp_core::policy`
//! traits (and into the aggregation layer of `warp-net` through
//! [`aggregation::SaawLaw`]). They are pure state machines — cheap,
//! deterministic, and unit-testable in isolation, reflecting the paper's
//! observation that sampling and actuation compete with useful
//! computation for CPU cycles.

#![warn(missing_docs)]

pub mod aggregation;
pub mod cancellation;
pub mod checkpoint;
pub mod framework;
pub mod gvtperiod;
pub mod hitwindow;

pub use aggregation::SaawLaw;
pub use cancellation::DynamicCancellation;
pub use checkpoint::{AdaptRule, DynamicCheckpoint};
pub use framework::{DeadZone, Ewma, SlidingWindow};
pub use gvtperiod::GvtPeriodLaw;
pub use hitwindow::HitWindow;
