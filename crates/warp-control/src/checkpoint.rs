//! Dynamic checkpointing: on-line adaptation of the periodic state-saving
//! interval χ (Section 4 of the paper).
//!
//! Control system `<Ec, χ, χ₀, A, P>`: the sampled output is the cost
//! index `Ec` — state-saving cost plus coast-forward cost accumulated
//! since the previous invocation — and the transfer function `A` walks χ
//! to the interval minimizing `Ec` under the single-minimum assumption.
//!
//! Two transfer functions are provided:
//!
//! * [`AdaptRule::PaperRule`] — the rule as stated in the paper: *"if Ec
//!   is not observed to have increased significantly, the check-pointing
//!   period is incremented; otherwise, it is decremented."* Cheap and, as
//!   the paper reports, competitive with far costlier analytic models.
//! * [`AdaptRule::HillClimb`] — a directional variant (keep moving while
//!   `Ec` improves, reverse when it worsens) included as an ablation;
//!   DESIGN.md discusses the comparison, and a bench exercises both.

use warp_core::policy::CheckpointTuner;

/// Default control period (processed events between invocations).
pub const DEFAULT_PERIOD: u64 = 64;

/// The transfer function family for [`DynamicCheckpoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptRule {
    /// Increment unless `Ec` increased significantly, else decrement.
    PaperRule,
    /// Persist in the current direction while `Ec` improves; reverse on a
    /// significant worsening. The step doubles while a direction keeps
    /// paying off (capped) and resets to 1 on reversal, so convergence
    /// from χ=1 to a double-digit optimum takes a handful of invocations
    /// instead of dozens.
    HillClimb,
}

/// On-line checkpoint-interval tuner.
#[derive(Clone, Debug)]
pub struct DynamicCheckpoint {
    chi: u32,
    min: u32,
    max: u32,
    /// Relative change in `Ec` treated as "significant".
    epsilon: f64,
    rule: AdaptRule,
    period: u64,
    last_ec: Option<f64>,
    /// Current walk direction for [`AdaptRule::HillClimb`].
    dir: i32,
    /// Current step size for [`AdaptRule::HillClimb`].
    step: u32,
}

impl DynamicCheckpoint {
    /// Paper-rule tuner starting at `chi0`, with χ clamped to
    /// `[1, max_chi]`.
    pub fn new(chi0: u32, max_chi: u32, period: u64) -> Self {
        Self::with_rule(chi0, max_chi, period, AdaptRule::PaperRule)
    }

    /// Tuner with an explicit transfer function.
    pub fn with_rule(chi0: u32, max_chi: u32, period: u64, rule: AdaptRule) -> Self {
        assert!(chi0 >= 1, "initial interval must be >= 1");
        assert!(max_chi >= chi0, "max interval below initial interval");
        assert!(period >= 1, "control period must be >= 1");
        DynamicCheckpoint {
            chi: chi0,
            min: 1,
            max: max_chi,
            epsilon: Self::DEFAULT_EPSILON,
            rule,
            period,
            last_ec: None,
            dir: 1,
            step: 1,
        }
    }

    /// Default significance threshold. It must sit *below* the relative
    /// per-step change of `Ec` near the optimum, or the increment rule
    /// walks straight past the minimum; 1% is comfortably below the
    /// 2–4% per-step changes seen at realistic cost ratios while still
    /// filtering sampling noise.
    const DEFAULT_EPSILON: f64 = 0.01;

    /// Override the significance threshold (relative `Ec` change).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite());
        self.epsilon = epsilon;
        self
    }

    fn significant_increase(&self, ec: f64) -> bool {
        match self.last_ec {
            None => false,
            Some(prev) => {
                // Relative to the previous sample, guarding tiny baselines.
                let base = prev.abs().max(1e-12);
                (ec - prev) / base > self.epsilon
            }
        }
    }

    fn step_by(&mut self, up: bool, step: u32) {
        if up {
            self.chi = self.chi.saturating_add(step).min(self.max);
        } else {
            self.chi = self.chi.saturating_sub(step).max(self.min);
        }
    }
}

impl CheckpointTuner for DynamicCheckpoint {
    fn interval(&self) -> u32 {
        self.chi
    }

    fn invoke(&mut self, save_cost: f64, coast_cost: f64) -> Option<u32> {
        let ec = save_cost + coast_cost;
        match self.rule {
            AdaptRule::PaperRule => {
                let worse = self.significant_increase(ec);
                self.step_by(!worse, 1);
            }
            AdaptRule::HillClimb => {
                if self.significant_increase(ec) {
                    self.dir = -self.dir;
                    self.step = 1;
                } else {
                    self.step = (self.step * 2).min(8);
                }
                self.step_by(self.dir > 0, self.step);
            }
        }
        self.last_ec = Some(ec);
        Some(self.chi)
    }

    fn period(&self) -> u64 {
        self.period
    }

    fn name(&self) -> &'static str {
        match self.rule {
            AdaptRule::PaperRule => "dyn-ckpt",
            AdaptRule::HillClimb => "dyn-ckpt-hc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic Ec landscape with a single minimum at `best`: save cost
    /// falls as 1/χ, coast cost grows linearly with χ.
    fn ec_at(chi: u32, save_unit: f64, coast_unit: f64) -> (f64, f64) {
        (save_unit / chi as f64, coast_unit * chi as f64)
    }

    fn converge(rule: AdaptRule, save_unit: f64, coast_unit: f64, rounds: usize) -> Vec<u32> {
        let mut t = DynamicCheckpoint::with_rule(1, 64, 32, rule);
        let mut trace = Vec::new();
        for _ in 0..rounds {
            let (s, c) = ec_at(t.interval(), save_unit, coast_unit);
            t.invoke(s, c);
            trace.push(t.interval());
        }
        trace
    }

    #[test]
    fn paper_rule_walks_away_from_expensive_saving() {
        // Minimum of save/χ + coast·χ at χ = sqrt(save/coast) = 8.
        let trace = converge(AdaptRule::PaperRule, 64.0, 1.0, 60);
        let settled = &trace[trace.len() - 16..];
        let avg: f64 = settled.iter().map(|&c| c as f64).sum::<f64>() / settled.len() as f64;
        assert!(
            (6.0..=12.0).contains(&avg),
            "expected to hover near the χ=8 optimum, got mean {avg} (trace {trace:?})"
        );
    }

    #[test]
    fn hill_climb_converges_too() {
        let trace = converge(AdaptRule::HillClimb, 64.0, 1.0, 60);
        let settled = &trace[trace.len() - 16..];
        let avg: f64 = settled.iter().map(|&c| c as f64).sum::<f64>() / settled.len() as f64;
        assert!((5.0..=12.0).contains(&avg), "mean {avg} (trace {trace:?})");
    }

    #[test]
    fn interval_respects_bounds() {
        let mut t = DynamicCheckpoint::new(1, 4, 8);
        // Ec constantly flat: the paper rule increments forever — bounded
        // by max.
        for _ in 0..20 {
            t.invoke(1.0, 1.0);
        }
        assert_eq!(t.interval(), 4);
        // Now make every sample a big increase: decrements to the floor.
        let mut worse = 10.0;
        for _ in 0..20 {
            worse *= 2.0;
            t.invoke(worse, 0.0);
        }
        assert_eq!(t.interval(), 1);
    }

    #[test]
    fn first_invocation_increments() {
        // No previous Ec: "not observed to have increased" — increment.
        let mut t = DynamicCheckpoint::new(3, 16, 8);
        t.invoke(5.0, 5.0);
        assert_eq!(t.interval(), 4);
    }

    #[test]
    fn small_fluctuations_are_insignificant() {
        let mut t = DynamicCheckpoint::new(4, 16, 8).with_epsilon(0.10);
        t.invoke(100.0, 0.0);
        let chi_before = t.interval();
        // +5% — within epsilon, still counts as "not increased".
        t.invoke(105.0, 0.0);
        assert_eq!(t.interval(), chi_before + 1);
    }

    #[test]
    #[should_panic]
    fn zero_initial_interval_rejected() {
        let _ = DynamicCheckpoint::new(0, 8, 8);
    }
}
