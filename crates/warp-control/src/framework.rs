//! Building blocks of the on-line configuration control systems.
//!
//! The paper characterizes a configuration control system by the tuple
//! `<O, I, S, T, P>`: the sampled output `O`, the parameter under
//! configuration `I`, its initial setting `S`, the transfer function `T`
//! from observations to the next setting, and the control period `P`.
//! Unlike analog control, sampling and actuation here *compete for the
//! same CPU cycles as useful computation*, so every controller in this
//! crate is deliberately cheap: a handful of arithmetic operations per
//! invocation, invoked infrequently.
//!
//! This module provides the shared signal-conditioning pieces: smoothing
//! filters and the non-linear dead-zone threshold the paper found best
//! suited for damping discrete strategy selection.

/// Exponentially weighted moving average — the cheapest smoothing filter.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` ∈ (0, 1]: weight of the newest sample.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feed a sample, returning the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` before the first sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Fixed-capacity sliding window with O(1) mean.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    cap: usize,
    buf: std::collections::VecDeque<f64>,
    sum: f64,
}

impl SlidingWindow {
    /// Window of the given capacity (≥ 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be >= 1");
        SlidingWindow {
            cap,
            buf: std::collections::VecDeque::with_capacity(cap),
            sum: 0.0,
        }
    }

    /// Push a sample, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.cap {
            self.sum -= self.buf.pop_front().expect("non-empty when full");
        }
        self.buf.push_back(x);
        self.sum += x;
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the window has filled.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Mean over the held samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }
}

/// Non-linear thresholding with hysteresis (the paper's Figure 3): the
/// output flips *high* only when the input rises above the upper
/// threshold and *low* only when it falls below the lower one; inside the
/// dead zone the previous output holds. Setting both thresholds equal
/// eliminates the dead zone (the paper's ST variant).
#[derive(Clone, Debug)]
pub struct DeadZone {
    lower: f64,
    upper: f64,
    high: bool,
}

impl DeadZone {
    /// `lower <= upper`; `initially_high` is the starting output.
    pub fn new(lower: f64, upper: f64, initially_high: bool) -> Self {
        assert!(
            lower <= upper,
            "dead zone thresholds inverted: lower {lower} > upper {upper}"
        );
        DeadZone {
            lower,
            upper,
            high: initially_high,
        }
    }

    /// Feed a sample; returns the (possibly unchanged) output state.
    pub fn update(&mut self, x: f64) -> bool {
        if x > self.upper {
            self.high = true;
        } else if x < self.lower {
            self.high = false;
        }
        self.high
    }

    /// Current output state without feeding a sample.
    pub fn is_high(&self) -> bool {
        self.high
    }

    /// The `(lower, upper)` thresholds.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_and_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(0.0), 5.0);
        assert_eq!(e.update(0.0), 2.5);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sliding_window_mean_and_eviction() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.mean(), None);
        w.push(3.0);
        w.push(6.0);
        assert_eq!(w.mean(), Some(4.5));
        assert!(!w.is_full());
        w.push(9.0);
        assert!(w.is_full());
        assert_eq!(w.mean(), Some(6.0));
        w.push(12.0); // evicts 3.0
        assert_eq!(w.mean(), Some(9.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn dead_zone_holds_state_between_thresholds() {
        let mut d = DeadZone::new(0.2, 0.45, false);
        assert!(!d.update(0.3), "dead zone: stays low");
        assert!(d.update(0.5), "above upper: flips high");
        assert!(d.update(0.3), "dead zone: stays high");
        assert!(d.update(0.44), "still in dead zone");
        assert!(!d.update(0.1), "below lower: flips low");
        assert_eq!(d.thresholds(), (0.2, 0.45));
    }

    #[test]
    fn single_threshold_has_no_dead_zone() {
        let mut d = DeadZone::new(0.4, 0.4, false);
        assert!(d.update(0.41));
        assert!(!d.update(0.39));
        assert!(!d.update(0.4), "exactly at threshold: holds");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_thresholds_rejected() {
        let _ = DeadZone::new(0.5, 0.2, false);
    }
}
