//! # warp-exec — executives for the Time Warp kernel
//!
//! Three ways to drive the same simulation specification:
//!
//! * [`sequential`] — single event list in strict timestamp order: the
//!   golden model that defines correct committed histories.
//! * [`virtual_cluster`] — a deterministic discrete-event simulation of
//!   the paper's network-of-workstations testbed: per-node CPU clocks
//!   charged from the cost model, wire latency and bandwidth on every
//!   physical message. This is the substrate all figures are reproduced
//!   on ("execution time" = modeled completion time).
//! * [`threaded`] — one OS thread per LP over a channel mesh with
//!   Mattern-token GVT: the kernel as a real parallel program.
//! * [`distributed`] — the threaded kernel spread across OS processes: a
//!   coordinator spawns worker binaries, LP blocks run per worker, and
//!   the same LP loop exchanges frames over a TCP mesh.
//!
//! All four consume a [`spec::SimulationSpec`] and produce a
//! [`report::RunReport`].

#![warn(missing_docs)]

pub mod distributed;
pub mod report;
pub mod sequential;
mod snapshot;
pub mod spec;
pub mod threaded;
pub mod virtual_cluster;

pub use distributed::{
    checkpoint_segment_path, journal_job_json, load_checkpoint_segment, resume_coordinator,
    run_coordinator, worker_main, worker_main_with, DistConfig, DistError, NetTuning,
    RecoveryPolicy, RejoinSpec,
};
pub use report::{LpSummary, ObjectSummary, ResumeStats, RunReport};
pub use sequential::run_sequential;
pub use spec::{ObjectFactory, PolicyFactory, SimulationSpec};
pub use threaded::run_threaded;
pub use virtual_cluster::{run_virtual, run_virtual_inspect, run_virtual_with, VirtualOptions};
