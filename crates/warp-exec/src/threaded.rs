//! The threaded executive: one OS thread per logical process.
//!
//! This is the kernel running as a genuinely parallel program: LP threads
//! exchange physical messages over a mesh of preallocated SPSC ring
//! lanes (`warp_net::spsc`; FIFO per ordered pair, like the channel mesh
//! it replaced — see `docs/hot-path.md`), GVT
//! is estimated with the Mattern-style token of `warp_core::gvt`, and
//! termination is GVT = ∞. Aggregation windows are interpreted in wall
//! seconds here (the virtual executive interprets them in modeled
//! seconds); everything else — models, policies, cancellation machinery —
//! is byte-for-byte the same code the other executives drive, which is
//! the point: configurations found on one executive transfer to the other.

use crate::report::{LpSummary, ObjectSummary, RunReport};
use crate::spec::SimulationSpec;
use std::time::{Duration, Instant};
use warp_core::gvt::{GvtController, MatternAgent};
use warp_core::stats::{CommStats, ObjectStats};
use warp_core::{Event, ObjectId, VirtualTime};
use warp_net::{lane_mesh, Aggregator, Endpoint, LaneEndpoint, PhysMsg};

/// Traffic multiplexed over the mesh. Shared with the distributed
/// executive, whose TCP frames carry exactly these payloads (the
/// checkpoint and abort packets are process-local: the distributed
/// router fans the corresponding frames out to its LP threads).
pub(crate) enum Packet {
    /// Application events (a physical message), tagged with the sender's
    /// Mattern epoch.
    Data { msg: PhysMsg, epoch: u32 },
    /// The circulating GVT token.
    Token(warp_core::gvt::GvtToken),
    /// A freshly computed GVT (∞ = simulation over, shut down).
    GvtNews(VirtualTime),
    /// Checkpoint request: copy the committed window up to `gvt` and
    /// answer on `reply`.
    Ckpt {
        /// Checkpoint id (echoed in the part).
        ckpt: u32,
        /// The checkpoint horizon (an announced GVT).
        gvt: VirtualTime,
        /// Where the extracted part goes (a per-checkpoint collector).
        reply: std::sync::mpsc::Sender<CkptPart>,
    },
    /// The coordinator persisted a checkpoint at `gvt`: history below it
    /// is recoverable, the fossil pin may advance.
    CkptAck(VirtualTime),
    /// The session failed (unclean peer loss): stop immediately and
    /// discard in-progress state — recovery restarts from a checkpoint.
    Abort,
}

/// One LP's contribution to a checkpoint.
pub(crate) struct CkptPart {
    /// The LP's global id.
    pub lp: u32,
    /// Checkpoint id this part answers.
    pub ckpt: u32,
    /// Per-object committed events in `[previous horizon, gvt)`.
    pub objects: Vec<(ObjectId, Vec<Event>)>,
}

/// What an LP needs from its transport. The threaded executive plugs in
/// an in-process channel [`Endpoint`]; the distributed executive plugs
/// in a port that routes local packets over channels and remote ones
/// over the TCP mesh. LP ids are *global* — the LP loop itself never
/// knows whether a peer lives in this process.
pub(crate) trait LpPort {
    /// This LP's global id.
    fn id(&self) -> usize;
    /// Total number of LPs in the whole simulation.
    fn n_total(&self) -> usize;
    /// Send a packet to a global LP id. Must never block on the LP loop
    /// and must tolerate peers that already shut down.
    fn send(&self, to: usize, p: Packet);
    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Packet>;
    /// Blocking receive with a timeout; `None` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Option<Packet>;
    /// The controller LP announced a fresh GVT. The distributed port
    /// forwards this to the coordinator as `Frame::Progress`, which is
    /// what paces the checkpoint protocol; in-process transports ignore
    /// it.
    fn note_gvt(&self, _gvt: VirtualTime) {}
    /// Should telemetry batches be streamed out instead of accumulated?
    /// The distributed port says yes: the coordinator merges worker
    /// streams live (and a worker lost to a fault has still delivered
    /// everything up to its last GVT round).
    fn wants_telemetry(&self) -> bool {
        false
    }
    /// Ship one JSON-encoded [`warp_telemetry::TelemetryReport`] batch
    /// toward the coordinator. Only called when `wants_telemetry()`.
    fn stream_telemetry(&self, _json: Vec<u8>) {}
    /// Should per-LP load samples be reported at GVT rounds? The
    /// distributed port says yes when the cluster balance controller is
    /// armed; in-process transports have no one to rebalance.
    fn wants_load(&self) -> bool {
        false
    }
    /// Ship one LP's cumulative load counters for the GVT round toward
    /// the coordinator's balance controller. Only called when
    /// `wants_load()`. Advisory: loss only delays a migration decision.
    fn report_load(&self, _gvt: VirtualTime, _load: warp_balance::LpLoad) {}
    /// Host-speed pacing hook, called once per optimistically executed
    /// event. The distributed port uses it to emulate a slow host (a
    /// process-wide rate limit) for balance tests; everywhere else it is
    /// free.
    fn throttle(&self) {}
}

impl LpPort for Endpoint<Packet> {
    fn id(&self) -> usize {
        Endpoint::id(self)
    }
    fn n_total(&self) -> usize {
        self.n_peers()
    }
    fn send(&self, to: usize, p: Packet) {
        Endpoint::send(self, to, p);
    }
    fn try_recv(&self) -> Option<Packet> {
        Endpoint::try_recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Option<Packet> {
        Endpoint::recv_timeout(self, timeout)
    }
}

impl LpPort for LaneEndpoint<Packet> {
    fn id(&self) -> usize {
        LaneEndpoint::id(self)
    }
    fn n_total(&self) -> usize {
        self.n_peers()
    }
    fn send(&self, to: usize, p: Packet) {
        LaneEndpoint::send(self, to, p);
    }
    fn try_recv(&self) -> Option<Packet> {
        LaneEndpoint::try_recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Option<Packet> {
        LaneEndpoint::recv_timeout(self, timeout)
    }
}

/// Events processed between communication polls.
const BATCH: usize = 64;
/// Fallback GVT cadence when the spec disables fossil collection.
const TERMINATION_PROBE: Duration = Duration::from_millis(5);

/// Run the spec on real threads. Returns when GVT reaches infinity.
pub fn run_threaded(spec: &SimulationSpec) -> RunReport {
    let start_all = Instant::now();
    let n_lps = spec.partition.n_lps();
    let endpoints = lane_mesh::<Packet>(n_lps);

    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|endpoint| {
            let spec = spec.clone();
            std::thread::spawn(move || lp_thread(spec, endpoint, LpSeed::Fresh, None))
        })
        .collect();

    let mut results: Vec<LpOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("LP thread panicked"))
        .collect();
    results.sort_by_key(|o| o.summary.lp);
    let gvt_rounds = results.iter().map(|o| o.gvt_rounds).max().unwrap_or(0);
    let telemetry = merge_telemetry(results.iter_mut().filter_map(|o| o.telemetry.take()));
    let per_lp: Vec<LpSummary> = results.into_iter().map(|o| o.summary).collect();
    let wall = start_all.elapsed().as_secs_f64();

    let mut kernel = ObjectStats::default();
    let mut comm = CommStats::default();
    let mut committed = 0u64;
    for s in &per_lp {
        committed += s.kernel.net_executed();
        kernel.merge(&s.kernel);
        comm.merge(&s.comm);
    }

    RunReport {
        timeline: Vec::new(),
        executive: "threaded".into(),
        completion_seconds: wall,
        wall_seconds: wall,
        committed_events: committed,
        events_per_second: if wall > 0.0 {
            committed as f64 / wall
        } else {
            0.0
        },
        gvt_rounds,
        kernel,
        comm,
        per_lp,
        recoveries: 0,
        migrations: Vec::new(),
        scales: Vec::new(),
        telemetry,
        wire_agg: Vec::new(),
        resume: Default::default(),
    }
}

/// Fold per-LP telemetry reports into one cluster-wide series (`None`
/// when no LP recorded anything — i.e. telemetry was off).
pub(crate) fn merge_telemetry(
    parts: impl Iterator<Item = warp_telemetry::TelemetryReport>,
) -> Option<warp_telemetry::TelemetryReport> {
    let mut merged: Option<warp_telemetry::TelemetryReport> = None;
    for part in parts {
        match &mut merged {
            None => merged = Some(part),
            Some(m) => m.merge(part),
        }
    }
    merged
}

struct LpThread<P: LpPort> {
    lp: warp_core::LpRuntime,
    agg: Aggregator,
    agent: MatternAgent,
    ctrl: Option<GvtController>,
    port: P,
    start: Instant,
    last_round: Instant,
    fossil: bool,
    gvt_period: Duration,
    gvt_rounds: u64,
    done: bool,
    collect_traces: bool,
    partition: std::sync::Arc<warp_core::Partition>,
    /// `Some(frontier)` when resuming from a checkpoint: skip object
    /// init and ship these remote-destined replay sends instead.
    boot_frontier: Option<Vec<Event>>,
    /// Lower end of the next checkpoint window (the last horizon this LP
    /// contributed a part for, or the restore horizon).
    ckpt_from: VirtualTime,
    /// With recovery on, `Some(h)`: history at or above the last *acked*
    /// checkpoint horizon `h` must survive fossil collection — it is the
    /// part of the committed log no persisted checkpoint covers yet.
    /// `None` = recovery off, GVT alone bounds collection.
    fossil_pin: Option<VirtualTime>,
    /// Set by `Packet::Abort`: the summary is garbage, discard it.
    aborted: bool,
    /// Telemetry collector (`None` unless the spec enabled it). Sampled
    /// at every GVT round; purely observational.
    recorder: Option<warp_telemetry::Recorder>,
}

impl<P: LpPort> LpThread<P> {
    fn ship(&mut self, msgs: Vec<PhysMsg>) {
        for msg in msgs {
            let c = msg.send_cost(self.lp.cost_model());
            self.agg.note_send_cost(c);
            let epoch = self.agent.tag_send(msg.min_recv_time());
            let to = msg.dst.index();
            self.port.send(to, Packet::Data { msg, epoch });
        }
    }

    fn offer_remote(&mut self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let now = self.start.elapsed().as_secs_f64();
        let mut due = Vec::new();
        for ev in events {
            let dst = self.partition.lp_of(ev.dst);
            self.agg.offer(dst, ev, now, &mut due);
        }
        self.ship(due);
    }

    fn local_min(&self) -> VirtualTime {
        self.lp.gvt_contribution().min(self.agg.buffered_min_time())
    }

    fn apply_gvt(&mut self, gvt: VirtualTime) {
        if let Some(rec) = &mut self.recorder {
            // Sample *before* fossil collection so the retained-history
            // gauge reflects the pressure the round is about to relieve.
            rec.observe_lp(gvt, &mut self.lp);
            for (dst, old, new) in self.agg.take_window_changes() {
                rec.window_change(gvt, dst.0, old, new);
            }
            if self.port.wants_telemetry() {
                if let Some(batch) = rec.drain() {
                    if let Ok(json) = serde_json::to_vec(&batch) {
                        self.port.stream_telemetry(json);
                    }
                }
            }
        }
        if self.port.wants_load() && gvt.is_finite() {
            let stats = self.lp.stats();
            let front = self.lp.lvt_front();
            self.port.report_load(
                gvt,
                warp_balance::LpLoad {
                    executed: stats.executed,
                    rolled_back: stats.rolled_back,
                    retained: self.lp.history_items() as u64,
                    lvt_lead: if front.is_finite() {
                        front.ticks().saturating_sub(gvt.ticks())
                    } else {
                        0
                    },
                },
            );
        }
        if gvt.is_infinite() {
            self.done = true;
        } else if self.fossil {
            match self.fossil_pin {
                None => self.lp.fossil_collect(gvt),
                // Keep state and input with recv ≥ pin: `fossil_bound`
                // may resolve the pin itself to a snapshot *at* the pin,
                // so collect strictly below it. Output records whose
                // sends land at or beyond the pin are retained too —
                // they are the frontier an in-place rollback to the pin
                // must re-ship.
                Some(pin) => {
                    let bound = gvt.min(VirtualTime::from_ticks(pin.ticks().saturating_sub(1)));
                    self.lp.fossil_collect_retaining(bound, pin);
                }
            }
        }
    }

    fn forward_token(&mut self, mut token: warp_core::gvt::GvtToken) {
        self.agent.on_token(&mut token, self.local_min());
        let next = (self.port.id() + 1) % self.port.n_total();
        if next == self.port.id() {
            // Single-LP mesh: the circulation is already complete.
            self.complete_round(token);
        } else {
            self.port.send(next, Packet::Token(token));
        }
    }

    /// Controller only: the token finished a circulation.
    fn complete_round(&mut self, token: warp_core::gvt::GvtToken) {
        let ctrl = self
            .ctrl
            .as_mut()
            .expect("token returned to a non-controller");
        match ctrl.on_return(token) {
            Ok(gvt) => {
                self.gvt_rounds += 1;
                self.port.note_gvt(gvt);
                for peer in 1..self.port.n_total() {
                    self.port.send(peer, Packet::GvtNews(gvt));
                }
                self.last_round = Instant::now();
                self.apply_gvt(gvt);
            }
            Err(token) => self.forward_token(token),
        }
    }

    fn handle(&mut self, p: Packet) {
        match p {
            Packet::Data { msg, epoch } => {
                self.agent.note_receive(epoch);
                self.agg.note_received(&msg, self.lp.cost_model());
                let mut remote = Vec::new();
                self.lp.deliver(msg.events, &mut remote);
                self.offer_remote(remote);
            }
            Packet::Token(token) => {
                if self.ctrl.is_some() {
                    self.complete_round(token);
                } else {
                    self.forward_token(token);
                }
            }
            Packet::GvtNews(gvt) => self.apply_gvt(gvt),
            Packet::Ckpt { ckpt, gvt, reply } => {
                let objects = self.lp.committed_window(self.ckpt_from, gvt);
                self.ckpt_from = self.ckpt_from.max(gvt);
                let _ = reply.send(CkptPart {
                    lp: self.port.id() as u32,
                    ckpt,
                    objects,
                });
            }
            Packet::CkptAck(gvt) => {
                if let Some(pin) = &mut self.fossil_pin {
                    *pin = (*pin).max(gvt);
                }
            }
            Packet::Abort => {
                self.aborted = true;
                self.done = true;
            }
        }
    }

    fn run(mut self) -> LpOutcome {
        let debug_trace = std::env::var("WARP_DEBUG_THREADED").is_ok();
        let mut loops: u64 = 0;
        match self.boot_frontier.take() {
            Some(frontier) => self.offer_remote(frontier),
            None => {
                let mut init_out = Vec::new();
                self.lp.init(&mut init_out);
                self.offer_remote(init_out);
            }
        }

        while !self.done {
            loops += 1;
            if debug_trace && loops.is_multiple_of(200_000) {
                eprintln!(
                    "[thr lp{}] loops={} next={} lmin={} buffered={} rounds={} in_prog={:?} stats={}r/{}x",
                    self.port.id(),
                    loops,
                    self.lp.next_time(),
                    self.local_min(),
                    self.agg.buffered(),
                    self.gvt_rounds,
                    self.ctrl.as_ref().map(|c| c.in_progress()),
                    self.lp.stats().rollbacks(),
                    self.lp.stats().executed,
                );
            }
            let mut idle = true;

            // 1. Incoming traffic, in arrival order.
            while let Some(p) = self.port.try_recv() {
                idle = false;
                self.handle(p);
                if self.done {
                    break;
                }
            }
            if self.done {
                break;
            }

            // 2. A batch of optimistic event executions.
            let mut remote = Vec::new();
            for _ in 0..BATCH {
                if !self.lp.process_one(&mut remote) {
                    break;
                }
                idle = false;
                self.port.throttle();
            }
            self.offer_remote(remote);

            // 3. Aggregation deadlines (wall clock); idle lazy flushes.
            let now = self.start.elapsed().as_secs_f64();
            let mut due = Vec::new();
            self.agg.poll(now, &mut due);
            self.ship(due);
            if self.lp.next_time().is_infinite() {
                let mut remote = Vec::new();
                self.lp.flush_idle(&mut remote);
                self.offer_remote(remote);
            }

            // 4. Controller cadence: periodic rounds, eager when idle
            //    (termination detection).
            if self.ctrl.is_some() {
                let due_round = self.last_round.elapsed() >= self.gvt_period
                    || (idle && self.lp.next_time().is_infinite());
                if due_round && !self.ctrl.as_ref().unwrap().in_progress() {
                    let token = self.ctrl.as_mut().unwrap().start_round();
                    self.forward_token(token);
                }
            }

            // 5. Block briefly instead of spinning when idle.
            if idle && !self.done {
                if let Some(p) = self.port.recv_timeout(Duration::from_micros(200)) {
                    self.handle(p);
                }
            }
        }

        let objects = self
            .lp
            .objects()
            .iter()
            .map(|o| ObjectSummary {
                id: o.id().0,
                name: o.object_name(),
                final_mode: format!("{:?}", o.cancellation_mode()),
                final_chi: o.checkpoint_interval(),
                committed: o.stats().net_executed(),
                stats: o.stats().clone(),
                trace_digest: if self.collect_traces {
                    Some(o.trace_digest().value())
                } else {
                    None
                },
            })
            .collect();
        // Streaming ports already shipped every batch at GVT rounds (the
        // final one included); returning the tail too would double-count
        // it at the coordinator.
        let telemetry = match self.recorder.take() {
            Some(rec) if !self.port.wants_telemetry() => Some(rec.finish()),
            _ => None,
        };
        LpOutcome {
            summary: LpSummary {
                lp: self.lp.id().0,
                kernel: self.lp.stats(),
                comm: self.agg.stats().clone(),
                objects,
            },
            gvt_rounds: self.gvt_rounds,
            aborted: self.aborted,
            telemetry,
            runtime: if self.aborted {
                Some(Box::new(self.lp))
            } else {
                None
            },
        }
    }
}

/// How an LP thread starts life.
pub(crate) enum LpSeed {
    /// Build the LP from the spec and run object init.
    Fresh,
    /// Resume from a checkpoint: the LP has already been rebuilt via
    /// `LpRuntime::restore_committed`; `frontier` holds the
    /// remote-destined sends the replay regenerated (at or beyond the
    /// restore horizon) which must ship instead of init's output.
    Restored {
        /// The restored runtime (boxed: far larger than `Fresh`).
        lp: Box<warp_core::LpRuntime>,
        /// Remote frontier events to ship at startup.
        frontier: Vec<Event>,
    },
}

/// What an LP thread hands back when it stops.
pub(crate) struct LpOutcome {
    /// Final per-LP summary (meaningless when `aborted`).
    pub summary: LpSummary,
    /// GVT rounds this LP's controller completed (0 off the controller).
    pub gvt_rounds: u64,
    /// The thread stopped on `Packet::Abort` rather than GVT = ∞.
    pub aborted: bool,
    /// Accumulated telemetry (`None` when disabled or when the port
    /// streamed batches out instead).
    pub telemetry: Option<warp_telemetry::TelemetryReport>,
    /// The runtime itself, handed back on abort so a surviving worker
    /// can roll it back in place at the next resume instead of
    /// rebuilding from committed logs (`None` on clean completion).
    pub runtime: Option<Box<warp_core::LpRuntime>>,
}

/// Drive one LP to completion over any transport. Shared by the
/// threaded executive (in-process channel mesh) and the distributed
/// executive (TCP mesh between worker processes). The global LP 0 hosts
/// the GVT controller wherever it lives.
///
/// `ckpt_base` arms the checkpoint protocol: `Some(h)` means recovery is
/// on, the committed log from `h` up is not yet persisted (h = ZERO on a
/// fresh run, the restore horizon on a resumed one), so fossil
/// collection is pinned below `h` until `Packet::CkptAck`s advance it.
pub(crate) fn lp_thread<P: LpPort>(
    spec: SimulationSpec,
    port: P,
    seed: LpSeed,
    ckpt_base: Option<VirtualTime>,
) -> LpOutcome {
    let my_id = warp_core::LpId(port.id() as u32);
    let (mut lp, boot_frontier) = match seed {
        LpSeed::Fresh => (spec.build_lp(my_id), None),
        LpSeed::Restored { lp, frontier } => (*lp, Some(frontier)),
    };
    // Restored runtimes are rebuilt outside `build_lp`; re-arm recording.
    lp.set_record_control(spec.telemetry);
    let mut agg = Aggregator::new(my_id, spec.aggregation.clone());
    agg.set_record_windows(spec.telemetry);
    let recorder = spec
        .telemetry
        .then(|| warp_telemetry::Recorder::new(my_id.0));
    let worker = LpThread {
        lp,
        agg,
        agent: MatternAgent::new(),
        ctrl: if port.id() == 0 {
            Some(GvtController::new())
        } else {
            None
        },
        port,
        start: Instant::now(),
        last_round: Instant::now(),
        fossil: spec.gvt_period.is_some(),
        gvt_period: spec
            .gvt_period
            .map(Duration::from_secs_f64)
            .unwrap_or(TERMINATION_PROBE),
        gvt_rounds: 0,
        done: false,
        collect_traces: spec.collect_traces,
        partition: spec.partition.clone(),
        boot_frontier,
        ckpt_from: ckpt_base.unwrap_or(VirtualTime::ZERO),
        fossil_pin: ckpt_base,
        aborted: false,
        recorder,
    };
    worker.run()
}
