//! The distributed executive: the kernel across OS *processes*.
//!
//! Topology: one **coordinator** (mesh process 0, no LPs — pure control
//! plane) plus `n_workers` **worker** processes, each owning a set of
//! the simulation's LPs (contiguous blocks at start; arbitrary after a
//! migration — the explicit [`warp_balance::Assignment`] map travels in
//! every [`WorkerInit`]/[`SessionLine`]). Every process joins a full
//! TCP mesh ([`warp_net::tcp`]); inside a worker, each of its LPs runs
//! the *same* `lp_thread` loop the threaded executive uses, plugged into
//! a `WorkerPort` that routes packets to co-resident LPs over local
//! channels and to remote LPs as [`Frame`]s over the mesh. The Mattern
//! GVT token circulates in global LP-id order exactly as in the threaded
//! executive — the token ring simply spans process boundaries now — and
//! GVT = ∞ shuts every LP down wherever it lives.
//!
//! Bootstrap protocol (coordinator side in [`run_coordinator`], worker
//! side in [`worker_main`]):
//!
//! 1. The coordinator binds a loopback listener and spawns each worker
//!    binary with piped stdio.
//! 2. Each worker binds its own ephemeral listener and prints a single
//!    `LISTEN <addr>` line on stdout.
//! 3. The coordinator sends each worker one line of JSON
//!    ([`WorkerInit`]) on stdin: mesh coordinates, every peer's address,
//!    and an *opaque* model description — `warp-exec` never learns how
//!    to build models; the worker binary supplies a closure that turns
//!    the model JSON into a [`SimulationSpec`].
//! 4. Everyone establishes the TCP mesh (workers dial lower ids, accept
//!    higher ones) and the simulation runs.
//! 5. Each worker serializes its per-LP summaries into a
//!    [`Frame::Report`], then closes with `Bye`. The coordinator merges
//!    the reports into one [`RunReport`].
//!
//! # Failure model and recovery
//!
//! Runs are organized in **sessions**, numbered by the mesh epoch in
//! every handshake. Session 0 is the fresh start; each recovery bumps
//! the epoch, so any stale frame from a pre-crash connection is refused
//! at handshake time and can never leak into the restarted run.
//!
//! While a session runs (and [`RecoveryPolicy::enabled`]), the
//! coordinator paces a **checkpoint protocol** off the `Frame::Progress`
//! notifications the controller worker emits at each GVT round:
//! everything committed below an announced GVT `g` is, by the GVT
//! invariant, processed everywhere and beyond rollback, so the
//! coordinator broadcasts `SnapshotReq{g}`, each worker extracts every
//! object's committed events in the window since the previous
//! checkpoint (the `snapshot` codec), and the coordinator appends the
//! per-worker deltas to an in-memory chain once **all** workers have
//! answered. Only then does it broadcast `SnapshotAck`, which lets the
//! workers' fossil collectors advance past the old horizon — history a
//! persisted checkpoint does not yet cover is pinned in memory (state
//! and input strictly below the pin, plus the output records whose
//! sends land at or beyond it: the raw material of an in-place resume).
//!
//! With [`RecoveryPolicy::store_dir`] set, every committed delta is
//! also spilled to a per-worker, CRC-checked **segment file** as it
//! arrives — a durable shadow of the chains (format in
//! `docs/recovery-store.md`, read back via
//! [`load_checkpoint_segment`]). [`RecoveryPolicy::compact_after`]
//! bounds chain depth: once any chain reaches it, every worker's chain
//! is merged into a single delta spanning the full committed range —
//! uniformly, so migration re-keying keeps seeing identical windows —
//! and the segments are atomically rewritten.
//!
//! When a peer is lost *uncleanly* (crash, half-open link past the
//! liveness timeout, or an unrecoverable sequence gap), every survivor
//! aborts its LP threads, re-binds a fresh listener, re-announces
//! `LISTEN` on stdout, and waits on stdin; the coordinator reaps dead
//! workers, respawns them, distributes the new peer list (a new-session
//! [`WorkerInit`] to respawned processes, a [`SessionLine`] to
//! survivors), re-establishes the mesh under the bumped epoch, and
//! **streams** every worker its delta chain as an ordered
//! [`Frame::ResumeChunk`] sequence — chunked at
//! [`RecoveryPolicy::resume_chunk_bytes`] and reassembled by the worker,
//! so a resume payload is never bounded by the transport's frame cap
//! ([`NetTuning::max_frame_bytes`]). How a worker re-seeds each LP then
//! depends on what it still holds: a **survivor** whose LP thread was
//! aborted hands its live runtime back to the session loop, and the next
//! resume rolls that runtime back *in place* to the checkpoint horizon
//! (undo speculation above it, harvest the retained output frontier) —
//! no object init, no replay of committed history. Everything else —
//! respawned processes, migrated-in LPs — is rebuilt by replaying the
//! committed logs through the normal kernel paths. Both paths re-ship
//! the regenerated frontier and must commit exactly the history the
//! sequential golden model commits; [`ResumeStats`] in the final report
//! counts each path and the events full rebuilds replayed. Recovery is
//! bounded by [`RecoveryPolicy::max_recoveries`]; past that (or with
//! recovery disabled) a lost worker is a clean [`DistError::Worker`],
//! never a hang.
//!
//! Two observational channels ride on the same mesh. Workers with
//! telemetry enabled piggyback periodic [`Frame::Telemetry`] batches
//! (drained at GVT rounds) that the coordinator merges into the final
//! [`RunReport`]; loss or reordering of these frames never affects
//! correctness. And a **GVT-stall watchdog**
//! ([`RecoveryPolicy::stall_budget_ms`]) declares a session livelocked
//! when the committed horizon stops advancing — catching wedged-but-
//! connected clusters (e.g. a silenced token ring) that per-link
//! liveness timeouts cannot see — and routes them through the same
//! recovery path as a crash.
//!
//! # On-line load balancing (LP migration)
//!
//! With [`BalancePolicy::enabled`] (requires recovery), workers also
//! stream one [`Frame::LoadReport`] per LP at every GVT round. The
//! coordinator buckets a complete round of reports and feeds it to a
//! [`warp_balance::BalanceController`] — the cluster-level instance of
//! the paper's on-line configuration loop, where the sampled output `O`
//! is each LP's LVT lead over GVT and the input `I` is the LP↔worker
//! assignment. When the controller (after its dead-zone/patience
//! hysteresis) proposes a new assignment, migration reuses the recovery
//! machinery wholesale: the coordinator drives one extra checkpoint
//! barrier so the chains cover everything committed, re-keys the stored
//! delta chains under the new owner map, broadcasts [`Frame::Rebalance`]
//! (workers abort their LP threads exactly as on a peer loss and
//! re-announce `LISTEN`), then regroups into a new session whose
//! `Resume` restores every LP on its *new* owner. Because restoration
//! replays committed history through the normal kernel paths, the
//! committed trace digest is unchanged by any migration. Migrations are
//! recorded as [`MigrationRecord`]s in the final report and as
//! `Param::Assignment` control events in the telemetry trajectory.
//!
//! # Elastic membership (growing and shrinking the worker set)
//!
//! With [`ElasticPolicy::enabled`] (requires recovery, like balancing),
//! the same per-LP [`Frame::LoadReport`] stream also feeds a
//! [`warp_elastic::ElasticController`] — the paper's configuration loop
//! pointed at the *worker count itself*. When cluster-wide pressure
//! (the spread of LVT leads) stays outside the controller's dead zone
//! for its patience window, the coordinator drives a **scale
//! transition** through the identical barrier-checkpoint machinery a
//! migration uses: one extra checkpoint so the chains cover everything
//! committed, then the session ends on purpose under the internal
//! `SessionEnd::Scale` reason (never charged to the recovery budget).
//!
//! *Scale-out* admits a fresh worker into the successor session: the
//! coordinator either spawns another copy of the worker binary
//! ([`ElasticPolicy::spawn`]) or adopts a process that dialed the
//! admission listener with a [`Frame::Join`] handshake (`join_main`,
//! the `--join` flag of a worker binary; the listener's address is
//! published via [`DistConfig::admit_file`]). The newcomer is seeded
//! exactly like a respawned worker — chains re-keyed to the grown
//! [`warp_balance::Assignment`], streamed as `ResumeChunk`s — and runs
//! one **probation** session: if the very next session is lost blaming
//! the newcomer, the coordinator *evicts* it and falls back to the
//! pre-scale membership (chains re-keyed back, recorded as a
//! `"fallback"` [`ScaleRecord`]) rather than burning recoveries on a
//! bad admission.
//!
//! *Scale-in* retires the highest-numbered worker: after the barrier
//! checkpoint, the coordinator sends the retiree [`Frame::Retire`] and
//! the survivors [`Frame::Rebalance`]; the retiree aborts its LP
//! threads, answers [`Frame::DrainAck`], closes cleanly, and **exits
//! 0** — its LPs restore on the survivors from the re-keyed chains.
//! Every transition lands in the report as a [`ScaleRecord`] and in the
//! telemetry trajectory as a `Param::ClusterSize` control event, and
//! because restoration replays committed history through the normal
//! kernel paths, the committed trace digest is unchanged by any scale.
//!
//! Orphan hygiene: a worker whose coordinator dies sees either its mesh
//! link drop or stdin close (the coordinator holds the write end) and
//! — without a rejoin grace — exits non-zero on its own, so workers
//! never outlive the coordinator by more than the liveness timeout plus
//! a bounded wait ([`NetTuning::orphan_grace_ms`]) for recovery
//! instructions. With [`RecoveryPolicy::rejoin_grace_ms`] set the
//! worker *parks* instead: it freezes its kernel state (retaining the
//! aborted session's runtimes for in-place rollback), dials the
//! coordinator's re-admission point with jittered exponential backoff,
//! and presents a [`Frame::Reattach`] carrying its identity and fossil
//! horizon. A restarted coordinator ([`resume_coordinator`], the
//! `--resume` flag of `warp-cluster`) replays the durable run journal
//! from `store_dir`, re-adopts parked survivors over those sockets, and
//! continues the run under a bumped session; only when the grace
//! expires with no successor does the parked worker give up (exit 4,
//! distinct from the no-grace orphan exit 3).

use crate::report::{
    LpSummary, MigrationMove, MigrationRecord, ResumeStats, RunReport, ScaleRecord,
};
use crate::snapshot::{
    compact_chain, decode_resume, encode_delta, encode_resume,
    journal::{journal_path, load_journal, RunJournal},
    merge_logs, rekey_chains,
    store::{load_segment_prefix, segment_path, SegmentStore},
    LpDelta, SnapshotError,
};
use crate::spec::SimulationSpec;
use crate::threaded::{lp_thread, CkptPart, LpOutcome, LpPort, LpSeed, Packet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};
use warp_balance::{Assignment, BalanceController, BalancePolicy, LpLoad};
use warp_core::stats::{CommStats, ObjectStats};
use warp_core::{LpId, VirtualTime};
use warp_elastic::{ElasticController, ElasticPolicy, ScaleDirection, ScalePlan};
use warp_net::tcp::{bind_loopback, MeshEvent, MeshSender, TcpMeshConfig};
use warp_net::{FaultPlan, Frame, Mesh, Transport};
use warp_telemetry::{ControlEvent, Param, TelemetryReport};

/// Transport tuning for distributed runs. All knobs that used to be
/// hard-coded constants; every worker receives the same values in its
/// [`WorkerInit`], so failure detection fires consistently across the
/// cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetTuning {
    /// Idle interval after which a link writer injects a heartbeat
    /// (milliseconds).
    pub heartbeat_ms: u64,
    /// Silence threshold after which a link is declared half-open, and
    /// the bound on how long a sequence gap may persist (milliseconds).
    pub liveness_ms: u64,
    /// First dial-retry backoff during mesh establishment (milliseconds).
    pub connect_backoff_start_ms: u64,
    /// Dial-retry backoff ceiling (milliseconds).
    pub connect_backoff_max_ms: u64,
    /// Frame-size cap (bytes) every process's decoder enforces; bounds
    /// worst-case memory per link and, together with
    /// [`RecoveryPolicy::resume_chunk_bytes`], the frames of a streamed
    /// resume. 0 = the protocol default
    /// ([`warp_net::frame::MAX_FRAME_BYTES`]).
    #[serde(default)]
    pub max_frame_bytes: u64,
    /// How long an orphaned worker waits for recovery instructions on
    /// its control channel before exiting (milliseconds). 0 = the legacy
    /// derivation `max(liveness_ms * 10, 30s)`. Also the wait between a
    /// parked worker's successful reattach and the coordinator's
    /// follow-up `SessionLine`.
    #[serde(default)]
    pub orphan_grace_ms: u64,
    /// Which mesh engine moves the bytes: the thread-per-link
    /// [`warp_net::TcpMesh`] or the single event-loop
    /// [`PollMesh`](warp_net::PollMesh). Purely an I/O-strategy choice;
    /// wire protocol and semantics are identical, and mixed clusters
    /// interoperate.
    #[serde(default)]
    pub transport: Transport,
    /// On-the-wire DyMA: initial per-link aggregation window in
    /// microseconds. 0 (the default) disables aggregation — every
    /// `Data` frame departs immediately, exactly the v7 behavior.
    #[serde(default)]
    pub agg_window_us: u64,
    /// Let the SAAW law adapt each link's window inside
    /// [`agg_min_window_us`](Self::agg_min_window_us) ..=
    /// [`agg_max_window_us`](Self::agg_max_window_us); off, the window
    /// stays fixed at [`agg_window_us`](Self::agg_window_us). (Only
    /// consulted when aggregation is on; a deserialized legacy config
    /// has aggregation off, so the `false` serde default is inert.)
    #[serde(default)]
    pub agg_adapt: bool,
    /// SAAW lower window clamp (microseconds); 0 = 50 µs.
    #[serde(default)]
    pub agg_min_window_us: u64,
    /// SAAW upper window clamp (microseconds); 0 = 20 ms.
    #[serde(default)]
    pub agg_max_window_us: u64,
    /// Entries-per-batch ceiling; 0 = 512.
    #[serde(default)]
    pub agg_max_batch: u64,
}

impl Default for NetTuning {
    fn default() -> Self {
        NetTuning {
            heartbeat_ms: 250,
            liveness_ms: 3000,
            connect_backoff_start_ms: 20,
            connect_backoff_max_ms: 500,
            max_frame_bytes: 0,
            orphan_grace_ms: 0,
            transport: Transport::Threaded,
            agg_window_us: 0,
            agg_adapt: true,
            agg_min_window_us: 0,
            agg_max_window_us: 0,
            agg_max_batch: 0,
        }
    }
}

impl NetTuning {
    /// Check the knobs for internal consistency (mirrors
    /// [`TcpMeshConfig::validate`], but fails before any process is
    /// spawned).
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_ms == 0 {
            return Err("heartbeat_ms must be positive".into());
        }
        if self.liveness_ms <= self.heartbeat_ms {
            return Err(format!(
                "liveness_ms ({}) must exceed heartbeat_ms ({}) or every idle link is declared dead",
                self.liveness_ms, self.heartbeat_ms
            ));
        }
        if self.connect_backoff_start_ms == 0 {
            return Err("connect_backoff_start_ms must be positive".into());
        }
        if self.connect_backoff_max_ms < self.connect_backoff_start_ms {
            return Err(format!(
                "connect_backoff_max_ms ({}) below connect_backoff_start_ms ({})",
                self.connect_backoff_max_ms, self.connect_backoff_start_ms
            ));
        }
        if self.max_frame_bytes != 0 && self.max_frame_bytes < 1024 {
            return Err(format!(
                "max_frame_bytes ({}) below the 1024-byte floor: even a handshake would not fit",
                self.max_frame_bytes
            ));
        }
        if self.agg_window_us != 0 {
            let t = self.agg_tuning().expect("window is nonzero");
            if t.min_window_us > t.max_window_us {
                return Err(format!(
                    "agg_min_window_us ({}) above agg_max_window_us ({})",
                    t.min_window_us, t.max_window_us
                ));
            }
            if t.window_us < t.min_window_us || t.window_us > t.max_window_us {
                return Err(format!(
                    "agg_window_us ({}) outside [{}, {}]",
                    t.window_us, t.min_window_us, t.max_window_us
                ));
            }
        }
        Ok(())
    }

    /// The on-the-wire aggregation tuning these knobs spell, with the
    /// zero-means-default holes filled in; `None` when aggregation is
    /// off (`agg_window_us == 0`).
    pub fn agg_tuning(&self) -> Option<warp_net::AggTuning> {
        if self.agg_window_us == 0 {
            return None;
        }
        let mut t = warp_net::AggTuning {
            window_us: self.agg_window_us,
            adapt: self.agg_adapt,
            ..Default::default()
        };
        if self.agg_min_window_us != 0 {
            t.min_window_us = self.agg_min_window_us;
        }
        if self.agg_max_window_us != 0 {
            t.max_window_us = self.agg_max_window_us;
        }
        if self.agg_max_batch != 0 {
            t.max_batch = self.agg_max_batch as usize;
        }
        t.max_frame_bytes = self.frame_cap();
        Some(t)
    }

    /// The effective frame cap in bytes (protocol default when unset).
    pub fn frame_cap(&self) -> usize {
        if self.max_frame_bytes == 0 {
            warp_net::frame::MAX_FRAME_BYTES
        } else {
            self.max_frame_bytes as usize
        }
    }

    fn heartbeat(&self) -> Duration {
        Duration::from_millis(self.heartbeat_ms)
    }
    fn liveness(&self) -> Duration {
        Duration::from_millis(self.liveness_ms)
    }
    /// How long an orphaned worker waits for recovery instructions
    /// before giving up.
    fn orphan_wait(&self) -> Duration {
        if self.orphan_grace_ms == 0 {
            Duration::from_millis(self.liveness_ms * 10).max(Duration::from_secs(30))
        } else {
            Duration::from_millis(self.orphan_grace_ms)
        }
    }
}

/// Checkpoint-and-recovery policy for a distributed run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Take checkpoints and recover from unclean peer loss. Off, a lost
    /// worker fails the run immediately (the pre-recovery behavior).
    pub enabled: bool,
    /// How many recoveries the coordinator attempts before giving up.
    pub max_recoveries: u32,
    /// Minimum wall time between checkpoint initiations (milliseconds);
    /// 0 checkpoints at every GVT advance.
    pub ckpt_min_interval_ms: u64,
    /// GVT stall watchdog: if the committed horizon fails to advance for
    /// this long (milliseconds) while workers are still running, the
    /// coordinator declares the session livelocked and recovers it like
    /// an unclean peer loss. Catches "wedged but connected" failures —
    /// e.g. a control-plane partition that silences the GVT token ring
    /// while data links and heartbeats stay healthy — that the transport
    /// liveness detector can never see. 0 disables the watchdog.
    #[serde(default)]
    pub stall_budget_ms: u64,
    /// Directory for the durable checkpoint store: committed delta
    /// chains are spilled to per-worker segment files as each checkpoint
    /// completes (see `docs/recovery-store.md` for the format). `None`
    /// keeps the chains in coordinator memory only.
    #[serde(default)]
    pub store_dir: Option<String>,
    /// Compact each worker's delta chain into a single merged delta
    /// whenever its depth reaches this many checkpoints (0 = never).
    /// Compaction runs uniformly across all workers, preserving the
    /// identical-window invariant migration re-keying relies on.
    #[serde(default)]
    pub compact_after: u32,
    /// Payload bytes per [`Frame::ResumeChunk`] when streaming a resume
    /// (0 = 1 MiB). Always clamped below the transport's frame cap, so
    /// a resume is never bounded by [`NetTuning::max_frame_bytes`].
    #[serde(default)]
    pub resume_chunk_bytes: u64,
    /// How long (milliseconds) a worker that loses its *coordinator*
    /// survives in a parked state, retaining its LP runtimes and
    /// re-dialing the admission point with [`Frame::Reattach`], before
    /// giving up and exiting. 0 disables park-and-rejoin: coordinator
    /// loss orphans the worker after the plain orphan wait (the
    /// pre-failover behavior). Requires `store_dir` — a resumed
    /// coordinator reconciles parked workers against the durable run
    /// journal.
    #[serde(default)]
    pub rejoin_grace_ms: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_recoveries: 3,
            ckpt_min_interval_ms: 100,
            stall_budget_ms: 0,
            store_dir: None,
            compact_after: 0,
            resume_chunk_bytes: 0,
            rejoin_grace_ms: 0,
        }
    }
}

/// Everything the coordinator needs to stage a distributed run.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Number of worker processes (each gets a contiguous LP block).
    pub n_workers: u32,
    /// Path to the worker binary to spawn.
    pub worker_bin: PathBuf,
    /// Opaque model description, forwarded verbatim to every worker's
    /// spec-builder. The coordinator never interprets it.
    pub model: serde_json::Value,
    /// Total LP count of the model — must match what the workers' spec
    /// builder produces, since both sides derive the LP→process
    /// assignment from it.
    pub n_lps: u32,
    /// Whole-run watchdog: bootstrap plus simulation plus teardown,
    /// recoveries included.
    pub timeout: Duration,
    /// Transport tuning, forwarded to every worker.
    pub net: NetTuning,
    /// Checkpoint-and-recovery policy.
    pub recovery: RecoveryPolicy,
    /// On-line load-balancing policy. Enabling it requires
    /// `recovery.enabled` — migration rides the checkpoint machinery.
    pub balance: BalancePolicy,
    /// Artificial per-worker slowdowns for balance experiments: each
    /// `(proc_id, gap_us)` pair caps that worker process at one executed
    /// event per `gap_us` microseconds. Empty = full speed everywhere.
    pub handicaps: Vec<(u32, u64)>,
    /// Optional budget on each handicap: `(proc_id, n_events)` pairs
    /// bounding how many executed events the matching slowdown paces
    /// before the worker runs at full speed again — cumulative across
    /// sessions, so a recovery or scale never re-arms a spent handicap.
    /// Models a *transient* skew (the scale-in half of an elastic
    /// experiment needs the pressure to go away again).
    pub handicap_events: Vec<(u32, u64)>,
    /// Elastic-membership policy: grow/shrink the worker set between
    /// `min_workers` and `max_workers` off the same load stream the
    /// balancer reads. Enabling it requires `recovery.enabled`.
    pub elastic: ElasticPolicy,
    /// With elastic membership on, write the admission listener's
    /// address to this file once it is bound, so external `--join`
    /// workers (and tests) can find it.
    pub admit_file: Option<PathBuf>,
    /// Deterministic fault plan injected into every process's mesh
    /// (`None` = healthy links).
    pub fault: Option<FaultPlan>,
}

impl DistConfig {
    /// Config with default tuning, recovery on, healthy links.
    pub fn new(n_workers: u32, worker_bin: PathBuf, model: serde_json::Value, n_lps: u32) -> Self {
        DistConfig {
            n_workers,
            worker_bin,
            model,
            n_lps,
            timeout: Duration::from_secs(120),
            net: NetTuning::default(),
            recovery: RecoveryPolicy::default(),
            balance: BalancePolicy::default(),
            handicaps: Vec::new(),
            handicap_events: Vec::new(),
            elastic: ElasticPolicy::default(),
            admit_file: None,
            fault: None,
        }
    }
}

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistError {
    /// Spawning, piping, or mesh establishment failed.
    Io(io::Error),
    /// A worker died, went half-open, or exited wrongly.
    Worker {
        /// Mesh process id of the failed worker.
        proc_id: u32,
        /// Cause, as observed by the coordinator.
        detail: String,
    },
    /// A peer violated the frame protocol.
    Protocol(String),
    /// The watchdog expired.
    Timeout(String),
    /// The configuration cannot be staged (bad worker/LP counts, …).
    InvalidConfig(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "distributed run I/O failure: {e}"),
            DistError::Worker { proc_id, detail } => {
                write!(f, "worker (proc {proc_id}) failed: {detail}")
            }
            DistError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DistError::Timeout(m) => write!(f, "distributed run timed out: {m}"),
            DistError::InvalidConfig(m) => write!(f, "invalid distributed config: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}

/// The first line of JSON a worker reads on stdin.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerInit {
    /// This worker's mesh process id (1-based; 0 is the coordinator).
    pub proc_id: u32,
    /// Total mesh size (workers + coordinator).
    pub n_procs: u32,
    /// Total LP count (drives the LP→process assignment).
    pub n_lps: u32,
    /// Session epoch to establish under (0 = fresh run; > 0 means this
    /// process was spawned into a recovery and must await `Resume`).
    #[serde(default)]
    pub session: u32,
    /// Every process's listen address, as `(proc_id, addr)` pairs.
    pub peers: Vec<(u32, String)>,
    /// Opaque model description for the worker's spec builder.
    pub model: serde_json::Value,
    /// Transport tuning (identical on every process).
    #[serde(default)]
    pub net: NetTuning,
    /// Mesh establishment budget, milliseconds.
    pub connect_ms: u64,
    /// Whether the checkpoint/recovery protocol is armed.
    #[serde(default)]
    pub recovery: bool,
    /// Explicit LP→worker owner map (`assignment[lp]` = owning proc id).
    /// Empty means the contiguous default for `(n_lps, n_procs - 1)` —
    /// the pre-migration wire format.
    #[serde(default)]
    pub assignment: Vec<u32>,
    /// Whether the load balancer is armed (workers then stream one
    /// [`Frame::LoadReport`] per LP at each GVT round).
    #[serde(default)]
    pub balance: bool,
    /// Artificial slowdown: minimum microseconds between executed events
    /// across this whole worker process (0 = full speed). Test/benchmark
    /// knob for balance experiments.
    #[serde(default)]
    pub handicap_us: u64,
    /// Budget on the slowdown: pace only the first this-many executed
    /// events, then run at full speed (0 = unlimited). Counted once per
    /// process across all its sessions — a transient-skew knob for
    /// elastic experiments.
    #[serde(default)]
    pub handicap_events: u64,
    /// Deterministic fault plan for this process's mesh links.
    #[serde(default)]
    pub fault: Option<FaultPlan>,
    /// Park-and-rejoin instructions: present when the run keeps a
    /// durable journal and [`RecoveryPolicy::rejoin_grace_ms`] is set.
    /// `None` = coordinator loss orphans this worker (legacy behavior).
    #[serde(default)]
    pub rejoin: Option<RejoinSpec>,
}

/// Everything a worker needs to survive its coordinator: where to dial
/// [`Frame::Reattach`] after the control channel dies, and for how long
/// to keep trying. Shipped inside [`WorkerInit`] when the run journal
/// and [`RecoveryPolicy::rejoin_grace_ms`] are armed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RejoinSpec {
    /// Parked-survival budget, milliseconds, measured from the moment
    /// the worker first loses its coordinator. Always positive.
    pub grace_ms: u64,
    /// The admission listener's address at init time. A resumed
    /// coordinator re-binds the same address, so parked workers dial
    /// here first.
    pub admit_addr: String,
    /// Optional admit-file path, re-read before every dial attempt: if
    /// the resumed coordinator could not re-bind `admit_addr` it
    /// publishes its fallback address here.
    #[serde(default)]
    pub admit_file: Option<String>,
}

/// A later line of JSON a *surviving* worker reads on stdin when the
/// coordinator starts a recovery: the new session epoch and the new
/// peer list (respawned workers live at fresh addresses).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionLine {
    /// The bumped session epoch.
    pub session: u32,
    /// Every process's listen address for the new session.
    pub peers: Vec<(u32, String)>,
    /// Mesh establishment budget, milliseconds.
    pub connect_ms: u64,
    /// The LP→worker owner map for the new session (empty = unchanged).
    /// Carries the migrated placement after a [`Frame::Rebalance`].
    #[serde(default)]
    pub assignment: Vec<u32>,
    /// Total mesh size for the new session (0 = unchanged). Carries the
    /// grown or shrunk cluster shape after an elastic scale.
    #[serde(default)]
    pub n_procs: u32,
}

/// A worker's end-of-run payload (travels as `Frame::Report` bytes).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct WorkerReport {
    gvt_rounds: u64,
    per_lp: Vec<LpSummary>,
    /// Resume accounting accumulated across this worker's sessions
    /// (rebuild vs. in-place rollback counts, replayed events).
    #[serde(default)]
    resume: ResumeStats,
    /// Per-link on-the-wire aggregation gauges, harvested from the mesh
    /// at session end (empty when wire aggregation is off).
    #[serde(default)]
    wire_agg: Vec<warp_net::LinkAggStats>,
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// How the coordinator talks to one worker's control plane: the stdio
/// pipes of a child it spawned, or the admission socket of a process
/// that dialed in with [`Frame::Join`]. The line protocol on top is
/// identical either way.
enum Ctl {
    /// A spawned child; lines ride its piped stdio.
    Child(Child),
    /// A joined remote; lines ride the (cloned) admission stream.
    Remote(TcpStream),
}

/// A worker process plus its control-line stream. The reader thread
/// lives for the worker's whole life because recovery needs a *second*
/// `LISTEN` line from survivors, long after bootstrap.
struct WorkerProc {
    ctl: Ctl,
    lines: Receiver<Result<String, String>>,
    /// Next control line must be a full [`WorkerInit`] (fresh spawn or
    /// admission) vs. a [`SessionLine`] (survivor of a previous session).
    fresh: bool,
    /// A `LISTEN` address consumed early (while sorting survivors from
    /// corpses) and not yet used for a session.
    pending_listen: Option<String>,
    /// Set when this process dialed in with [`Frame::Reattach`] rather
    /// than [`Frame::Join`]: `(session, worker_id, retained_horizon)` of
    /// the parked worker awaiting re-adoption by a resumed coordinator.
    reattach: Option<(u32, u32, VirtualTime)>,
}

/// Feed lines from any byte stream into a channel; the channel closing
/// means EOF (the worker is gone).
fn spawn_line_reader<R: Read + Send + 'static>(src: R) -> Receiver<Result<String, String>> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(src);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if tx.send(Ok(line.trim().to_string())).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(format!("control read failed: {e}")));
                    break;
                }
            }
        }
    });
    rx
}

impl WorkerProc {
    fn spawn(bin: &PathBuf) -> io::Result<WorkerProc> {
        let mut child = Command::new(bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("worker stdout piped");
        Ok(WorkerProc {
            lines: spawn_line_reader(stdout),
            ctl: Ctl::Child(child),
            fresh: true,
            pending_listen: None,
            reattach: None,
        })
    }

    /// Adopt a worker that dialed the admission listener (its
    /// [`Frame::Join`] handshake already consumed by the acceptor).
    fn from_stream(stream: TcpStream) -> io::Result<WorkerProc> {
        let read_half = stream.try_clone()?;
        Ok(WorkerProc {
            lines: spawn_line_reader(read_half),
            ctl: Ctl::Remote(stream),
            fresh: true,
            pending_listen: None,
            reattach: None,
        })
    }

    fn is_remote(&self) -> bool {
        matches!(self.ctl, Ctl::Remote(_))
    }

    /// OS pid for diagnostics (0 for a joined remote).
    fn pid(&self) -> u32 {
        match &self.ctl {
            Ctl::Child(c) => c.id(),
            Ctl::Remote(_) => 0,
        }
    }

    /// Wait for a clean exit after the final report: a child must exit
    /// 0; a joined remote counts as clean once it closes its control
    /// socket (there is no exit status to observe across the wire).
    fn wait_success(&mut self, proc_id: u32, deadline: Instant) -> Result<(), DistError> {
        match &mut self.ctl {
            Ctl::Child(c) => match c.wait() {
                Ok(status) if status.success() => Ok(()),
                Ok(status) => Err(DistError::Worker {
                    proc_id,
                    detail: format!("exited with {status} after reporting"),
                }),
                Err(e) => Err(DistError::Io(e)),
            },
            Ctl::Remote(_) => loop {
                match self
                    .lines
                    .recv_timeout(deadline.saturating_duration_since(Instant::now()))
                {
                    Ok(_) => {} // stray output; keep draining
                    Err(RecvTimeoutError::Disconnected) => return Ok(()),
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(DistError::Timeout(format!(
                            "joined worker (proc {proc_id}) never closed its control socket"
                        )))
                    }
                }
            },
        }
    }

    fn kill(&mut self) {
        match &mut self.ctl {
            Ctl::Child(c) => {
                let _ = c.kill();
                let _ = c.wait();
            }
            Ctl::Remote(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    /// Wait for the worker's `LISTEN <addr>` announcement.
    fn expect_listen(&mut self, proc_id: u32, deadline: Instant) -> Result<String, DistError> {
        if let Some(addr) = self.pending_listen.take() {
            return Ok(addr);
        }
        match self
            .lines
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
        {
            Ok(Ok(line)) => line
                .strip_prefix("LISTEN ")
                .map(|a| a.trim().to_string())
                .ok_or_else(|| DistError::Worker {
                    proc_id,
                    detail: format!("expected a LISTEN line on stdout, got {line:?}"),
                }),
            Ok(Err(detail)) => Err(DistError::Worker { proc_id, detail }),
            Err(RecvTimeoutError::Disconnected) => Err(DistError::Worker {
                proc_id,
                detail: "exited before announcing its listen address".into(),
            }),
            Err(RecvTimeoutError::Timeout) => Err(DistError::Timeout(format!(
                "worker (proc {proc_id}) never announced its listen address"
            ))),
        }
    }

    fn send_line(&mut self, proc_id: u32, line: &str) -> Result<(), DistError> {
        let sink: &mut dyn Write = match &mut self.ctl {
            Ctl::Child(c) => c.stdin.as_mut().expect("worker stdin piped"),
            Ctl::Remote(s) => s,
        };
        sink.write_all(line.as_bytes())
            .and_then(|_| sink.write_all(b"\n"))
            .and_then(|_| sink.flush())
            .map_err(|e| DistError::Worker {
                proc_id,
                detail: format!("died before reading its control line: {e}"),
            })
    }
}

/// The elastic admission point: workers started with `--join` dial this
/// listener, present a [`Frame::Join`] handshake, and wait in `queue`
/// until a scale-out adopts them. The acceptor thread holds only a
/// [`Weak`] reference, so it dies with the coordinator that created it.
struct Admission {
    queue: Mutex<Vec<WorkerProc>>,
    addr: String,
}

impl Admission {
    /// Bind the listener, start the acceptor thread, and publish the
    /// address to `admit_file` when asked.
    fn start(admit_file: Option<&Path>) -> Result<Arc<Admission>, DistError> {
        let listener = bind_loopback()?;
        Admission::run(listener, admit_file)
    }

    /// Resume variant: re-bind the *journaled* admission address, so
    /// parked workers holding the old [`RejoinSpec`] find the restarted
    /// coordinator without any rendezvous file. The old socket may
    /// linger in TIME_WAIT briefly, so the bind is retried within
    /// `budget`. Falls back to an ephemeral port when the address never
    /// frees up — callers publish the fallback via the admit file, the
    /// parked workers' second line of discovery.
    fn resume(
        addr: &str,
        budget: Duration,
        admit_file: Option<&Path>,
    ) -> Result<Arc<Admission>, DistError> {
        let until = Instant::now() + budget;
        let listener = loop {
            match std::net::TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(_) if Instant::now() < until => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => {
                    eprintln!(
                        "coordinator: could not re-bind admission point {addr} ({e}); \
                         falling back to an ephemeral port"
                    );
                    break bind_loopback()?;
                }
            }
        };
        Admission::run(listener, admit_file)
    }

    fn run(
        listener: std::net::TcpListener,
        admit_file: Option<&Path>,
    ) -> Result<Arc<Admission>, DistError> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        if let Some(path) = admit_file {
            std::fs::write(path, format!("{addr}\n"))?;
        }
        let admission = Arc::new(Admission {
            queue: Mutex::new(Vec::new()),
            addr,
        });
        let weak: Weak<Admission> = Arc::downgrade(&admission);
        std::thread::spawn(move || loop {
            let Some(adm) = weak.upgrade() else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Some(w) = admit(stream) {
                        adm.queue.lock().unwrap().push(w);
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    drop(adm);
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => return,
            }
        });
        Ok(admission)
    }

    fn joiners_waiting(&self) -> bool {
        self.queue
            .lock()
            .unwrap()
            .iter()
            .any(|w| w.reattach.is_none())
    }

    /// Pop the oldest `Join` dialer. Skips parked `Reattach` dialers —
    /// those belong to [`Admission::take_reattach`], never to a
    /// scale-out.
    fn take_joiner(&self) -> Option<WorkerProc> {
        let mut q = self.queue.lock().unwrap();
        let i = q.iter().position(|w| w.reattach.is_none())?;
        Some(q.remove(i))
    }

    /// Pop the parked worker that identified itself as `worker_id` in
    /// its `Reattach` handshake, if it has dialed in yet.
    fn take_reattach(&self, worker_id: u32) -> Option<WorkerProc> {
        let mut q = self.queue.lock().unwrap();
        let i = q
            .iter()
            .position(|w| w.reattach.is_some_and(|(_, id, _)| id == worker_id))?;
        Some(q.remove(i))
    }
}

/// Consume exactly one length-prefixed handshake frame from a dialing
/// worker — reading *only* the frame's own bytes, so the line protocol
/// that follows on the same stream is untouched — and adopt it. Two
/// handshakes are honored: [`Frame::Join`] (an elastic newcomer, when
/// the protocol versions match) and [`Frame::Reattach`] (a parked
/// worker re-homing after a coordinator restart — version agreement is
/// implied by the frame decoding at all, since the tag is new in v7).
/// Anything else is dropped silently; the admission listener must shrug
/// off port scanners and stale dialers.
fn admit(mut stream: TcpStream) -> Option<WorkerProc> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > 64 {
        return None; // a Join or Reattach frame is a handful of bytes
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    let mut dec = warp_net::frame::FrameDecoder::new();
    dec.push(&len_buf);
    dec.push(&body);
    match dec.next() {
        Ok(Some(Frame::Join { version })) if version == warp_net::frame::PROTO_VERSION => {
            let _ = stream.set_read_timeout(None);
            WorkerProc::from_stream(stream).ok()
        }
        Ok(Some(Frame::Reattach {
            session,
            worker_id,
            horizon,
        })) => {
            let _ = stream.set_read_timeout(None);
            let mut w = WorkerProc::from_stream(stream).ok()?;
            w.reattach = Some((session, worker_id, horizon));
            Some(w)
        }
        _ => None,
    }
}

/// How one mesh session ended, from the coordinator's point of view.
enum SessionEnd {
    /// Every worker reported and said goodbye.
    Finished(Vec<WorkerReport>),
    /// A worker was lost uncleanly; the session is unrecoverable but the
    /// run may not be.
    Lost { peer: u32, detail: String },
    /// The load balancer ended the session on purpose: the cluster
    /// regroups under `next` with the chains re-keyed to the new owners.
    Rebalance {
        next: Assignment,
        moves: Vec<warp_balance::Move>,
        imbalance: f64,
    },
    /// The elastic controller ended the session on purpose: the cluster
    /// regroups with one worker more (`ScaleDirection::Out`) or fewer
    /// (`ScaleDirection::In`) under the plan's grown/shrunk assignment.
    /// On scale-in the retiree has already answered [`Frame::DrainAck`].
    Scale { plan: ScalePlan },
}

/// Checkpoint chains and horizon: everything the coordinator must keep
/// across sessions to restore the cluster.
struct CkptStore {
    /// Per-worker ordered delta payloads (index = proc_id - 1).
    chains: Vec<Vec<Vec<u8>>>,
    /// The horizon of the last *complete* checkpoint.
    horizon: VirtualTime,
    /// Monotone checkpoint id across the whole run.
    next_ckpt: u32,
    /// Durable spill of the chains: one segment file per worker,
    /// appended as checkpoints commit (`None` = in-memory only).
    segments: Option<SegmentStore>,
    /// Coordinator-side resume/store accounting for the run report.
    stats: ResumeStats,
}

impl CkptStore {
    /// Collapse every worker's chain into one delta spanning the full
    /// committed range, mirroring the rewrite to the segment files.
    /// Applied uniformly across workers: `rekey_chains` relies on every
    /// chain carrying identical windows at identical depths.
    fn compact(&mut self) -> Result<(), SnapshotError> {
        for w in 0..self.chains.len() {
            if self.chains[w].len() < 2 {
                continue;
            }
            let merged = compact_chain(&self.chains[w])?;
            self.chains[w] = vec![merged];
            if let Some(seg) = self.segments.as_mut() {
                seg.rewrite(w as u32 + 1, &self.chains[w])?;
            }
        }
        self.stats.compactions += 1;
        Ok(())
    }

    /// Mirror the in-memory chains to the segment files wholesale —
    /// after migration re-keying has moved LPs between chains.
    fn rewrite_segments(&mut self) -> Result<(), SnapshotError> {
        if let Some(seg) = self.segments.as_mut() {
            for (w, chain) in self.chains.iter().enumerate() {
                seg.rewrite(w as u32 + 1, chain)?;
            }
        }
        Ok(())
    }

    /// After an elastic scale: grow or shrink the durable store's
    /// segment roster to the new worker count (fresh files appear,
    /// retired files are deleted), then mirror the re-keyed chains.
    fn resize_segments(&mut self, n_workers: u32) -> Result<(), SnapshotError> {
        if let Some(seg) = self.segments.as_mut() {
            seg.resize(n_workers)?;
        }
        self.rewrite_segments()
    }
}

/// A checkpoint in flight: parts received so far, by worker.
struct PendingCkpt {
    ckpt: u32,
    gvt: VirtualTime,
    parts: Vec<Option<Vec<u8>>>,
}

/// The coordinator's cross-session mutable state — everything the run
/// journal persists, plus the open journal itself. A fresh
/// [`run_coordinator`] builds it from the config; a restarted
/// [`resume_coordinator`] rebuilds it from the journal; both then drive
/// the same session loop ([`run_cluster`]).
struct CoordState {
    assign: Assignment,
    store: CkptStore,
    session: u32,
    recoveries: u64,
    migrations: Vec<MigrationRecord>,
    scales: Vec<ScaleRecord>,
    telemetry: Option<TelemetryReport>,
    /// A newcomer admitted by the last scale-out, on probation for one
    /// session: `(proc_id, pre-scale assignment, pressure)`. Never
    /// journaled — a coordinator outage ends the probation session
    /// anyway, and the fallback assignment is reconstructible from the
    /// journaled one.
    probation: Option<(u32, Assignment, f64)>,
    /// The open run journal (`None` without a durable store).
    journal: Option<RunJournal>,
    /// Checkpoint barriers completed across the whole run, every
    /// coordinator incarnation included — the unit the
    /// `WARP_COORD_TEST_CRASH=barriers:N` hook counts.
    barriers: u64,
}

/// One durable control-plane record: the JSON payload of a run-journal
/// state record. Appended at every checkpoint barrier and at every
/// membership/assignment change, so journal and segment files never
/// drift. The journal append *is* the barrier's commit point: the
/// `SnapshotAck` that lets workers advance their fossil floors is
/// broadcast only after the append, so a parked worker's retained
/// horizon can never exceed `horizon` here.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct CoordJournal {
    /// Epoch of the session this record closed (the resumed coordinator
    /// continues at `session + 1`).
    session: u32,
    next_ckpt: u32,
    /// Committed checkpoint horizon, in ticks.
    horizon: u64,
    /// The LP→worker owner map at append time.
    owners: Vec<u32>,
    n_workers: u32,
    /// Per-worker committed delta-chain depth. On resume, each on-disk
    /// segment is truncated to this — a delta appended after the last
    /// journal record belongs to a barrier that never committed.
    chain_len: Vec<u32>,
    /// The admission listener's address (empty when admission is off) —
    /// a resumed coordinator re-binds it so parked workers find home.
    admit_addr: String,
    recoveries: u64,
    barriers: u64,
    migrations: Vec<MigrationRecord>,
    scales: Vec<ScaleRecord>,
    /// Coordinator-side store accounting, including the spilled-byte
    /// total of prior incarnations.
    stats: ResumeStats,
    spilled_bytes: u64,
    telemetry: Option<TelemetryReport>,
}

impl CoordState {
    /// Append one state record capturing the current control-plane
    /// state. A no-op without a journal. Called before every session and
    /// at every checkpoint barrier — always *before* the `SnapshotAck`
    /// broadcast, so the journal is never behind any worker's fossil
    /// floor.
    fn journal_append(&mut self, admit_addr: &str) -> Result<(), DistError> {
        let Some(journal) = self.journal.as_mut() else {
            return Ok(());
        };
        let spilled = self
            .store
            .segments
            .as_ref()
            .map(|s| s.spilled_bytes)
            .unwrap_or(0);
        let rec = CoordJournal {
            session: self.session,
            next_ckpt: self.store.next_ckpt,
            horizon: self.store.horizon.ticks(),
            owners: self.assign.owners().to_vec(),
            n_workers: self.assign.n_workers(),
            chain_len: self.store.chains.iter().map(|c| c.len() as u32).collect(),
            admit_addr: admit_addr.to_string(),
            recoveries: self.recoveries,
            barriers: self.barriers,
            migrations: self.migrations.clone(),
            scales: self.scales.clone(),
            stats: self.store.stats.clone(),
            spilled_bytes: spilled,
            telemetry: self.telemetry.clone(),
        };
        let payload = serde_json::to_vec(&rec)
            .map_err(|e| DistError::Protocol(format!("encoding journal record: {e}")))?;
        journal
            .append_state(&payload)
            .map_err(|e| DistError::Io(io::Error::other(format!("run journal append: {e}"))))
    }
}

/// How the coordinator's test-crash hook fires (env var
/// `WARP_COORD_TEST_CRASH`, merged with
/// [`FaultPlan::coordinator_crash_after`]). The counted unit is the
/// completed checkpoint barrier, cumulative across coordinator
/// incarnations — so a resumed coordinator inheriting the env var does
/// not re-crash: the journal restores the count at or past the trigger,
/// and only exact equality fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrashHook {
    None,
    /// Legacy form (any value other than `barriers:N`): abort at the
    /// first `Progress` frame of the run.
    FirstProgress,
    /// `barriers:N`: abort immediately after the Nth barrier commits
    /// (journal appended, acks broadcast) — between barriers, the
    /// survivable window.
    AfterBarriers(u64),
}

impl CrashHook {
    fn from_env(fault: Option<&FaultPlan>) -> CrashHook {
        CrashHook::resolve(
            fault,
            std::env::var("WARP_COORD_TEST_CRASH").ok().as_deref(),
        )
    }

    /// The merge of the fault plan's trigger and the env hook: barrier
    /// counts take the earlier of the two, and the legacy
    /// first-`Progress` form always wins (it fires soonest).
    fn resolve(fault: Option<&FaultPlan>, env: Option<&str>) -> CrashHook {
        let from_plan = fault
            .and_then(FaultPlan::coordinator_crash_after)
            .map(CrashHook::AfterBarriers);
        let from_env =
            env.map(
                |v| match v.strip_prefix("barriers:").and_then(|n| n.parse().ok()) {
                    Some(n) => CrashHook::AfterBarriers(n),
                    None => CrashHook::FirstProgress,
                },
            );
        match (from_plan, from_env) {
            (Some(CrashHook::AfterBarriers(a)), Some(CrashHook::AfterBarriers(b))) => {
                CrashHook::AfterBarriers(a.min(b))
            }
            (Some(h), None) | (None, Some(h)) => h,
            (Some(_), Some(CrashHook::FirstProgress)) => CrashHook::FirstProgress,
            (None, None) => CrashHook::None,
            (Some(h), Some(_)) => h,
        }
    }
}

/// Stage and run a distributed simulation, returning the merged report.
///
/// Spawns `cfg.n_workers` copies of `cfg.worker_bin`, walks them through
/// the bootstrap protocol, then supervises sessions until every worker
/// reports — recovering lost workers from checkpoints up to
/// `cfg.recovery.max_recoveries` times. The watchdog in `cfg.timeout`
/// bounds the whole run, recoveries included.
pub fn run_coordinator(cfg: &DistConfig) -> Result<RunReport, DistError> {
    let start = Instant::now();
    let deadline = start + cfg.timeout;
    let assign =
        Assignment::contiguous(cfg.n_lps, cfg.n_workers).map_err(DistError::InvalidConfig)?;
    cfg.net.validate().map_err(DistError::InvalidConfig)?;
    cfg.balance.validate().map_err(DistError::InvalidConfig)?;
    cfg.elastic.validate().map_err(DistError::InvalidConfig)?;
    if cfg.balance.enabled && !cfg.recovery.enabled {
        return Err(DistError::InvalidConfig(
            "load balancing requires recovery: migration rides the checkpoint/resume machinery"
                .into(),
        ));
    }
    if cfg.elastic.enabled && !cfg.recovery.enabled {
        return Err(DistError::InvalidConfig(
            "elastic membership requires recovery: scaling rides the checkpoint/resume machinery"
                .into(),
        ));
    }
    if cfg.elastic.enabled
        && (cfg.n_workers < cfg.elastic.min_workers || cfg.n_workers > cfg.elastic.max_workers)
    {
        return Err(DistError::InvalidConfig(format!(
            "initial worker count {} outside the elastic bounds {}..={}",
            cfg.n_workers, cfg.elastic.min_workers, cfg.elastic.max_workers
        )));
    }
    // A handicap may name any proc the cluster can ever grow to hold.
    let max_procs = if cfg.elastic.enabled {
        cfg.elastic.max_workers.max(cfg.n_workers)
    } else {
        cfg.n_workers
    };
    for &(proc_id, _) in cfg.handicaps.iter().chain(&cfg.handicap_events) {
        if proc_id == 0 || proc_id > max_procs {
            return Err(DistError::InvalidConfig(format!(
                "handicap names proc {proc_id}, outside 1..={max_procs}"
            )));
        }
    }
    if cfg.recovery.store_dir.is_some() && !cfg.recovery.enabled {
        return Err(DistError::InvalidConfig(
            "recovery.store_dir set but recovery is disabled: the store would never see a checkpoint"
                .into(),
        ));
    }
    if cfg.recovery.rejoin_grace_ms > 0 && cfg.recovery.store_dir.is_none() {
        return Err(DistError::InvalidConfig(
            "recovery.rejoin_grace_ms set without store_dir: a resumed coordinator \
             needs the run journal to reconcile parked workers"
                .into(),
        ));
    }
    // Open the durable store (and its run journal) before any worker
    // exists, so a bad directory fails the run without orphaning
    // processes.
    let (segments, journal) = match &cfg.recovery.store_dir {
        Some(dir) => {
            let seg = SegmentStore::create(Path::new(dir), cfg.n_workers)
                .map_err(|e| DistError::InvalidConfig(format!("checkpoint store at {dir}: {e}")))?;
            let jrn = RunJournal::create(Path::new(dir), &model_json(cfg)?)
                .map_err(|e| DistError::InvalidConfig(format!("run journal at {dir}: {e}")))?;
            (Some(seg), Some(jrn))
        }
        None => (None, None),
    };
    let announce = std::env::var_os("WARP_ANNOUNCE_WORKERS").is_some();
    // The admission point outlives every session: a `--join` worker may
    // dial in long before pressure warrants adopting it, and a parked
    // worker dials it with `Reattach` after a coordinator restart.
    let admission = if cfg.elastic.enabled || cfg.recovery.rejoin_grace_ms > 0 {
        let a = Admission::start(cfg.admit_file.as_deref())?;
        eprintln!("coordinator: admission point at {}", a.addr);
        Some(a)
    } else {
        None
    };

    let mut workers: Vec<WorkerProc> = Vec::new();
    for i in 0..cfg.n_workers {
        match WorkerProc::spawn(&cfg.worker_bin) {
            Ok(w) => {
                if announce {
                    eprintln!("WORKER_PID {} {}", i + 1, w.pid());
                }
                workers.push(w);
            }
            Err(e) => {
                kill_all(&mut workers);
                return Err(DistError::Io(e));
            }
        }
    }

    let mut st = CoordState {
        assign,
        store: CkptStore {
            chains: (0..cfg.n_workers).map(|_| Vec::new()).collect(),
            horizon: VirtualTime::ZERO,
            next_ckpt: 0,
            segments,
            stats: ResumeStats::default(),
        },
        session: 0,
        recoveries: 0,
        migrations: Vec::new(),
        scales: Vec::new(),
        // Cluster-wide telemetry, merged from the workers' streamed
        // batches. Accumulated across sessions: observations from a lost
        // session are real observations of real (if later re-executed)
        // work.
        telemetry: None,
        probation: None,
        journal,
        barriers: 0,
    };
    run_cluster(cfg, workers, admission, deadline, start, announce, &mut st)
}

/// The coordinator's session loop, shared by a fresh [`run_coordinator`]
/// and a journal-driven [`resume_coordinator`]: run sessions until every
/// worker reports, absorbing planned reconfigurations (rebalance, scale)
/// and unplanned losses (recovery) along the way. Appends a journal
/// record before each session so the durable control plane always
/// matches the segment files the session is about to extend.
fn run_cluster(
    cfg: &DistConfig,
    mut workers: Vec<WorkerProc>,
    admission: Option<Arc<Admission>>,
    deadline: Instant,
    start: Instant,
    announce: bool,
    st: &mut CoordState,
) -> Result<RunReport, DistError> {
    let admit_addr = admission
        .as_ref()
        .map(|a| a.addr.clone())
        .unwrap_or_default();
    loop {
        if let Err(e) = st.journal_append(&admit_addr) {
            kill_all(&mut workers);
            return Err(e);
        }
        let attempt =
            run_session_as_coordinator(cfg, &mut workers, deadline, admission.as_deref(), st);
        match attempt {
            Ok(SessionEnd::Finished(reports)) => {
                for (i, w) in workers.iter_mut().enumerate() {
                    if let Err(e) = w.wait_success(i as u32 + 1, deadline) {
                        kill_all(&mut workers);
                        return Err(e);
                    }
                }
                if let Some(seg) = &st.store.segments {
                    // `+=`, not `=`: a resumed coordinator seeds the
                    // counter with the previous incarnations' journaled
                    // total, and this incarnation's store counts from 0.
                    st.store.stats.store_spilled_bytes += seg.spilled_bytes;
                }
                return Ok(merge_reports(
                    reports,
                    start.elapsed().as_secs_f64(),
                    st.recoveries,
                    std::mem::take(&mut st.migrations),
                    std::mem::take(&mut st.scales),
                    st.telemetry.take().filter(|t| !t.is_empty()),
                    st.store.stats.clone(),
                ));
            }
            Ok(SessionEnd::Rebalance {
                next,
                moves,
                imbalance,
            }) => {
                // A planned reconfiguration: not charged to the recovery
                // budget. Re-key the stored chains so each worker's next
                // `Resume` carries exactly the LPs it now owns.
                st.session += 1;
                st.probation = None;
                match rekey_chains(&st.store.chains, next.n_workers(), |lp| next.proc_of(lp)) {
                    Ok(chains) => st.store.chains = chains,
                    Err(e) => {
                        kill_all(&mut workers);
                        return Err(DistError::Protocol(format!(
                            "re-keying checkpoint chains for migration: {e}"
                        )));
                    }
                }
                // The durable store must mirror the re-keyed ownership,
                // or its segments would replay LPs to the wrong workers.
                if let Err(e) = st.store.rewrite_segments() {
                    kill_all(&mut workers);
                    return Err(DistError::Io(io::Error::other(format!(
                        "checkpoint store rewrite after migration: {e}"
                    ))));
                }
                let gvt = (st.store.horizon > VirtualTime::ZERO).then(|| st.store.horizon.ticks());
                let batch = TelemetryReport {
                    events: moves
                        .iter()
                        .map(|m| ControlEvent {
                            gvt,
                            lp: m.lp,
                            object: m.lp,
                            lvt: None,
                            param: Param::Assignment,
                            old: m.from as f64,
                            new: m.to as f64,
                            sampled_o: imbalance,
                        })
                        .collect(),
                    ..TelemetryReport::default()
                };
                match &mut st.telemetry {
                    Some(t) => t.merge(batch),
                    None => st.telemetry = Some(batch),
                }
                st.migrations.push(MigrationRecord {
                    gvt,
                    imbalance,
                    moves: moves
                        .iter()
                        .map(|m| MigrationMove {
                            lp: m.lp,
                            from: m.from,
                            to: m.to,
                        })
                        .collect(),
                });
                st.assign = next;
                if let Err(e) = regroup(cfg, &mut workers, deadline, announce) {
                    kill_all(&mut workers);
                    return Err(e);
                }
            }
            Ok(SessionEnd::Scale { plan }) => {
                // A planned capacity change: like a rebalance, never
                // charged to the recovery budget.
                st.session += 1;
                st.probation = None;
                let next = plan.assignment.clone();
                match plan.direction {
                    ScaleDirection::Out => {
                        // Prefer a worker that already dialed in; spawn
                        // a fresh copy of the binary otherwise. The
                        // newcomer runs its first session on probation.
                        let newcomer = match admission.as_ref().and_then(|a| a.take_joiner()) {
                            Some(w) => w,
                            None => match WorkerProc::spawn(&cfg.worker_bin) {
                                Ok(w) => w,
                                Err(e) => {
                                    kill_all(&mut workers);
                                    return Err(DistError::Io(e));
                                }
                            },
                        };
                        if announce {
                            eprintln!("WORKER_PID {} {}", plan.to_workers, newcomer.pid());
                        }
                        workers.push(newcomer);
                        st.probation = Some((plan.to_workers, st.assign.clone(), plan.pressure));
                    }
                    ScaleDirection::In => {
                        // The retiree already answered `DrainAck`; all
                        // that is left is its clean exit.
                        let mut retiree =
                            workers.pop().expect("scale-in retires an existing worker");
                        if let Err(e) = retiree.wait_success(plan.from_workers, deadline) {
                            kill_all(&mut workers);
                            return Err(e);
                        }
                    }
                }
                match rekey_chains(&st.store.chains, next.n_workers(), |lp| next.proc_of(lp)) {
                    Ok(chains) => st.store.chains = chains,
                    Err(e) => {
                        kill_all(&mut workers);
                        return Err(DistError::Protocol(format!(
                            "re-keying checkpoint chains for scale: {e}"
                        )));
                    }
                }
                if let Err(e) = st.store.resize_segments(next.n_workers()) {
                    kill_all(&mut workers);
                    return Err(DistError::Io(io::Error::other(format!(
                        "checkpoint store resize after scale: {e}"
                    ))));
                }
                let gvt = (st.store.horizon > VirtualTime::ZERO).then(|| st.store.horizon.ticks());
                let batch = TelemetryReport {
                    events: vec![ControlEvent {
                        gvt,
                        lp: 0,
                        object: 0,
                        lvt: None,
                        param: Param::ClusterSize,
                        old: plan.from_workers as f64,
                        new: plan.to_workers as f64,
                        sampled_o: plan.pressure,
                    }],
                    ..TelemetryReport::default()
                };
                match &mut st.telemetry {
                    Some(t) => t.merge(batch),
                    None => st.telemetry = Some(batch),
                }
                st.scales.push(ScaleRecord {
                    gvt,
                    direction: match plan.direction {
                        ScaleDirection::Out => "out".into(),
                        ScaleDirection::In => "in".into(),
                    },
                    from_workers: plan.from_workers,
                    to_workers: plan.to_workers,
                    pressure: plan.pressure,
                    moves: plan
                        .moves
                        .iter()
                        .map(|m| MigrationMove {
                            lp: m.lp,
                            from: m.from,
                            to: m.to,
                        })
                        .collect(),
                });
                st.assign = next;
                if let Err(e) = regroup(cfg, &mut workers, deadline, announce) {
                    kill_all(&mut workers);
                    return Err(e);
                }
            }
            Ok(SessionEnd::Lost { peer, detail }) => {
                // A newcomer that dies on probation is *evicted*, not
                // recovered: fall back to the pre-scale membership (the
                // chains re-key back losslessly) so one bad admission
                // cannot wedge the cluster.
                if st.probation.as_ref().is_some_and(|(p, _, _)| *p == peer) {
                    let (newbie, pre_assign, _) = st.probation.take().unwrap();
                    eprintln!(
                        "warp-coordinator: evicting probation worker {newbie} ({detail}); \
                         falling back to {} workers",
                        pre_assign.n_workers()
                    );
                    let mut evicted = workers.pop().expect("probation newcomer still listed");
                    evicted.kill();
                    match rekey_chains(&st.store.chains, pre_assign.n_workers(), |lp| {
                        pre_assign.proc_of(lp)
                    }) {
                        Ok(chains) => st.store.chains = chains,
                        Err(e) => {
                            kill_all(&mut workers);
                            return Err(DistError::Protocol(format!(
                                "re-keying checkpoint chains for eviction: {e}"
                            )));
                        }
                    }
                    if let Err(e) = st.store.resize_segments(pre_assign.n_workers()) {
                        kill_all(&mut workers);
                        return Err(DistError::Io(io::Error::other(format!(
                            "checkpoint store resize after eviction: {e}"
                        ))));
                    }
                    let gvt =
                        (st.store.horizon > VirtualTime::ZERO).then(|| st.store.horizon.ticks());
                    let batch = TelemetryReport {
                        events: vec![ControlEvent {
                            gvt,
                            lp: 0,
                            object: 0,
                            lvt: None,
                            param: Param::ClusterSize,
                            old: newbie as f64,
                            new: pre_assign.n_workers() as f64,
                            sampled_o: -1.0,
                        }],
                        ..TelemetryReport::default()
                    };
                    match &mut st.telemetry {
                        Some(t) => t.merge(batch),
                        None => st.telemetry = Some(batch),
                    }
                    st.scales.push(ScaleRecord {
                        gvt,
                        direction: "fallback".into(),
                        from_workers: newbie,
                        to_workers: pre_assign.n_workers(),
                        pressure: -1.0,
                        moves: Vec::new(),
                    });
                    st.assign = pre_assign;
                    st.recoveries += 1;
                    st.session += 1;
                    if let Err(e) = regroup(cfg, &mut workers, deadline, announce) {
                        kill_all(&mut workers);
                        return Err(e);
                    }
                    continue;
                }
                if !cfg.recovery.enabled || st.recoveries >= cfg.recovery.max_recoveries as u64 {
                    kill_all(&mut workers);
                    return Err(DistError::Worker {
                        proc_id: peer,
                        detail: if cfg.recovery.enabled {
                            format!("{detail} (recovery budget of {} exhausted)", st.recoveries)
                        } else {
                            detail
                        },
                    });
                }
                st.recoveries += 1;
                st.session += 1;
                if let Err(e) = regroup(cfg, &mut workers, deadline, announce) {
                    kill_all(&mut workers);
                    return Err(e);
                }
            }
            Err(e) => {
                // A failure *outside* the mesh (bootstrap I/O, a worker
                // dying mid-handshake): recoverable by a full restart of
                // every worker, state restored from the chains. A joined
                // remote cannot be respawned from here, so its loss is
                // final.
                let retryable = matches!(e, DistError::Io(_) | DistError::Worker { .. })
                    && !workers.iter().any(WorkerProc::is_remote);
                if !cfg.recovery.enabled
                    || !retryable
                    || st.recoveries >= cfg.recovery.max_recoveries as u64
                    || Instant::now() >= deadline
                {
                    kill_all(&mut workers);
                    return Err(e);
                }
                st.recoveries += 1;
                st.session += 1;
                let n_restart = workers.len();
                kill_all(&mut workers);
                workers.clear();
                for i in 0..n_restart {
                    match WorkerProc::spawn(&cfg.worker_bin) {
                        Ok(w) => {
                            if announce {
                                eprintln!("WORKER_PID {} {}", i + 1, w.pid());
                            }
                            workers.push(w);
                        }
                        Err(e) => {
                            kill_all(&mut workers);
                            return Err(DistError::Io(e));
                        }
                    }
                }
            }
        }
    }
}

/// The model spec as canonical JSON — the bytes the run journal pins
/// with its spec hash.
fn model_json(cfg: &DistConfig) -> Result<String, DistError> {
    serde_json::to_string(&cfg.model)
        .map_err(|e| DistError::Protocol(format!("encoding model spec: {e}")))
}

/// The job spec a run journal was created with, verbatim — what a
/// self-contained `--resume STORE_DIR` parses instead of a job file.
pub fn journal_job_json(store_dir: &Path) -> Result<String, DistError> {
    let contents = load_journal(&journal_path(store_dir)).map_err(|e| {
        DistError::InvalidConfig(format!("run journal at {}: {e}", store_dir.display()))
    })?;
    Ok(contents.job_json)
}

/// Resume an interrupted distributed run from its durable store:
/// replay the run journal, truncate the checkpoint segments to the last
/// journaled barrier, re-open the admission point at its old address,
/// re-adopt parked workers via their [`Frame::Reattach`] handshakes
/// (respawning fresh processes for any that never dial in), bump the
/// session, and continue the run to completion.
///
/// `cfg` must describe the same job the journal was created with (the
/// spec hash is cross-checked); `cfg.n_workers` is ignored in favor of
/// the journaled membership, which elastic scaling may have changed
/// since the run began.
pub fn resume_coordinator(cfg: &DistConfig, store_dir: &Path) -> Result<RunReport, DistError> {
    let start = Instant::now();
    let deadline = start + cfg.timeout;
    cfg.net.validate().map_err(DistError::InvalidConfig)?;
    if !cfg.recovery.enabled {
        return Err(DistError::InvalidConfig(
            "resume requires recovery: the journal is part of the checkpoint machinery".into(),
        ));
    }
    let path = journal_path(store_dir);
    let contents = load_journal(&path).map_err(|e| {
        DistError::InvalidConfig(format!("run journal at {}: {e}", store_dir.display()))
    })?;
    if crate::snapshot::journal::spec_hash(&model_json(cfg)?)
        != crate::snapshot::journal::spec_hash(&contents.job_json)
    {
        return Err(DistError::InvalidConfig(format!(
            "job spec does not match the journal at {}: resuming it would continue a \
             different run",
            store_dir.display()
        )));
    }
    let Some(state_bytes) = contents.states.last() else {
        // The coordinator died before journaling any control-plane
        // state: nothing durable exists beyond the spec, so resuming
        // degenerates to a fresh start (which re-creates the store).
        return run_coordinator(cfg);
    };
    let rec: CoordJournal = serde_json::from_slice(state_bytes)
        .map_err(|e| DistError::InvalidConfig(format!("decoding the last journal record: {e}")))?;
    let assign = Assignment::from_owners(rec.owners.clone(), rec.n_workers)
        .map_err(|e| DistError::InvalidConfig(format!("journaled assignment: {e}")))?;
    if assign.n_lps() != cfg.n_lps {
        return Err(DistError::InvalidConfig(format!(
            "journaled assignment covers {} LPs, the spec builds {}",
            assign.n_lps(),
            cfg.n_lps
        )));
    }
    let n_workers = rec.n_workers;

    // Rebuild the delta chains from the segment files, truncating each
    // to its journaled depth: the journal append is the barrier commit
    // point, so any delta past that depth belongs to a barrier that
    // never happened. A chain *shorter* than journaled means a
    // compaction rewrite raced the crash inside the barrier's critical
    // section — the one narrow window this store cannot survive.
    let mut chains: Vec<Vec<Vec<u8>>> = Vec::with_capacity(n_workers as usize);
    for w in 1..=n_workers {
        let (seg_worker, mut chain, _dropped) = load_segment_prefix(&segment_path(store_dir, w))
            .map_err(|e| {
                DistError::InvalidConfig(format!("checkpoint segment for worker {w}: {e}"))
            })?;
        if seg_worker != w {
            return Err(DistError::InvalidConfig(format!(
                "segment file for worker {w} carries worker id {seg_worker}"
            )));
        }
        let want = rec.chain_len.get(w as usize - 1).copied().unwrap_or(0) as usize;
        if chain.len() < want {
            return Err(DistError::InvalidConfig(format!(
                "checkpoint segment for worker {w} holds {} deltas, the journal expects \
                 {want}: a compaction raced the crash, restart the run fresh",
                chain.len()
            )));
        }
        chain.truncate(want);
        chains.push(chain);
    }
    let mut segments = SegmentStore::reopen(store_dir, n_workers).map_err(|e| {
        DistError::InvalidConfig(format!(
            "re-opening checkpoint store at {}: {e}",
            store_dir.display()
        ))
    })?;
    // Excise any un-journaled tail on disk so segments and journal
    // agree byte-for-byte before new barriers append.
    for (w, chain) in chains.iter().enumerate() {
        segments.rewrite(w as u32 + 1, chain).map_err(|e| {
            DistError::Io(io::Error::other(format!(
                "truncating segment {}: {e}",
                w + 1
            )))
        })?;
    }
    segments.spilled_bytes = 0; // the rewrite is housekeeping, not new spill
    let journal = RunJournal::reopen(&path, contents.valid_len)
        .map_err(|e| DistError::InvalidConfig(format!("re-opening run journal: {e}")))?;

    // Re-open the admission point where the dead coordinator had it, so
    // parked workers holding the old `RejoinSpec` can find us; the
    // admit file (when configured) publishes the fallback address if
    // the old port never frees up.
    let admission = if !rec.admit_addr.is_empty() {
        let a = Admission::resume(
            &rec.admit_addr,
            Duration::from_secs(5),
            cfg.admit_file.as_deref(),
        )?;
        eprintln!("coordinator: admission point re-opened at {}", a.addr);
        Some(a)
    } else if cfg.elastic.enabled {
        let a = Admission::start(cfg.admit_file.as_deref())?;
        eprintln!("coordinator: admission point at {}", a.addr);
        Some(a)
    } else {
        None
    };

    let announce = std::env::var_os("WARP_ANNOUNCE_WORKERS").is_some();
    let horizon = VirtualTime::from_ticks(rec.horizon);

    // Re-adoption window: give parked survivors a bounded chance to
    // dial in with `Reattach` before respawning their slots. Stops
    // early once every slot has reported home.
    let mut adopted: Vec<Option<WorkerProc>> = (0..n_workers).map(|_| None).collect();
    let mut max_session = rec.session;
    if let Some(adm) = admission.as_deref() {
        let window = Duration::from_millis(cfg.net.liveness_ms * 2).max(Duration::from_secs(2));
        let until = (Instant::now() + window).min(deadline);
        while Instant::now() < until && adopted.iter().any(Option::is_none) {
            for w in 1..=n_workers {
                if adopted[w as usize - 1].is_some() {
                    continue;
                }
                if let Some(mut wp) = adm.take_reattach(w) {
                    let (sess, _, h) = wp.reattach.take().expect("reattach entry");
                    if h > horizon {
                        // Impossible under the ack-after-journal
                        // ordering (a worker's fossil floor never leads
                        // the journal); defensively treat the worker as
                        // untrusted and rebuild its slot fresh.
                        eprintln!(
                            "coordinator: parked worker {w} claims horizon {h} past the \
                             journal's {horizon}; dropping it"
                        );
                        wp.kill();
                    } else {
                        wp.fresh = false; // gets a SessionLine, rolls back in place
                        max_session = max_session.max(sess);
                        adopted[w as usize - 1] = Some(wp);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    let reattached = adopted.iter().filter(|w| w.is_some()).count() as u64;
    let mut workers: Vec<WorkerProc> = Vec::new();
    for (i, slot) in adopted.into_iter().enumerate() {
        match slot {
            Some(w) => workers.push(w),
            None => match WorkerProc::spawn(&cfg.worker_bin) {
                Ok(w) => {
                    if announce {
                        eprintln!("WORKER_PID {} {}", i + 1, w.pid());
                    }
                    workers.push(w);
                }
                Err(e) => {
                    kill_all(&mut workers);
                    return Err(DistError::Io(e));
                }
            },
        }
    }
    eprintln!(
        "coordinator: resumed run at session {} (horizon {horizon}): {reattached} worker(s) \
         re-adopted, {} respawned",
        rec.session,
        n_workers as u64 - reattached
    );

    // The outage is a recovery: bump the session past anything any
    // surviving worker has seen, count it, and put it on the control
    // trajectory so the report shows the run healed itself.
    let session = max_session + 1;
    let mut stats = rec.stats.clone();
    stats.store_spilled_bytes = rec.spilled_bytes;
    stats.reattached += reattached;
    let mut telemetry = rec.telemetry.clone();
    let batch = TelemetryReport {
        events: vec![ControlEvent {
            gvt: (rec.horizon > 0).then_some(rec.horizon),
            lp: 0,
            object: 0,
            lvt: None,
            param: Param::Coordinator,
            old: rec.session as f64,
            new: session as f64,
            sampled_o: reattached as f64,
        }],
        ..TelemetryReport::default()
    };
    match &mut telemetry {
        Some(t) => t.merge(batch),
        None => telemetry = Some(batch),
    }

    let mut st = CoordState {
        assign,
        store: CkptStore {
            chains,
            horizon,
            next_ckpt: rec.next_ckpt,
            segments: Some(segments),
            stats,
        },
        session,
        recoveries: rec.recoveries + 1,
        migrations: rec.migrations,
        scales: rec.scales,
        telemetry,
        probation: None,
        journal: Some(journal),
        barriers: rec.barriers,
    };
    run_cluster(cfg, workers, admission, deadline, start, announce, &mut st)
}

/// One coordinator session: distribute addresses and session lines,
/// establish the mesh, resume workers from the checkpoint store (when
/// past session 0), then pump frames to the end of the session.
fn run_session_as_coordinator(
    cfg: &DistConfig,
    workers: &mut [WorkerProc],
    deadline: Instant,
    admission: Option<&Admission>,
    st: &mut CoordState,
) -> Result<SessionEnd, DistError> {
    // The mesh is sized by the *current* membership, not the starting
    // config — elastic scales change it between sessions.
    let session = st.session;
    let n_procs = st.assign.n_workers() + 1;
    let listener = bind_loopback()?;
    let coord_addr = listener.local_addr()?;
    // Park-and-rejoin instructions ride every fresh worker's init line;
    // the admission point is where a parked worker finds the resumed
    // coordinator.
    let rejoin = match (cfg.recovery.rejoin_grace_ms, admission) {
        (grace_ms, Some(a)) if grace_ms > 0 => Some(RejoinSpec {
            grace_ms,
            admit_addr: a.addr.clone(),
            admit_file: cfg
                .admit_file
                .as_ref()
                .map(|p| p.to_string_lossy().into_owned()),
        }),
        _ => None,
    };

    let mut peers: Vec<(u32, String)> = vec![(0, coord_addr.to_string())];
    for (i, w) in workers.iter_mut().enumerate() {
        let proc_id = i as u32 + 1;
        peers.push((proc_id, w.expect_listen(proc_id, deadline)?));
    }
    for (i, w) in workers.iter_mut().enumerate() {
        let proc_id = i as u32 + 1;
        let line = if w.fresh {
            serde_json::to_string(&WorkerInit {
                proc_id,
                n_procs,
                n_lps: cfg.n_lps,
                session,
                peers: peers.clone(),
                model: cfg.model.clone(),
                net: cfg.net.clone(),
                connect_ms: remaining_ms(deadline),
                recovery: cfg.recovery.enabled,
                assignment: st.assign.owners().to_vec(),
                balance: cfg.balance.enabled || cfg.elastic.enabled,
                handicap_us: cfg
                    .handicaps
                    .iter()
                    .find(|(p, _)| *p == proc_id)
                    .map(|(_, us)| *us)
                    .unwrap_or(0),
                handicap_events: cfg
                    .handicap_events
                    .iter()
                    .find(|(p, _)| *p == proc_id)
                    .map(|(_, n)| *n)
                    .unwrap_or(0),
                fault: cfg.fault.clone(),
                rejoin: rejoin.clone(),
            })
        } else {
            serde_json::to_string(&SessionLine {
                session,
                peers: peers.clone(),
                connect_ms: remaining_ms(deadline),
                assignment: st.assign.owners().to_vec(),
                n_procs,
            })
        }
        .map_err(|e| DistError::Protocol(format!("init encode: {e}")))?;
        w.send_line(proc_id, &line)?;
        w.fresh = false;
    }

    let mesh_cfg = TcpMeshConfig {
        session,
        heartbeat_interval: cfg.net.heartbeat(),
        liveness_timeout: cfg.net.liveness(),
        connect_timeout: Duration::from_millis(remaining_ms(deadline).max(100)),
        dial_backoff_start: Duration::from_millis(cfg.net.connect_backoff_start_ms),
        dial_backoff_max: Duration::from_millis(cfg.net.connect_backoff_max_ms),
        faults: cfg.fault.clone(),
        max_frame_bytes: cfg.net.frame_cap(),
        // The coordinator sends no `Data` frames, so aggregation is
        // inert on its links; leave it off to keep control latency
        // minimal.
        ..TcpMeshConfig::new(0, n_procs)
    };
    let mesh = Mesh::establish(cfg.net.transport, mesh_cfg, listener, &[])?;

    if session > 0 {
        // Stream each worker's chain as a ResumeChunk sequence: the
        // resume payload is unbounded (it grows with the committed
        // history), so it must never have to fit one frame.
        let chunk = resume_chunk_len(&cfg.recovery, &cfg.net);
        for w in 1..n_procs {
            let payload = encode_resume(&st.store.chains[w as usize - 1]);
            st.store.stats.resume_bytes += payload.len() as u64;
            st.store.stats.resume_chunks +=
                send_resume_chunks(&mesh, w, session, st.store.horizon, &payload, chunk);
        }
    }

    let end = coordinate(&mesh, cfg, deadline, admission, st);
    match &end {
        // A rebalance or scale drains cleanly too: the queued
        // `Rebalance`/`Retire` frames must reach every worker before
        // the links close.
        Ok(SessionEnd::Finished(_) | SessionEnd::Rebalance { .. } | SessionEnd::Scale { .. }) => {
            mesh.shutdown()
        }
        _ => mesh.abort(),
    }
    end
}

/// Payload bytes per [`Frame::ResumeChunk`]: the configured size
/// (default 1 MiB) clamped so every chunk frame — payload plus tag,
/// session, gvt, seq/last fields, and length prefixes — stays under the
/// transport's frame cap.
fn resume_chunk_len(recovery: &RecoveryPolicy, net: &NetTuning) -> usize {
    const DEFAULT_CHUNK: usize = 1 << 20;
    const CHUNK_MARGIN: usize = 64;
    let want = if recovery.resume_chunk_bytes == 0 {
        DEFAULT_CHUNK
    } else {
        recovery.resume_chunk_bytes as usize
    };
    want.clamp(1, net.frame_cap().saturating_sub(CHUNK_MARGIN).max(1))
}

/// Stream one worker's resume payload as an ordered `ResumeChunk`
/// sequence. Returns the number of chunks sent — always at least one,
/// because the final chunk's `last` marker is what releases the worker.
fn send_resume_chunks(
    mesh: &Mesh,
    to: u32,
    session: u32,
    gvt: VirtualTime,
    payload: &[u8],
    chunk: usize,
) -> u64 {
    let mut seq = 0u32;
    let mut off = 0usize;
    loop {
        let end = (off + chunk).min(payload.len());
        let last = end == payload.len();
        mesh.send(
            to,
            Frame::ResumeChunk {
                session,
                gvt,
                seq,
                last,
                payload: payload[off..end].to_vec(),
            },
        );
        seq += 1;
        off = end;
        if last {
            return seq as u64;
        }
    }
}

/// Pump the mesh until every worker has reported and said goodbye,
/// driving the checkpoint protocol off `Progress` notifications along
/// the way. An unclean peer loss ends the session (not the run).
///
/// A GVT-stall watchdog (armed by [`RecoveryPolicy::stall_budget_ms`])
/// runs alongside: if the committed horizon stops advancing while
/// reports are still outstanding, the session is declared livelocked
/// and ends as [`SessionEnd::Lost`] — the same recovery path a crash
/// takes, so the cluster regroups under a fresh session epoch.
fn coordinate(
    mesh: &Mesh,
    cfg: &DistConfig,
    deadline: Instant,
    admission: Option<&Admission>,
    st: &mut CoordState,
) -> Result<SessionEnd, DistError> {
    let n_workers = st.assign.n_workers() as usize;
    let migrations_done = st.migrations.len() as u32;
    let scales_done = st.scales.len() as u32;
    let admit_addr = admission.map(|a| a.addr.clone()).unwrap_or_default();
    let mut reports: Vec<Option<WorkerReport>> = (0..n_workers).map(|_| None).collect();
    let mut closed = vec![false; n_workers];
    let mut pending: Option<PendingCkpt> = None;
    let mut last_ckpt_started = Instant::now() - Duration::from_secs(3600);
    // The cluster-level configuration loop. A fresh controller per
    // session doubles as the cooldown after a migration or recovery;
    // the per-run migration cap carries across sessions via the
    // remaining budget.
    let mut balancer = (cfg.balance.enabled
        && cfg.recovery.enabled
        && migrations_done < cfg.balance.max_migrations)
        .then(|| {
            let mut policy = cfg.balance.clone();
            policy.max_migrations = cfg.balance.max_migrations - migrations_done;
            BalanceController::new(policy, cfg.n_lps, st.assign.n_workers())
        });
    // The capacity-level configuration loop, same lifecycle rules: a
    // fresh controller per session, the per-run scale cap carried via
    // the remaining budget (fallback evictions count against it, which
    // is what stops a crash-looping admission from retrying forever).
    let mut elastic = (cfg.elastic.enabled
        && cfg.recovery.enabled
        && scales_done < cfg.elastic.max_scales)
        .then(|| {
            let mut policy = cfg.elastic.clone();
            policy.max_scales = cfg.elastic.max_scales - scales_done;
            ElasticController::new(policy, cfg.n_lps)
        });
    // One GVT round's worth of per-LP load reports, bucketed by gvt. A
    // report from a newer round discards any incomplete older bucket.
    let mut loads: Vec<Option<LpLoad>> = vec![None; cfg.n_lps as usize];
    let mut load_gvt: Option<VirtualTime> = None;
    // A reconfiguration a controller proposed — migration or scale —
    // waiting on its checkpoint barrier before the session can be ended
    // on purpose.
    enum Transition {
        Rebalance(warp_balance::Rebalance),
        Scale(ScalePlan),
    }
    struct PlannedTransition {
        t: Transition,
        barrier_fired: bool,
    }
    let mut planned: Option<PlannedTransition> = None;
    // A scale-in past its barrier: `Retire` went to the retiree and
    // `Rebalance` to the survivors; the session ends once the retiree
    // answers `DrainAck`. Survivor aborts are expected in this window.
    let mut draining: Option<ScalePlan> = None;
    let crash_hook = CrashHook::from_env(cfg.fault.as_ref());
    let stall_budget = (cfg.recovery.enabled && cfg.recovery.stall_budget_ms > 0)
        .then(|| Duration::from_millis(cfg.recovery.stall_budget_ms));
    let mut last_gvt_advance = Instant::now();
    let mut best_gvt: Option<VirtualTime> = None;
    // Latest GVT each worker has announced — the blame heuristic when
    // the watchdog fires (the least-advanced worker is the likeliest
    // wedge point; recovery regroups everyone regardless).
    let mut worker_gvt: Vec<Option<VirtualTime>> = vec![None; n_workers];

    loop {
        if reports.iter().all(Option::is_some) && closed.iter().all(|&c| c) {
            return Ok(SessionEnd::Finished(
                reports.into_iter().map(Option::unwrap).collect(),
            ));
        }
        if Instant::now() >= deadline {
            let missing: Vec<u32> = reports
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_none())
                .map(|(i, _)| i as u32 + 1)
                .collect();
            return Err(DistError::Timeout(format!(
                "still waiting on workers {missing:?} at the deadline"
            )));
        }
        if let Some(budget) = stall_budget {
            // Only while reports are outstanding: after the last report
            // the run is winding down and GVT has nowhere left to go.
            // A drain window is excluded too — the cluster stalls there
            // by design, and the retiree's ack or loss resolves it.
            let stalled = reports.iter().any(Option::is_none)
                && draining.is_none()
                && last_gvt_advance.elapsed() >= budget;
            if stalled {
                let peer = worker_gvt
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, g)| g.unwrap_or(VirtualTime::ZERO))
                    .map(|(i, _)| i as u32 + 1)
                    .unwrap_or(1);
                return Ok(SessionEnd::Lost {
                    peer,
                    detail: format!(
                        "GVT stalled at {} for {}ms (budget {}ms): cluster is livelocked",
                        best_gvt.map_or_else(|| "-".into(), |g| g.to_string()),
                        last_gvt_advance.elapsed().as_millis(),
                        budget.as_millis()
                    ),
                });
            }
        }
        // Drive a planned transition (migration or scale): first a
        // checkpoint barrier so the chains cover everything committed,
        // then end the session on purpose — a broadcast `Rebalance`
        // (everyone aborts and regroups), except the scale-in retiree,
        // which gets `Retire` and must answer `DrainAck` before the
        // session is declared over.
        if let Some(p) = planned.as_mut() {
            if pending.is_none() {
                if p.barrier_fired {
                    match planned.take().unwrap().t {
                        Transition::Rebalance(plan) => {
                            for w in 1..=n_workers as u32 {
                                mesh.send(
                                    w,
                                    Frame::Rebalance {
                                        gvt: st.store.horizon,
                                    },
                                );
                            }
                            return Ok(SessionEnd::Rebalance {
                                next: plan.assignment,
                                moves: plan.moves,
                                imbalance: plan.imbalance,
                            });
                        }
                        Transition::Scale(plan) => match plan.retired() {
                            None => {
                                for w in 1..=n_workers as u32 {
                                    mesh.send(
                                        w,
                                        Frame::Rebalance {
                                            gvt: st.store.horizon,
                                        },
                                    );
                                }
                                return Ok(SessionEnd::Scale { plan });
                            }
                            Some(retiree) => {
                                mesh.send(
                                    retiree,
                                    Frame::Retire {
                                        gvt: st.store.horizon,
                                    },
                                );
                                for w in (1..=n_workers as u32).filter(|w| *w != retiree) {
                                    mesh.send(
                                        w,
                                        Frame::Rebalance {
                                            gvt: st.store.horizon,
                                        },
                                    );
                                }
                                draining = Some(plan);
                            }
                        },
                    }
                } else if let Some(gvt) =
                    best_gvt.filter(|g| g.is_finite() && *g > st.store.horizon)
                {
                    let ckpt = st.store.next_ckpt;
                    st.store.next_ckpt += 1;
                    last_ckpt_started = Instant::now();
                    pending = Some(PendingCkpt {
                        ckpt,
                        gvt,
                        parts: (0..n_workers).map(|_| None).collect(),
                    });
                    for w in 1..=n_workers as u32 {
                        mesh.send(w, Frame::SnapshotReq { ckpt, gvt });
                    }
                    p.barrier_fired = true;
                } else if st.store.horizon > VirtualTime::ZERO {
                    // The horizon already sits at the frontier; there is
                    // nothing new to capture before moving.
                    p.barrier_fired = true;
                }
            }
        }
        match mesh.recv_timeout(Duration::from_millis(50)) {
            Some(MeshEvent::Frame { from, frame }) => match frame {
                Frame::Report(bytes) => {
                    let report: WorkerReport = serde_json::from_slice(&bytes).map_err(|e| {
                        DistError::Protocol(format!("bad report from proc {from}: {e}"))
                    })?;
                    reports[from as usize - 1] = Some(report);
                    // A report is definite progress: the sender saw ∞.
                    last_gvt_advance = Instant::now();
                    // The run is winding down; migrating or scaling now
                    // would only throw away finished work.
                    planned = None;
                    balancer = None;
                    elastic = None;
                }
                Frame::Telemetry(bytes) => {
                    // Advisory stream; a batch that fails to parse is
                    // dropped, never fatal.
                    if let Ok(batch) = serde_json::from_slice::<TelemetryReport>(&bytes) {
                        match &mut st.telemetry {
                            Some(t) => t.merge(batch),
                            None => st.telemetry = Some(batch),
                        }
                    }
                }
                Frame::Progress { gvt } => {
                    // Test hook (legacy form): die like a killed
                    // coordinator — no goodbye — once the run is
                    // demonstrably underway, so orphan hygiene can be
                    // exercised with real processes.
                    if crash_hook == CrashHook::FirstProgress {
                        std::process::abort();
                    }
                    worker_gvt[from as usize - 1] = Some(gvt);
                    if best_gvt.is_none_or(|b| gvt > b) {
                        best_gvt = Some(gvt);
                        last_gvt_advance = Instant::now();
                    }
                    if !gvt.is_finite() {
                        // GVT = ∞: reports are imminent; stand down.
                        planned = None;
                        balancer = None;
                        elastic = None;
                    }
                    let due = cfg.recovery.enabled
                        && gvt.is_finite()
                        && gvt > st.store.horizon
                        && pending.is_none()
                        && draining.is_none()
                        && last_ckpt_started.elapsed()
                            >= Duration::from_millis(cfg.recovery.ckpt_min_interval_ms);
                    if due {
                        let ckpt = st.store.next_ckpt;
                        st.store.next_ckpt += 1;
                        last_ckpt_started = Instant::now();
                        pending = Some(PendingCkpt {
                            ckpt,
                            gvt,
                            parts: (0..n_workers).map(|_| None).collect(),
                        });
                        for w in 1..=n_workers as u32 {
                            mesh.send(w, Frame::SnapshotReq { ckpt, gvt });
                        }
                    }
                }
                Frame::LoadReport {
                    gvt,
                    lp,
                    executed,
                    rolled_back,
                    retained,
                    lvt_lead,
                } => {
                    // Advisory, like telemetry: a malformed or stale
                    // report is dropped, never fatal.
                    if (balancer.is_some() || elastic.is_some())
                        && gvt.is_finite()
                        && (lp as usize) < loads.len()
                    {
                        if load_gvt != Some(gvt) {
                            if load_gvt.is_some_and(|g| gvt < g) {
                                continue; // straggling report from an old round
                            }
                            load_gvt = Some(gvt);
                            loads.iter_mut().for_each(|l| *l = None);
                        }
                        loads[lp as usize] = Some(LpLoad {
                            executed,
                            rolled_back,
                            retained,
                            lvt_lead,
                        });
                        if loads.iter().all(Option::is_some) {
                            let bucket: Vec<LpLoad> = loads.iter().map(|l| l.unwrap()).collect();
                            // WARP_DEBUG_ROUNDS=1 dumps one line per
                            // complete observation round — the raw
                            // lvt_lead signal the balance and elastic
                            // controllers see, before EWMA smoothing.
                            if std::env::var_os("WARP_DEBUG_ROUNDS").is_some() {
                                eprintln!(
                                    "ROUND gvt={} leads={:?} workers={}",
                                    gvt.ticks(),
                                    bucket.iter().map(|l| l.lvt_lead).collect::<Vec<_>>(),
                                    st.assign.n_workers()
                                );
                            }
                            // Both controllers observe every complete
                            // round (their filters must track the live
                            // load), but at most one transition is in
                            // flight; migration wins a tie.
                            let can_add =
                                cfg.elastic.spawn || admission.is_some_and(|a| a.joiners_waiting());
                            let bal_prop = balancer
                                .as_mut()
                                .and_then(|b| b.observe(&st.assign, &bucket));
                            let ela_prop = elastic
                                .as_mut()
                                .and_then(|e| e.observe(&st.assign, &bucket, can_add));
                            if planned.is_none() && draining.is_none() {
                                if let Some(plan) = bal_prop {
                                    planned = Some(PlannedTransition {
                                        t: Transition::Rebalance(plan),
                                        barrier_fired: false,
                                    });
                                } else if let Some(plan) = ela_prop {
                                    planned = Some(PlannedTransition {
                                        t: Transition::Scale(plan),
                                        barrier_fired: false,
                                    });
                                }
                            }
                        }
                    }
                }
                Frame::Snapshot { ckpt, gvt, payload } => {
                    let matches = pending.as_ref().is_some_and(|p| p.ckpt == ckpt);
                    if matches {
                        let p = pending.as_mut().unwrap();
                        p.parts[from as usize - 1] = Some(payload);
                        if p.parts.iter().all(Option::is_some) {
                            let done = pending.take().unwrap();
                            for (w, part) in done.parts.into_iter().enumerate() {
                                let part = part.unwrap();
                                // Spill before the in-memory append: a
                                // checkpoint is only durable once every
                                // part reached its segment file.
                                if let Some(seg) = st.store.segments.as_mut() {
                                    seg.append(w as u32 + 1, &part).map_err(|e| {
                                        DistError::Io(io::Error::other(format!(
                                            "checkpoint store append: {e}"
                                        )))
                                    })?;
                                }
                                st.store.chains[w].push(part);
                            }
                            st.store.horizon = done.gvt;
                            // Deltas below the new horizon are superseded
                            // once the chain is deep enough: merge them so
                            // neither memory nor a future resume pays for
                            // dead intermediate windows.
                            if cfg.recovery.compact_after > 0
                                && st
                                    .store
                                    .chains
                                    .iter()
                                    .any(|c| c.len() >= cfg.recovery.compact_after.max(2) as usize)
                            {
                                st.store.compact().map_err(|e| {
                                    DistError::Protocol(format!("checkpoint compaction: {e}"))
                                })?;
                            }
                            // The journal append is the barrier's commit
                            // point: only after the control-plane record
                            // is durable may workers learn the horizon
                            // advanced and unpin fossils below it. A
                            // crash before this line makes the barrier
                            // never have happened — resume truncates the
                            // segment appends above the journaled depth.
                            st.barriers += 1;
                            st.journal_append(&admit_addr)?;
                            for w in 1..=n_workers as u32 {
                                mesh.send(
                                    w,
                                    Frame::SnapshotAck {
                                        ckpt: done.ckpt,
                                        gvt: done.gvt,
                                    },
                                );
                            }
                            // Test hook (`barriers:N` form): die like a
                            // killed coordinator *between* barriers —
                            // after this one committed and acked. Exact
                            // equality, so a resumed coordinator that
                            // inherits the env var (journal restores
                            // `barriers` at N) never re-crashes.
                            if crash_hook == CrashHook::AfterBarriers(st.barriers) {
                                std::process::abort();
                            }
                        }
                    }
                    let _ = gvt;
                }
                Frame::DrainAck { .. } => {
                    // The scale-in retiree confirms it aborted its LPs
                    // and is about to close cleanly and exit; the
                    // session is over on purpose. A stray ack outside a
                    // drain window is stale traffic, ignored.
                    if let Some(plan) = draining.take() {
                        return Ok(SessionEnd::Scale { plan });
                    }
                }
                other => {
                    return Err(DistError::Protocol(format!(
                        "coordinator received unexpected {other:?} from proc {from}"
                    )));
                }
            },
            Some(MeshEvent::PeerDown {
                peer,
                clean,
                detail,
            }) => {
                if let Some(plan) = draining.as_ref() {
                    if peer == plan.from_workers {
                        if clean {
                            // The retiree closed cleanly before its ack
                            // was read (the frames can race); a clean
                            // close past the barrier means it drained.
                            return Ok(SessionEnd::Scale {
                                plan: draining.take().unwrap(),
                            });
                        }
                        return Ok(SessionEnd::Lost {
                            peer,
                            detail: format!("crashed while draining for retirement: {detail}"),
                        });
                    }
                    // Survivors abort on `Rebalance` while the retiree
                    // drains; their going down here is the plan working.
                } else if clean && reports[peer as usize - 1].is_some() {
                    closed[peer as usize - 1] = true;
                } else {
                    return Ok(SessionEnd::Lost {
                        peer,
                        detail: if clean {
                            "closed cleanly without sending its report".into()
                        } else {
                            detail
                        },
                    });
                }
            }
            None => {}
        }
    }
}

/// After an unclean session end: sort survivors (they re-announce
/// `LISTEN`) from corpses (reaped and respawned). Survivors keep their
/// processes and get a [`SessionLine`]; respawns get a full
/// [`WorkerInit`] at the bumped session.
fn regroup(
    cfg: &DistConfig,
    workers: &mut [WorkerProc],
    deadline: Instant,
    announce: bool,
) -> Result<(), DistError> {
    for (i, w) in workers.iter_mut().enumerate() {
        let proc_id = i as u32 + 1;
        loop {
            let reaped = match &mut w.ctl {
                Ctl::Child(c) => matches!(c.try_wait(), Ok(Some(_))),
                // A remote's death shows up as its line stream closing,
                // handled below; there is no status to reap.
                Ctl::Remote(_) => false,
            };
            if reaped {
                let mut respawned = WorkerProc::spawn(&cfg.worker_bin)?;
                if announce {
                    eprintln!("WORKER_PID {} {}", proc_id, respawned.pid());
                }
                std::mem::swap(w, &mut respawned);
                break;
            }
            match w.lines.try_recv() {
                Ok(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("LISTEN ") {
                        w.pending_listen = Some(addr.trim().to_string());
                        break;
                    }
                    // Unrelated output; keep waiting.
                }
                Ok(Err(detail)) => {
                    return Err(DistError::Worker { proc_id, detail });
                }
                Err(mpsc::TryRecvError::Disconnected) if w.is_remote() => {
                    // A joined worker is gone for good once its control
                    // socket closes — there is no binary to respawn.
                    return Err(DistError::Worker {
                        proc_id,
                        detail: "joined worker closed its control socket during recovery".into(),
                    });
                }
                Err(mpsc::TryRecvError::Empty) | Err(mpsc::TryRecvError::Disconnected) => {}
            }
            if Instant::now() >= deadline {
                return Err(DistError::Timeout(format!(
                    "worker (proc {proc_id}) neither exited nor re-announced during recovery"
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    Ok(())
}

fn merge_reports(
    reports: Vec<WorkerReport>,
    wall: f64,
    recoveries: u64,
    migrations: Vec<MigrationRecord>,
    scales: Vec<ScaleRecord>,
    telemetry: Option<TelemetryReport>,
    mut resume: ResumeStats,
) -> RunReport {
    for r in &reports {
        resume.merge(&r.resume);
    }
    let gvt_rounds = reports.iter().map(|r| r.gvt_rounds).max().unwrap_or(0);
    let mut wire_agg: Vec<warp_net::LinkAggStats> =
        reports.iter().flat_map(|r| r.wire_agg.clone()).collect();
    wire_agg.sort_by_key(|s| s.peer);
    let mut per_lp: Vec<LpSummary> = reports.into_iter().flat_map(|r| r.per_lp).collect();
    per_lp.sort_by_key(|s| s.lp);

    let mut kernel = ObjectStats::default();
    let mut comm = CommStats::default();
    let mut committed = 0u64;
    for s in &per_lp {
        committed += s.kernel.net_executed();
        kernel.merge(&s.kernel);
        comm.merge(&s.comm);
    }

    RunReport {
        timeline: Vec::new(),
        executive: "distributed".into(),
        completion_seconds: wall,
        wall_seconds: wall,
        committed_events: committed,
        events_per_second: if wall > 0.0 {
            committed as f64 / wall
        } else {
            0.0
        },
        gvt_rounds,
        kernel,
        comm,
        per_lp,
        recoveries,
        migrations,
        scales,
        telemetry,
        wire_agg,
        resume,
    }
}

/// Path of worker `worker`'s (1-based) segment file inside a checkpoint
/// store directory (`worker-<n>.seg`) — the layout
/// [`RecoveryPolicy::store_dir`] writes.
pub fn checkpoint_segment_path(dir: &Path, worker: u32) -> PathBuf {
    crate::snapshot::store::segment_path(dir, worker)
}

/// Read back one worker's on-disk checkpoint segment: the 1-based
/// worker id recorded in its header, plus the ordered delta chain. For
/// audit tooling and tests; a truncated, corrupted, or foreign file is
/// a typed error (formatted), never a silently shorter chain. The
/// format is documented in `docs/recovery-store.md`.
pub fn load_checkpoint_segment(path: &Path) -> Result<(u32, Vec<Vec<u8>>), String> {
    crate::snapshot::store::load_segment(path).map_err(|e| e.to_string())
}

fn remaining_ms(deadline: Instant) -> u64 {
    deadline
        .saturating_duration_since(Instant::now())
        .as_millis() as u64
}

fn kill_all(children: &mut [WorkerProc]) {
    for w in children.iter_mut() {
        w.kill();
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// Process-wide execution rate limiter: enforces a minimum gap between
/// executed events across *all* of a worker's LP threads, so a handicap
/// models a genuinely slow machine — moving LPs off it really does
/// raise cluster throughput. Checkpoint replay during a restore is not
/// throttled (the port's `throttle` hook only fires in the batch loop).
///
/// An optional **event budget** makes the handicap transient: only the
/// first `n` paced events sleep, then the worker runs at full speed.
/// The counter lives in the worker's session loop, not the session, so
/// a recovery or an elastic scale never re-arms a spent handicap —
/// exactly what a scale-out-then-back-in experiment needs.
struct EventThrottle {
    gap: Duration,
    next: Mutex<Instant>,
    /// Remaining paced events (`None` = unlimited).
    budget: Option<AtomicU64>,
}

impl EventThrottle {
    fn new(gap_us: u64, budget_events: u64) -> Self {
        EventThrottle {
            gap: Duration::from_micros(gap_us),
            next: Mutex::new(Instant::now()),
            budget: (budget_events > 0).then(|| AtomicU64::new(budget_events)),
        }
    }

    /// Claim the next execution slot, sleeping outside the lock.
    fn pace(&self) {
        if let Some(budget) = &self.budget {
            let mut cur = budget.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    return; // handicap spent: full speed from here on
                }
                match budget.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        let wake = {
            let mut next = self.next.lock().unwrap();
            let at = (*next).max(Instant::now());
            *next = at + self.gap;
            at
        };
        let now = Instant::now();
        if wake > now {
            std::thread::sleep(wake - now);
        }
    }
}

/// An LP's transport inside a worker process: packets for co-resident
/// LPs go over local channels, everything else becomes a frame on the
/// TCP mesh addressed to the owning process.
struct WorkerPort {
    lp: u32,
    n_lps: u32,
    my_proc: u32,
    assign: Arc<Assignment>,
    locals: Arc<Vec<Option<Sender<Packet>>>>,
    mesh_tx: MeshSender,
    rx: Receiver<Packet>,
    /// Stream per-LP load reports to the coordinator at GVT rounds.
    balance: bool,
    /// Artificial slowdown shared by every LP thread in this process.
    throttle: Option<Arc<EventThrottle>>,
}

impl LpPort for WorkerPort {
    fn id(&self) -> usize {
        self.lp as usize
    }
    fn n_total(&self) -> usize {
        self.n_lps as usize
    }
    fn send(&self, to: usize, p: Packet) {
        if self.assign.proc_of(to as u32) == self.my_proc {
            if let Some(Some(tx)) = self.locals.get(to) {
                // A send to an LP that already shut down is ignorable by
                // construction (it can only concern committed history).
                let _ = tx.send(p);
            }
        } else {
            let frame = match p {
                // The link writer stamps the real per-link sequence.
                Packet::Data { msg, epoch } => Frame::Data { seq: 0, epoch, msg },
                Packet::Token(token) => Frame::Token {
                    dst_lp: to as u32,
                    token,
                },
                Packet::GvtNews(gvt) => Frame::GvtNews {
                    dst_lp: to as u32,
                    gvt,
                },
                // Checkpoint and abort traffic is process-local by
                // design; the LP loop never addresses it to a peer.
                Packet::Ckpt { .. } | Packet::CkptAck(_) | Packet::Abort => return,
            };
            self.mesh_tx.send(self.assign.proc_of(to as u32), frame);
        }
    }
    fn try_recv(&self) -> Option<Packet> {
        self.rx.try_recv().ok()
    }
    fn recv_timeout(&self, timeout: Duration) -> Option<Packet> {
        self.rx.recv_timeout(timeout).ok()
    }
    fn note_gvt(&self, gvt: VirtualTime) {
        // Only the controller LP calls this; the coordinator paces the
        // checkpoint protocol off these notifications.
        self.mesh_tx.send(0, Frame::Progress { gvt });
    }
    fn wants_telemetry(&self) -> bool {
        // Stream instead of accumulate: the recorder only exists when
        // the spec enabled telemetry, so an unconditional `true` costs
        // nothing on plain runs and keeps worker reports telemetry-free
        // (the coordinator merges the streamed batches instead).
        true
    }
    fn stream_telemetry(&self, json: Vec<u8>) {
        self.mesh_tx.send(0, Frame::Telemetry(json));
    }
    fn wants_load(&self) -> bool {
        self.balance
    }
    fn report_load(&self, gvt: VirtualTime, load: warp_balance::LpLoad) {
        self.mesh_tx.send(
            0,
            Frame::LoadReport {
                gvt,
                lp: self.lp,
                executed: load.executed,
                rolled_back: load.rolled_back,
                retained: load.retained,
                lvt_lead: load.lvt_lead,
            },
        );
    }
    fn throttle(&self) {
        if let Some(t) = &self.throttle {
            t.pace();
        }
    }
}

/// The worker's control channel back to the coordinator: stdout for a
/// spawned child, the admission socket for a `--join` worker. The line
/// protocol on top (`LISTEN <addr>` announcements) is identical.
pub enum ControlOut {
    /// Spawned child: announce on stdout.
    Stdout,
    /// Joined remote: announce on the admission stream.
    Stream(TcpStream),
}

impl ControlOut {
    /// Send `LISTEN <addr>`; false when the channel is broken — nobody
    /// is listening, the worker is already orphaned.
    fn announce(&mut self, addr: &str) -> bool {
        match self {
            ControlOut::Stdout => {
                let mut out = io::stdout();
                writeln!(out, "LISTEN {addr}")
                    .and_then(|_| out.flush())
                    .is_ok()
            }
            ControlOut::Stream(s) => writeln!(s, "LISTEN {addr}").and_then(|_| s.flush()).is_ok(),
        }
    }
}

/// Entry point for a worker binary: speak the bootstrap protocol on
/// stdio, then run this process's share of the simulation — across as
/// many sessions as the coordinator asks for.
///
/// `build` turns the coordinator's opaque model JSON into the
/// [`SimulationSpec`] — that is the only model knowledge in the whole
/// distributed machinery, and it lives in the binary, not this crate.
pub fn worker_main(
    build: &dyn Fn(&serde_json::Value) -> Result<SimulationSpec, String>,
) -> Result<(), String> {
    worker_main_with(build, None)
}

/// [`worker_main`] with a local override for the rejoin grace: the
/// `--rejoin-grace MS` flag of a worker binary. `Some(0)` disables
/// parking even when the coordinator offered it; `Some(ms)` replaces
/// the offered grace (the re-admission address still comes from the
/// coordinator's [`WorkerInit`], so the override is inert when the
/// coordinator never offered a [`RejoinSpec`]).
pub fn worker_main_with(
    build: &dyn Fn(&serde_json::Value) -> Result<SimulationSpec, String>,
    rejoin_grace_ms: Option<u64>,
) -> Result<(), String> {
    let ctl_rx = spawn_control_reader(io::stdin());
    worker_boot(build, ctl_rx, ControlOut::Stdout, rejoin_grace_ms, None)
}

/// Entry point for a worker binary dialing *into* a running elastic
/// coordinator (the `--join ADDR` path): connect to the admission
/// listener, present a [`Frame::Join`] handshake, then speak exactly
/// the spawned-worker bootstrap protocol over the same socket. The
/// worker idles in the coordinator's admission queue until a scale-out
/// adopts it; if the coordinator exits first, the socket closes and the
/// worker exits on its own like any orphan.
pub fn join_main(
    coordinator: &str,
    build: &dyn Fn(&serde_json::Value) -> Result<SimulationSpec, String>,
) -> Result<(), String> {
    join_main_with(coordinator, build, None)
}

/// [`join_main`] with a local rejoin-grace override. Unlike a spawned
/// worker, a `--join` worker already knows an admission address — the
/// one it is dialing — so `--rejoin-grace MS` works even when the
/// coordinator's init carries no [`RejoinSpec`].
pub fn join_main_with(
    coordinator: &str,
    build: &dyn Fn(&serde_json::Value) -> Result<SimulationSpec, String>,
    rejoin_grace_ms: Option<u64>,
) -> Result<(), String> {
    let mut stream = TcpStream::connect(coordinator)
        .map_err(|e| format!("dialing admission listener {coordinator}: {e}"))?;
    let hello = Frame::Join {
        version: warp_net::frame::PROTO_VERSION,
    };
    stream
        .write_all(&hello.encode())
        .and_then(|_| stream.flush())
        .map_err(|e| format!("join handshake: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cloning admission stream: {e}"))?;
    let ctl_rx = spawn_control_reader(read_half);
    worker_boot(
        build,
        ctl_rx,
        ControlOut::Stream(stream),
        rejoin_grace_ms,
        Some(coordinator),
    )
}

/// Shared bootstrap past the control channel: bind, announce, read the
/// [`WorkerInit`], build the model, run sessions.
fn worker_boot(
    build: &dyn Fn(&serde_json::Value) -> Result<SimulationSpec, String>,
    ctl_rx: Receiver<String>,
    mut ctl_out: ControlOut,
    rejoin_grace_ms: Option<u64>,
    join_addr: Option<&str>,
) -> Result<(), String> {
    let listener = bind_loopback().map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if !ctl_out.announce(&addr.to_string()) {
        // Nobody is reading our control channel: already orphaned.
        std::process::exit(3);
    }

    let line = match ctl_rx.recv() {
        Ok(line) => line,
        Err(_) => {
            eprintln!("warp-worker: coordinator closed the control channel before init; exiting");
            std::process::exit(3);
        }
    };
    let mut init: WorkerInit =
        serde_json::from_str(&line).map_err(|e| format!("parsing init: {e}"))?;
    match (rejoin_grace_ms, &mut init.rejoin) {
        (None, _) => {}
        (Some(0), r) => *r = None,
        (Some(ms), Some(spec)) => spec.grace_ms = ms,
        (Some(ms), r @ None) => {
            if let Some(addr) = join_addr {
                *r = Some(RejoinSpec {
                    grace_ms: ms,
                    admit_addr: addr.to_string(),
                    admit_file: None,
                });
            } else {
                eprintln!(
                    "warp-worker: --rejoin-grace ignored: the coordinator offered no \
                     re-admission point (it runs without a rejoin grace)"
                );
            }
        }
    }

    let spec = build(&init.model)?;
    let n_lps = spec.partition.n_lps() as u32;
    if n_lps != init.n_lps {
        return Err(format!(
            "coordinator expects {} LPs but the model builds {n_lps}",
            init.n_lps
        ));
    }
    run_worker(&init, spec, listener, ctl_rx, &mut ctl_out)
}

/// Read control lines on a dedicated thread. The channel closing means
/// EOF: the coordinator is gone, and a worker without a coordinator
/// must not linger.
fn spawn_control_reader<R: Read + Send + 'static>(src: R) -> Receiver<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(src).lines();
        while let Some(Ok(line)) = lines.next() {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

/// How a worker session ended.
enum WorkerSessionEnd {
    /// GVT reached ∞; the report is sent and the mesh closed cleanly.
    Finished,
    /// A peer was lost; LP state is discarded, awaiting recovery.
    PeerLost(String),
    /// The coordinator announced a migration; LP state is discarded,
    /// awaiting the new session's assignment and `Resume`.
    Rebalance,
    /// The coordinator retired this worker in a scale-in: its LPs are
    /// drained to the survivors via the checkpoint chains, `DrainAck`
    /// is sent, and the process exits 0.
    Retire,
}

/// The worker's life after bootstrap: run mesh sessions until one
/// finishes cleanly. On an unclean peer loss (with recovery on) the
/// worker discards the session, re-announces a fresh listener, and
/// waits for the coordinator's next [`SessionLine`]; without recovery
/// it exits nonzero at once, because a Time Warp run that lost a
/// process cannot commit a correct history.
pub fn run_worker(
    init: &WorkerInit,
    spec: SimulationSpec,
    listener: std::net::TcpListener,
    mut ctl_rx: Receiver<String>,
    ctl_out: &mut ControlOut,
) -> Result<(), String> {
    // Mesh size is per *session* now, not per run: elastic scales grow
    // and shrink it via [`SessionLine::n_procs`].
    let mut n_procs = init.n_procs;
    let mut assign = if init.assignment.is_empty() {
        Assignment::contiguous(init.n_lps, n_procs - 1)
    } else {
        Assignment::from_owners(init.assignment.clone(), n_procs - 1)
    }
    .map_err(|e| format!("assignment: {e}"))?;
    if assign.n_lps() != init.n_lps {
        return Err(format!(
            "assignment covers {} LPs but the model has {}",
            assign.n_lps(),
            init.n_lps
        ));
    }
    let mut session = init.session;
    let mut peers = init.peers.clone();
    let mut connect_ms = init.connect_ms;
    let mut listener = Some(listener);
    // One throttle for the process's whole life: its event budget must
    // not re-arm when a recovery or scale starts a new session.
    let throttle = (init.handicap_us > 0)
        .then(|| Arc::new(EventThrottle::new(init.handicap_us, init.handicap_events)));
    // Runtimes handed back by aborted sessions, keyed by LP: a survivor
    // re-seeds these by in-place rollback to the resume horizon instead
    // of rebuilding from committed logs. Only the immediately preceding
    // participation is ever valid (the seeding path clears the map).
    let mut retained: HashMap<u32, Box<warp_core::LpRuntime>> = HashMap::new();
    let mut resume_stats = ResumeStats::default();
    // The fossil floor: the last barrier horizon the coordinator
    // acknowledged (`SnapshotAck`). Local fossil collection never
    // advances past it, so a parked worker can always roll its retained
    // runtimes back to any horizon a successor coordinator replays from
    // the journal — this is the `horizon` a `Reattach` reports.
    let floor = Arc::new(AtomicU64::new(0));

    loop {
        let lst = listener.take().expect("listener staged for this session");
        let why = match run_session_as_worker(
            init,
            &spec,
            &assign,
            n_procs,
            session,
            &peers,
            connect_ms,
            lst,
            &mut retained,
            &mut resume_stats,
            throttle.clone(),
            &floor,
        )? {
            WorkerSessionEnd::Finished => return Ok(()),
            WorkerSessionEnd::Retire => {
                eprintln!(
                    "warp-worker (proc {}): retired by scale-in at session {session}; exiting",
                    init.proc_id
                );
                return Ok(());
            }
            WorkerSessionEnd::PeerLost(detail) => {
                if !init.recovery {
                    eprintln!(
                        "warp-worker (proc {}): session {session} lost a peer ({detail}); exiting",
                        init.proc_id
                    );
                    std::process::exit(3);
                }
                format!("lost a peer ({detail}); awaiting recovery")
            }
            WorkerSessionEnd::Rebalance => "ended for LP migration; awaiting new assignment".into(),
        };
        eprintln!(
            "warp-worker (proc {}): session {session} {why}",
            init.proc_id
        );
        let lst = bind_loopback().map_err(|e| format!("re-bind: {e}"))?;
        let addr = lst
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .to_string();
        // The coordinator needs time to notice, reap, and respawn; but
        // a coordinator that died will never write again — bound the
        // wait. With a rejoin grace the worker parks instead of dying:
        // it keeps its retained runtimes, dials the re-admission point,
        // and presents `Reattach` until a successor adopts it or the
        // grace runs out. The park deadline spans the *whole* parked
        // period — repeated failed reattach rounds share one grace, and
        // only a delivered session line resets it (by looping back to
        // the top with a live coordinator).
        let wait = init.net.orphan_wait();
        let mut park_deadline: Option<Instant> = None;
        let sl: SessionLine = loop {
            let heard = if ctl_out.announce(&addr) {
                ctl_rx.recv_timeout(wait)
            } else {
                Err(RecvTimeoutError::Disconnected)
            };
            let why = match heard {
                Ok(line) => {
                    break serde_json::from_str(&line)
                        .map_err(|e| format!("parsing session line: {e}"))?;
                }
                Err(RecvTimeoutError::Disconnected) => "control channel closed".to_string(),
                Err(RecvTimeoutError::Timeout) => {
                    format!("no recovery instructions within {wait:?}")
                }
            };
            let Some(rejoin) = &init.rejoin else {
                eprintln!(
                    "warp-worker (proc {}): orphaned ({why}); exiting",
                    init.proc_id
                );
                std::process::exit(3);
            };
            let deadline = *park_deadline
                .get_or_insert_with(|| Instant::now() + Duration::from_millis(rejoin.grace_ms));
            match park_for_rejoin(init, rejoin, deadline, session, &floor, &why) {
                Some((rx, out)) => {
                    ctl_rx = rx;
                    *ctl_out = out;
                }
                None => {
                    eprintln!(
                        "warp-worker (proc {}): rejoin grace ({} ms) expired with no \
                         successor coordinator; exiting",
                        init.proc_id, rejoin.grace_ms
                    );
                    std::process::exit(4);
                }
            }
        };
        session = sl.session;
        peers = sl.peers;
        connect_ms = sl.connect_ms;
        if sl.n_procs != 0 {
            n_procs = sl.n_procs;
        }
        if !sl.assignment.is_empty() {
            assign = Assignment::from_owners(sl.assignment, n_procs - 1)
                .map_err(|e| format!("session assignment: {e}"))?;
        }
        listener = Some(lst);
    }
}

/// A parked worker's rejoin loop: dial the coordinator's re-admission
/// point with jittered exponential backoff, presenting a
/// [`Frame::Reattach`] that names this worker and the fossil horizon it
/// can roll back to, until either a successor coordinator accepts the
/// stream or the grace deadline passes. The admission file (when
/// configured) is re-read on every attempt, because a restarted
/// coordinator may re-open admission on a different port.
///
/// Returns the fresh control channel on success, `None` on expiry.
fn park_for_rejoin(
    init: &WorkerInit,
    rejoin: &RejoinSpec,
    deadline: Instant,
    session: u32,
    floor: &AtomicU64,
    why: &str,
) -> Option<(Receiver<String>, ControlOut)> {
    let horizon = VirtualTime::from_ticks(floor.load(Ordering::Acquire));
    eprintln!(
        "warp-worker (proc {}): coordinator lost ({why}); parked for rejoin \
         (grace {} ms, horizon {horizon})",
        init.proc_id, rejoin.grace_ms
    );
    let start = Duration::from_millis(init.net.connect_backoff_start_ms.max(1));
    let cap = Duration::from_millis(
        init.net
            .connect_backoff_max_ms
            .max(init.net.connect_backoff_start_ms.max(1)),
    );
    let seed = (u64::from(init.proc_id) << 32) | 0xFA11;
    let mut attempt = 0u32;
    while Instant::now() < deadline {
        let addr = rejoin
            .admit_file
            .as_deref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| rejoin.admit_addr.clone());
        if let Ok(mut stream) = TcpStream::connect(&addr) {
            let hello = Frame::Reattach {
                session,
                worker_id: init.proc_id,
                horizon,
            };
            let sent = stream
                .write_all(&hello.encode())
                .and_then(|_| stream.flush());
            if sent.is_ok() {
                if let Ok(read_half) = stream.try_clone() {
                    eprintln!(
                        "warp-worker (proc {}): reattached via {addr} \
                         (last session {session}, horizon {horizon})",
                        init.proc_id
                    );
                    let rx = spawn_control_reader(read_half);
                    return Some((rx, ControlOut::Stream(stream)));
                }
            }
        }
        attempt = attempt.saturating_add(1);
        let pause = warp_net::tcp::jittered_backoff(start, cap, attempt, seed);
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(pause.min(left));
    }
    None
}

/// One worker session: establish the mesh under the session epoch,
/// seed the LPs (fresh on session 0, restored from the coordinator's
/// streamed resume otherwise — in place when a retained runtime exists),
/// run them, and either report cleanly or abort.
#[allow(clippy::too_many_arguments)]
fn run_session_as_worker(
    init: &WorkerInit,
    spec: &SimulationSpec,
    assign: &Assignment,
    n_procs: u32,
    session: u32,
    peers: &[(u32, String)],
    connect_ms: u64,
    listener: std::net::TcpListener,
    retained: &mut HashMap<u32, Box<warp_core::LpRuntime>>,
    resume_stats: &mut ResumeStats,
    throttle: Option<Arc<EventThrottle>>,
    floor: &Arc<AtomicU64>,
) -> Result<WorkerSessionEnd, String> {
    let my_lps: Vec<u32> = assign.lps_of(init.proc_id);
    let peer_addrs: Vec<(u32, SocketAddr)> = peers
        .iter()
        .filter(|(id, _)| *id < init.proc_id)
        .map(|(id, addr)| {
            addr.parse()
                .map(|a| (*id, a))
                .map_err(|e| format!("bad peer address {addr:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;

    let mesh_cfg = TcpMeshConfig {
        session,
        heartbeat_interval: Duration::from_millis(init.net.heartbeat_ms.max(10)),
        liveness_timeout: Duration::from_millis(init.net.liveness_ms.max(100)),
        connect_timeout: Duration::from_millis(connect_ms.max(100)),
        dial_backoff_start: Duration::from_millis(init.net.connect_backoff_start_ms.max(1)),
        dial_backoff_max: Duration::from_millis(
            init.net
                .connect_backoff_max_ms
                .max(init.net.connect_backoff_start_ms.max(1)),
        ),
        faults: init.fault.clone(),
        max_frame_bytes: init.net.frame_cap(),
        agg: init.net.agg_tuning(),
        ..TcpMeshConfig::new(init.proc_id, n_procs)
    };
    let mesh = Mesh::establish(init.net.transport, mesh_cfg, listener, &peer_addrs)
        .map_err(|e| format!("mesh establishment: {e}"))?;

    // Test hook: die like a killed worker — no Bye, no report — right
    // after joining the mesh, so failure-detection and recovery paths
    // can be exercised end-to-end with the real binary.
    if std::env::var_os("WARP_WORKER_TEST_CRASH").is_some() {
        std::process::exit(9);
    }
    // Test hook for the elastic eviction path: a *newly admitted*
    // worker (fresh spawn into a non-zero session) whose proc id
    // matches the value dies right after joining its first mesh — mid
    // scale-out, before it is seeded. Value-keyed so that respawned
    // survivors in the same test run never match.
    if let Some(v) = std::env::var_os("WARP_JOIN_TEST_CRASH") {
        if session == init.session
            && init.session > 0
            && v.to_string_lossy() == init.proc_id.to_string()
        {
            std::process::exit(9);
        }
    }

    // Session > 0: wait for the coordinator's resume stream (other
    // peers may already be running and sending — buffer their frames).
    // The payload arrives as an ordered ResumeChunk sequence reassembled
    // here; the monolithic Resume frame is still honored for protocol
    // compatibility.
    let mut backlog: Vec<(u32, Frame)> = Vec::new();
    let restore = if session > 0 {
        let wait = Duration::from_millis(init.net.liveness_ms.saturating_mul(10))
            .max(Duration::from_secs(30));
        let resume_deadline = Instant::now() + wait;
        let mut chunks: Vec<u8> = Vec::new();
        let mut next_seq = 0u32;
        loop {
            if Instant::now() >= resume_deadline {
                return Err(format!(
                    "no Resume within {wait:?} of joining session {session}"
                ));
            }
            match mesh.recv_timeout(Duration::from_millis(50)) {
                Some(MeshEvent::Frame {
                    frame:
                        Frame::Resume {
                            session: s,
                            gvt,
                            payload,
                        },
                    ..
                }) => {
                    if s != session {
                        return Err(format!("Resume for session {s} inside session {session}"));
                    }
                    break Some((gvt, payload));
                }
                Some(MeshEvent::Frame {
                    frame:
                        Frame::ResumeChunk {
                            session: s,
                            gvt,
                            seq,
                            last,
                            payload,
                        },
                    ..
                }) => {
                    if s != session {
                        return Err(format!(
                            "ResumeChunk for session {s} inside session {session}"
                        ));
                    }
                    if seq != next_seq {
                        return Err(format!(
                            "ResumeChunk {seq} out of order in session {session} (expected {next_seq})"
                        ));
                    }
                    next_seq += 1;
                    chunks.extend_from_slice(&payload);
                    if last {
                        break Some((gvt, std::mem::take(&mut chunks)));
                    }
                }
                Some(MeshEvent::Frame { from, frame }) => backlog.push((from, frame)),
                Some(MeshEvent::PeerDown {
                    clean: false,
                    detail,
                    ..
                }) => {
                    mesh.abort();
                    return Ok(WorkerSessionEnd::PeerLost(detail));
                }
                Some(MeshEvent::PeerDown { .. }) | None => {}
            }
        }
    } else {
        None
    };

    // Seed this worker's LPs. Fresh builds on session 0; on a resume,
    // an LP whose runtime survived the lost session rolls back in place
    // to the horizon (no init, no replay), anything else is rebuilt by
    // replaying its committed log. Either way the regenerated frontier
    // (sends at or beyond the horizon) ships at LP-thread boot exactly
    // like init output would.
    let mut seeds: Vec<(u32, LpSeed)> = Vec::new();
    let ckpt_base = match restore {
        Some((horizon, payload)) => {
            let deltas = decode_resume(&payload).map_err(|e| format!("resume decode: {e}"))?;
            let mut logs = merge_logs(&deltas).map_err(|e| format!("resume merge: {e}"))?;
            for &lp in &my_lps {
                let log = logs.remove(&lp).unwrap_or_default();
                let mut frontier = Vec::new();
                let rt = match retained.remove(&lp) {
                    Some(mut rt) => {
                        rt.rollback_to_horizon(horizon, &mut frontier);
                        resume_stats.lps_rolled_back += 1;
                        rt
                    }
                    None => {
                        let mut rt = Box::new(spec.build_lp(LpId(lp)));
                        resume_stats.replayed_events +=
                            log.values().map(|evs| evs.len() as u64).sum::<u64>();
                        rt.restore_committed(log, horizon, &mut frontier);
                        resume_stats.lps_rebuilt += 1;
                        rt
                    }
                };
                seeds.push((lp, LpSeed::Restored { lp: rt, frontier }));
            }
            Some(horizon)
        }
        None => {
            for &lp in &my_lps {
                seeds.push((lp, LpSeed::Fresh));
            }
            init.recovery.then_some(VirtualTime::ZERO)
        }
    };
    // Anything still retained belongs to an LP that migrated away; the
    // next handback must come from *this* session or not at all — a
    // stale runtime may be missing history a newer horizon commits.
    retained.clear();

    // Local delivery channels for this process's LPs.
    let mut locals: Vec<Option<Sender<Packet>>> = (0..init.n_lps).map(|_| None).collect();
    let mut inboxes = Vec::new();
    for (lp, _) in &seeds {
        let (tx, rx) = mpsc::channel();
        locals[*lp as usize] = Some(tx);
        inboxes.push(rx);
    }
    let locals = Arc::new(locals);
    let mesh_tx = mesh.sender();
    let assign_arc = Arc::new(assign.clone());

    let handles: Vec<_> = seeds
        .into_iter()
        .zip(inboxes)
        .map(|((lp, seed), rx)| {
            let port = WorkerPort {
                lp,
                n_lps: init.n_lps,
                my_proc: init.proc_id,
                assign: Arc::clone(&assign_arc),
                locals: Arc::clone(&locals),
                mesh_tx: mesh_tx.clone(),
                rx,
                balance: init.balance,
                throttle: throttle.clone(),
            };
            let spec = spec.clone();
            std::thread::spawn(move || lp_thread(spec, port, seed, ckpt_base))
        })
        .collect();

    // Inbound router: mesh frames → local LP channels. Runs until the
    // LP threads finish, then hands the mesh back for the report.
    let stop = Arc::new(AtomicBool::new(false));
    let n_local = my_lps.len();
    let router = {
        let stop = Arc::clone(&stop);
        let locals = Arc::clone(&locals);
        let floor = Arc::clone(floor);
        let from_base = ckpt_base.unwrap_or(VirtualTime::ZERO);
        std::thread::spawn(move || {
            route_inbound(mesh, &locals, &stop, backlog, n_local, from_base, &floor)
        })
    };

    let mut outcomes: Vec<LpOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("LP thread panicked"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    let route_end = router.join().expect("router thread panicked");

    match route_end {
        RouteEnd::Lost { mesh, detail } => {
            mesh.abort();
            stash_retained(retained, outcomes);
            Ok(WorkerSessionEnd::PeerLost(detail))
        }
        RouteEnd::Rebalance(mesh) => {
            mesh.abort();
            stash_retained(retained, outcomes);
            Ok(WorkerSessionEnd::Rebalance)
        }
        RouteEnd::Retire { mesh, gvt } => {
            // Everything this worker owns below the barrier horizon is
            // already in the coordinator's chains; speculation above it
            // is discarded like any aborted session. Confirm the drain,
            // flush it with a clean close, and let the caller exit 0.
            mesh.send(0, Frame::DrainAck { gvt });
            mesh.shutdown();
            Ok(WorkerSessionEnd::Retire)
        }
        RouteEnd::Stopped(mesh) => {
            if outcomes.iter().any(|o| o.aborted) {
                // The abort raced GVT = ∞; treat the session as lost.
                mesh.abort();
                stash_retained(retained, outcomes);
                return Ok(WorkerSessionEnd::PeerLost("aborted mid-run".into()));
            }
            outcomes.sort_by_key(|o| o.summary.lp);
            // Harvest the links' on-the-wire aggregation gauges and
            // surface every SAAW window move as a control event, so the
            // wire-window trajectory lands in the run's telemetry next
            // to the modeled-time DyMA walk.
            let wire_agg = mesh.agg_stats();
            let agg_events: Vec<ControlEvent> = wire_agg
                .iter()
                .flat_map(|link| {
                    link.window_moves
                        .iter()
                        .map(|&(old_us, new_us)| ControlEvent {
                            gvt: None,
                            lp: init.proc_id,
                            object: link.peer,
                            lvt: None,
                            param: Param::AggWindow,
                            old: old_us as f64,
                            new: new_us as f64,
                            sampled_o: -1.0,
                        })
                })
                .collect();
            if !agg_events.is_empty() {
                let batch = TelemetryReport {
                    events: agg_events,
                    ..TelemetryReport::default()
                };
                if let Ok(json) = serde_json::to_vec(&batch) {
                    mesh.send(0, Frame::Telemetry(json));
                }
            }
            let report = WorkerReport {
                gvt_rounds: outcomes.iter().map(|o| o.gvt_rounds).max().unwrap_or(0),
                per_lp: outcomes.into_iter().map(|o| o.summary).collect(),
                resume: resume_stats.clone(),
                wire_agg,
            };
            let bytes = serde_json::to_vec(&report).map_err(|e| format!("report encode: {e}"))?;
            mesh.send(0, Frame::Report(bytes));
            mesh.shutdown();
            Ok(WorkerSessionEnd::Finished)
        }
    }
}

/// Keep the runtimes aborted LP threads handed back, keyed by LP, for
/// the next session's in-place rollback.
fn stash_retained(
    retained: &mut HashMap<u32, Box<warp_core::LpRuntime>>,
    outcomes: Vec<LpOutcome>,
) {
    for mut o in outcomes {
        if let Some(rt) = o.runtime.take() {
            retained.insert(o.summary.lp, rt);
        }
    }
}

/// What the router hands back.
enum RouteEnd {
    /// Told to stop (LP threads all finished).
    Stopped(Mesh),
    /// A peer was lost uncleanly; every local LP got `Packet::Abort`.
    Lost {
        /// The mesh, for the caller to slam shut.
        mesh: Mesh,
        /// What the failure detector observed.
        detail: String,
    },
    /// The coordinator announced a migration; every local LP got
    /// `Packet::Abort` and the session ends on purpose.
    Rebalance(Mesh),
    /// The coordinator retired this worker; every local LP got
    /// `Packet::Abort` and the caller must `DrainAck` and exit cleanly.
    Retire {
        /// The mesh, for the drain acknowledgement and clean close.
        mesh: Mesh,
        /// The barrier horizon announced in the `Retire` frame.
        gvt: VirtualTime,
    },
}

/// Dispatch inbound mesh traffic to local LP channels until told to
/// stop, fanning the checkpoint protocol out to the LP threads along
/// the way. On an unclean peer loss, aborts every local LP and returns.
fn route_inbound(
    mesh: Mesh,
    locals: &[Option<Sender<Packet>>],
    stop: &AtomicBool,
    backlog: Vec<(u32, Frame)>,
    n_local: usize,
    mut ckpt_from: VirtualTime,
    floor: &AtomicU64,
) -> RouteEnd {
    let deliver = |lp: u32, p: Packet| {
        if let Some(Some(tx)) = locals.get(lp as usize) {
            let _ = tx.send(p); // finished LPs simply miss stale traffic
        }
    };
    let fan_local = |p: &dyn Fn() -> Packet| {
        for tx in locals.iter().flatten() {
            let _ = tx.send(p());
        }
    };
    let handle = |frame: Frame, from: u32, ckpt_from: &mut VirtualTime| -> Result<(), String> {
        match frame {
            Frame::Data { msg, epoch, .. } => {
                deliver(msg.dst.0, Packet::Data { msg, epoch });
                Ok(())
            }
            Frame::Token { dst_lp, token } => {
                deliver(dst_lp, Packet::Token(token));
                Ok(())
            }
            Frame::GvtNews { dst_lp, gvt } => {
                deliver(dst_lp, Packet::GvtNews(gvt));
                Ok(())
            }
            Frame::SnapshotReq { ckpt, gvt } => {
                let (tx, rx) = mpsc::channel::<CkptPart>();
                fan_local(&|| Packet::Ckpt {
                    ckpt,
                    gvt,
                    reply: tx.clone(),
                });
                drop(tx);
                let from_vt = *ckpt_from;
                *ckpt_from = (*ckpt_from).max(gvt);
                let out = mesh.sender();
                std::thread::spawn(move || {
                    collect_ckpt(rx, out, ckpt, from_vt, gvt, n_local);
                });
                Ok(())
            }
            Frame::SnapshotAck { gvt, .. } => {
                // The coordinator journals the barrier *before* this
                // ack, so advancing the fossil floor here keeps the
                // invariant a `Reattach` relies on: floor ≤ every
                // horizon a successor coordinator can replay.
                floor.fetch_max(gvt.ticks(), Ordering::AcqRel);
                fan_local(&|| Packet::CkptAck(gvt));
                Ok(())
            }
            other => Err(format!("unexpected {other:?} from proc {from}")),
        }
    };

    for (from, frame) in backlog {
        if matches!(frame, Frame::Rebalance { .. }) {
            fan_local(&|| Packet::Abort);
            return RouteEnd::Rebalance(mesh);
        }
        if let Frame::Retire { gvt } = frame {
            fan_local(&|| Packet::Abort);
            return RouteEnd::Retire { mesh, gvt };
        }
        if let Err(detail) = handle(frame, from, &mut ckpt_from) {
            eprintln!(
                "warp-worker (proc {}): protocol violation: {detail}",
                mesh.proc_id()
            );
            fan_local(&|| Packet::Abort);
            return RouteEnd::Lost { mesh, detail };
        }
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            return RouteEnd::Stopped(mesh);
        }
        match mesh.recv_timeout(Duration::from_millis(20)) {
            Some(MeshEvent::Frame { from, frame }) => {
                if matches!(frame, Frame::Rebalance { .. }) {
                    // A planned session end: abort the LP threads exactly
                    // as on a peer loss, but report it as a migration.
                    fan_local(&|| Packet::Abort);
                    return RouteEnd::Rebalance(mesh);
                }
                if let Frame::Retire { gvt } = frame {
                    // A planned *final* session end for this process:
                    // abort the LP threads, then drain and exit.
                    fan_local(&|| Packet::Abort);
                    return RouteEnd::Retire { mesh, gvt };
                }
                if let Err(detail) = handle(frame, from, &mut ckpt_from) {
                    eprintln!(
                        "warp-worker (proc {}): protocol violation: {detail}",
                        mesh.proc_id()
                    );
                    fan_local(&|| Packet::Abort);
                    return RouteEnd::Lost { mesh, detail };
                }
            }
            Some(MeshEvent::PeerDown {
                peer,
                clean: false,
                detail,
            }) => {
                eprintln!(
                    "warp-worker (proc {}): lost proc {peer} ({detail}); discarding session",
                    mesh.proc_id()
                );
                fan_local(&|| Packet::Abort);
                return RouteEnd::Lost { mesh, detail };
            }
            // Clean goodbyes while LPs still run mean the peer finished
            // its share after GVT = ∞; per-link FIFO guarantees the ∞
            // news preceded the Bye, so nothing this process still
            // needs was lost.
            Some(MeshEvent::PeerDown { .. }) => {}
            None => {}
        }
    }
}

/// Gather one checkpoint's parts from the local LP threads and, when
/// complete, ship the encoded delta to the coordinator. An LP that
/// already shut down never answers (its reply sender is dropped), which
/// leaves the checkpoint incomplete — the coordinator simply never
/// commits it, and the run is terminating anyway.
fn collect_ckpt(
    rx: Receiver<CkptPart>,
    out: MeshSender,
    ckpt: u32,
    from: VirtualTime,
    gvt: VirtualTime,
    n_local: usize,
) {
    let mut parts: Vec<CkptPart> = rx.iter().filter(|p| p.ckpt == ckpt).collect();
    if parts.len() != n_local {
        return;
    }
    parts.sort_by_key(|p| p.lp);
    let deltas: Vec<LpDelta> = parts
        .into_iter()
        .map(|p| LpDelta {
            lp: p.lp,
            objects: p.objects,
        })
        .collect();
    let payload = encode_delta(from, gvt, &deltas);
    out.send(0, Frame::Snapshot { ckpt, gvt, payload });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_covers_all_lps() {
        for (n_lps, n_workers) in [(4u32, 2u32), (5, 2), (7, 3), (3, 3), (16, 4), (9, 4)] {
            let a = Assignment::contiguous(n_lps, n_workers).unwrap();
            let mut seen = Vec::new();
            for w in 1..=n_workers {
                for lp in a.lps_of(w) {
                    assert_eq!(a.proc_of(lp), w, "lp {lp} ({n_lps}/{n_workers})");
                    seen.push(lp);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..n_lps).collect::<Vec<_>>());
        }
    }

    #[test]
    fn assignment_rejects_degenerate_shapes() {
        assert!(Assignment::contiguous(4, 0).is_err());
        assert!(Assignment::contiguous(2, 3).is_err());
    }

    #[test]
    fn worker_init_round_trips_as_json() {
        let init = WorkerInit {
            proc_id: 2,
            n_procs: 3,
            n_lps: 8,
            session: 4,
            peers: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
            model: serde_json::json!("opaque"),
            net: NetTuning::default(),
            connect_ms: 10_000,
            recovery: true,
            assignment: vec![1, 1, 1, 2, 2, 1, 2, 2],
            balance: true,
            handicap_us: 250,
            handicap_events: 5_000,
            fault: Some(FaultPlan::new().crash(2, 1, 100, 0)),
            rejoin: Some(RejoinSpec {
                grace_ms: 15_000,
                admit_addr: "127.0.0.1:7".into(),
                admit_file: None,
            }),
        };
        let line = serde_json::to_string(&init).unwrap();
        let back: WorkerInit = serde_json::from_str(&line).unwrap();
        assert_eq!(back.proc_id, 2);
        assert_eq!(back.session, 4);
        assert_eq!(back.peers.len(), 2);
        assert_eq!(back.peers[1].1, "127.0.0.1:2");
        assert_eq!(back.model, init.model);
        assert_eq!(back.net.heartbeat_ms, 250);
        assert!(back.recovery);
        assert_eq!(back.assignment, init.assignment);
        assert!(back.balance);
        assert_eq!(back.handicap_us, 250);
        assert_eq!(back.handicap_events, 5_000);
        assert!(back.fault.is_some());
        let rejoin = back.rejoin.expect("rejoin spec survives the round trip");
        assert_eq!(rejoin.grace_ms, 15_000);
        assert_eq!(rejoin.admit_addr, "127.0.0.1:7");
        assert_eq!(rejoin.admit_file, None);
    }

    #[test]
    fn legacy_worker_init_defaults_the_balance_fields() {
        // A pre-migration init line (no assignment/balance/handicap)
        // must still parse: empty map = contiguous default, balancer off.
        let line = r#"{"proc_id":1,"n_procs":2,"n_lps":4,"peers":[[0,"127.0.0.1:1"]],
                       "model":null,"connect_ms":1000}"#;
        let back: WorkerInit = serde_json::from_str(line).unwrap();
        assert!(back.assignment.is_empty());
        assert!(!back.balance);
        assert_eq!(back.handicap_us, 0);
        assert_eq!(back.handicap_events, 0);
        assert!(back.rejoin.is_none(), "pre-failover init = no parking");
    }

    #[test]
    fn session_line_round_trips_as_json() {
        let sl = SessionLine {
            session: 3,
            peers: vec![(0, "127.0.0.1:9".into())],
            connect_ms: 5_000,
            assignment: vec![2, 1, 1, 2],
            n_procs: 3,
        };
        let line = serde_json::to_string(&sl).unwrap();
        let back: SessionLine = serde_json::from_str(&line).unwrap();
        assert_eq!(back.session, 3);
        assert_eq!(back.peers, sl.peers);
        assert_eq!(back.assignment, vec![2, 1, 1, 2]);
        assert_eq!(back.n_procs, 3);
        // Legacy line without an assignment or mesh size defaults to
        // "unchanged" for both.
        let legacy = r#"{"session":1,"peers":[[0,"127.0.0.1:9"]],"connect_ms":100}"#;
        let back: SessionLine = serde_json::from_str(legacy).unwrap();
        assert!(back.assignment.is_empty());
        assert_eq!(back.n_procs, 0);
    }

    #[test]
    fn elastic_without_recovery_is_rejected() {
        let mut cfg = DistConfig::new(
            2,
            PathBuf::from("/nonexistent/warp-worker"),
            serde_json::json!(null),
            4,
        );
        cfg.elastic.enabled = true;
        cfg.elastic.max_workers = 3;
        cfg.recovery.enabled = false;
        match run_coordinator(&cfg) {
            Err(DistError::InvalidConfig(m)) => assert!(m.contains("recovery"), "{m}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn elastic_bounds_must_bracket_the_initial_worker_count() {
        let mut cfg = DistConfig::new(
            1,
            PathBuf::from("/nonexistent/warp-worker"),
            serde_json::json!(null),
            4,
        );
        cfg.elastic.enabled = true;
        cfg.elastic.min_workers = 2;
        cfg.elastic.max_workers = 3;
        match run_coordinator(&cfg) {
            Err(DistError::InvalidConfig(m)) => assert!(m.contains("elastic bounds"), "{m}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn elastic_widens_the_legal_handicap_range() {
        // Proc 3 does not exist at start, but the cluster may grow to
        // hold it — a handicap naming it must pass validation (and the
        // run then fails on the missing binary, not the handicap).
        let mut cfg = DistConfig::new(
            2,
            PathBuf::from("/nonexistent/warp-worker"),
            serde_json::json!(null),
            6,
        );
        cfg.elastic.enabled = true;
        cfg.elastic.max_workers = 3;
        cfg.handicaps.push((3, 500));
        cfg.handicap_events.push((3, 1000));
        match run_coordinator(&cfg) {
            Err(DistError::Io(_)) => {}
            other => panic!("expected an I/O error, got {other:?}"),
        }
    }

    #[test]
    fn balance_without_recovery_is_rejected() {
        let mut cfg = DistConfig::new(
            1,
            PathBuf::from("/nonexistent/warp-worker"),
            serde_json::json!(null),
            2,
        );
        cfg.balance.enabled = true;
        cfg.recovery.enabled = false;
        match run_coordinator(&cfg) {
            Err(DistError::InvalidConfig(m)) => assert!(m.contains("recovery"), "{m}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_handicap_is_rejected() {
        let mut cfg = DistConfig::new(
            2,
            PathBuf::from("/nonexistent/warp-worker"),
            serde_json::json!(null),
            4,
        );
        cfg.handicaps.push((3, 500));
        match run_coordinator(&cfg) {
            Err(DistError::InvalidConfig(m)) => assert!(m.contains("handicap"), "{m}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn net_tuning_validation_catches_inconsistencies() {
        let ok = NetTuning::default();
        assert!(ok.validate().is_ok());
        let t = NetTuning {
            heartbeat_ms: 0,
            ..NetTuning::default()
        };
        assert!(t.validate().is_err());
        let t = NetTuning {
            liveness_ms: ok.heartbeat_ms,
            ..NetTuning::default()
        };
        assert!(t.validate().is_err());
        let t = NetTuning {
            connect_backoff_max_ms: ok.connect_backoff_start_ms - 1,
            ..NetTuning::default()
        };
        assert!(t.validate().is_err());
        let t = NetTuning {
            max_frame_bytes: 512,
            ..NetTuning::default()
        };
        assert!(t.validate().is_err(), "512 is below the 1024-byte floor");
    }

    #[test]
    fn frame_cap_resolves_zero_to_the_protocol_default() {
        let t = NetTuning::default();
        assert_eq!(t.frame_cap(), warp_net::frame::MAX_FRAME_BYTES);
        let t = NetTuning {
            max_frame_bytes: 65536,
            ..NetTuning::default()
        };
        assert!(t.validate().is_ok());
        assert_eq!(t.frame_cap(), 65536);
    }

    #[test]
    fn resume_chunks_obey_the_frame_cap() {
        // Default: 1 MiB chunks under the default cap.
        assert_eq!(
            resume_chunk_len(&RecoveryPolicy::default(), &NetTuning::default()),
            1 << 20
        );
        // An explicit chunk size is honored when it fits.
        let r = RecoveryPolicy {
            resume_chunk_bytes: 100,
            ..RecoveryPolicy::default()
        };
        assert_eq!(resume_chunk_len(&r, &NetTuning::default()), 100);
        // A small frame cap clamps the chunk below it, margin included.
        let n = NetTuning {
            max_frame_bytes: 2048,
            ..NetTuning::default()
        };
        assert_eq!(resume_chunk_len(&RecoveryPolicy::default(), &n), 2048 - 64);
    }

    #[test]
    fn legacy_recovery_policy_defaults_the_store_fields() {
        // A pre-store config line must parse with the store off and the
        // default chunking — wire compatibility with older coordinators.
        let raw =
            r#"{"enabled":true,"max_recoveries":3,"ckpt_min_interval_ms":100,"stall_budget_ms":0}"#;
        let p: RecoveryPolicy = serde_json::from_str(raw).unwrap();
        assert_eq!(p.store_dir, None);
        assert_eq!(p.compact_after, 0);
        assert_eq!(p.resume_chunk_bytes, 0);
        assert_eq!(p.rejoin_grace_ms, 0, "pre-failover policy = no parking");
        let raw = r#"{"heartbeat_ms":250,"liveness_ms":3000,"connect_backoff_start_ms":20,"connect_backoff_max_ms":500}"#;
        let t: NetTuning = serde_json::from_str(raw).unwrap();
        assert_eq!(t.max_frame_bytes, 0);
        assert_eq!(t.frame_cap(), warp_net::frame::MAX_FRAME_BYTES);
        assert_eq!(t.orphan_grace_ms, 0);
        // The unset orphan grace keeps the historical liveness-derived
        // wait; an explicit grace overrides it exactly.
        assert_eq!(t.orphan_wait(), Duration::from_secs(30));
        let t = NetTuning {
            orphan_grace_ms: 1_500,
            ..NetTuning::default()
        };
        assert_eq!(t.orphan_wait(), Duration::from_millis(1_500));
    }

    #[test]
    fn crash_hook_parses_barrier_and_legacy_forms() {
        assert_eq!(CrashHook::resolve(None, None), CrashHook::None);
        assert_eq!(
            CrashHook::resolve(None, Some("1")),
            CrashHook::FirstProgress,
            "any non-barrier value keeps the legacy first-Progress hook"
        );
        assert_eq!(
            CrashHook::resolve(None, Some("barriers:3")),
            CrashHook::AfterBarriers(3)
        );
        assert_eq!(
            CrashHook::resolve(None, Some("barriers:nope")),
            CrashHook::FirstProgress
        );
        let plan = FaultPlan::new().crash_coordinator_after(5);
        assert_eq!(
            CrashHook::resolve(Some(&plan), None),
            CrashHook::AfterBarriers(5)
        );
        // Two barrier counts merge to the earlier trigger; the legacy
        // form fires soonest and always wins.
        assert_eq!(
            CrashHook::resolve(Some(&plan), Some("barriers:2")),
            CrashHook::AfterBarriers(2)
        );
        assert_eq!(
            CrashHook::resolve(Some(&plan), Some("barriers:9")),
            CrashHook::AfterBarriers(5)
        );
        assert_eq!(
            CrashHook::resolve(Some(&plan), Some("now")),
            CrashHook::FirstProgress
        );
    }

    #[test]
    fn missing_worker_binary_is_a_clean_error() {
        let cfg = DistConfig::new(
            1,
            PathBuf::from("/nonexistent/warp-worker"),
            serde_json::json!(null),
            2,
        );
        match run_coordinator(&cfg) {
            Err(DistError::Io(_)) => {}
            other => panic!("expected an I/O error, got {other:?}"),
        }
    }
}
