//! The distributed executive: the kernel across OS *processes*.
//!
//! Topology: one **coordinator** (mesh process 0, no LPs — pure control
//! plane) plus `n_workers` **worker** processes, each owning a
//! contiguous block of the simulation's LPs. Every process joins a full
//! TCP mesh ([`warp_net::tcp`]); inside a worker, each of its LPs runs
//! the *same* `lp_thread` loop the threaded executive uses, plugged into
//! a [`WorkerPort`] that routes packets to co-resident LPs over local
//! channels and to remote LPs as [`Frame`]s over the mesh. The Mattern
//! GVT token circulates in global LP-id order exactly as in the threaded
//! executive — the token ring simply spans process boundaries now — and
//! GVT = ∞ shuts every LP down wherever it lives.
//!
//! Bootstrap protocol (coordinator side in [`run_coordinator`], worker
//! side in [`worker_main`]):
//!
//! 1. The coordinator binds a loopback listener and spawns each worker
//!    binary with piped stdio.
//! 2. Each worker binds its own ephemeral listener and prints a single
//!    `LISTEN <addr>` line on stdout.
//! 3. The coordinator sends each worker one line of JSON
//!    ([`WorkerInit`]) on stdin: mesh coordinates, every peer's address,
//!    and an *opaque* model description — `warp-exec` never learns how
//!    to build models; the worker binary supplies a closure that turns
//!    the model JSON into a [`SimulationSpec`].
//! 4. Everyone establishes the TCP mesh (workers dial lower ids, accept
//!    higher ones) and the simulation runs.
//! 5. Each worker serializes its per-LP summaries into a
//!    [`Frame::Report`], then closes with `Bye`. The coordinator merges
//!    the reports into one [`RunReport`].
//!
//! Failure behavior: a worker that dies (or goes half-open past the
//! liveness timeout) surfaces as an *unclean* `PeerDown`. The
//! coordinator then kills the remaining workers and returns
//! [`DistError::Worker`] — a clean error, never a hang. Workers that
//! observe an unclean peer exit with a nonzero status, because a Time
//! Warp run that lost a process cannot commit a correct history.

use crate::report::{LpSummary, RunReport};
use crate::spec::SimulationSpec;
use crate::threaded::{lp_thread, LpPort, Packet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use warp_core::stats::{CommStats, ObjectStats};
use warp_net::tcp::{bind_loopback, MeshEvent, MeshSender, TcpMesh, TcpMeshConfig};
use warp_net::Frame;

/// Mesh heartbeat cadence for distributed runs.
const HEARTBEAT: Duration = Duration::from_millis(250);
/// Mesh liveness timeout: a link silent this long is half-open.
const LIVENESS: Duration = Duration::from_secs(3);

/// Everything the coordinator needs to stage a distributed run.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Number of worker processes (each gets a contiguous LP block).
    pub n_workers: u32,
    /// Path to the worker binary to spawn.
    pub worker_bin: PathBuf,
    /// Opaque model description, forwarded verbatim to every worker's
    /// spec-builder. The coordinator never interprets it.
    pub model: serde_json::Value,
    /// Total LP count of the model — must match what the workers' spec
    /// builder produces, since both sides derive the LP→process
    /// assignment from it.
    pub n_lps: u32,
    /// Whole-run watchdog: bootstrap plus simulation plus teardown.
    pub timeout: Duration,
}

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistError {
    /// Spawning, piping, or mesh establishment failed.
    Io(io::Error),
    /// A worker died, went half-open, or exited wrongly.
    Worker {
        /// Mesh process id of the failed worker.
        proc_id: u32,
        /// Cause, as observed by the coordinator.
        detail: String,
    },
    /// A peer violated the frame protocol.
    Protocol(String),
    /// The watchdog expired.
    Timeout(String),
    /// The configuration cannot be staged (bad worker/LP counts, …).
    InvalidConfig(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "distributed run I/O failure: {e}"),
            DistError::Worker { proc_id, detail } => {
                write!(f, "worker (proc {proc_id}) failed: {detail}")
            }
            DistError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DistError::Timeout(m) => write!(f, "distributed run timed out: {m}"),
            DistError::InvalidConfig(m) => write!(f, "invalid distributed config: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}

/// Deterministic LP→process placement: contiguous blocks of
/// `ceil(n_lps / n_workers)` LPs, worker `w` (mesh proc `w`, 1-based)
/// owning block `w - 1`. Both sides compute this independently from
/// `(n_lps, n_workers)`, so it never travels on the wire.
#[derive(Clone, Copy, Debug)]
pub struct LpAssignment {
    n_lps: u32,
    per_worker: u32,
}

impl LpAssignment {
    /// Build the assignment; requires at least one LP per worker.
    pub fn new(n_lps: u32, n_workers: u32) -> Result<Self, DistError> {
        if n_workers == 0 {
            return Err(DistError::InvalidConfig("need at least one worker".into()));
        }
        if n_lps < n_workers {
            return Err(DistError::InvalidConfig(format!(
                "{n_lps} LPs cannot cover {n_workers} workers (every worker needs ≥ 1 LP)"
            )));
        }
        Ok(LpAssignment {
            n_lps,
            per_worker: n_lps.div_ceil(n_workers),
        })
    }

    /// Mesh process id owning a global LP.
    pub fn proc_of(&self, lp: u32) -> u32 {
        debug_assert!(lp < self.n_lps);
        1 + lp / self.per_worker
    }

    /// The contiguous global LP range owned by a worker process.
    pub fn lps_of(&self, proc_id: u32) -> std::ops::Range<u32> {
        debug_assert!(proc_id >= 1);
        let start = (proc_id - 1) * self.per_worker;
        start.min(self.n_lps)..(start + self.per_worker).min(self.n_lps)
    }
}

/// The one line of JSON a worker reads on stdin.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerInit {
    /// This worker's mesh process id (1-based; 0 is the coordinator).
    pub proc_id: u32,
    /// Total mesh size (workers + coordinator).
    pub n_procs: u32,
    /// Total LP count (drives the LP→process assignment).
    pub n_lps: u32,
    /// Every process's listen address, as `(proc_id, addr)` pairs.
    pub peers: Vec<(u32, String)>,
    /// Opaque model description for the worker's spec builder.
    pub model: serde_json::Value,
    /// Mesh heartbeat cadence, milliseconds.
    pub heartbeat_ms: u64,
    /// Mesh liveness timeout, milliseconds.
    pub liveness_ms: u64,
    /// Mesh establishment budget, milliseconds.
    pub connect_ms: u64,
}

/// A worker's end-of-run payload (travels as `Frame::Report` bytes).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct WorkerReport {
    gvt_rounds: u64,
    per_lp: Vec<LpSummary>,
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Stage and run a distributed simulation, returning the merged report.
///
/// Spawns `cfg.n_workers` copies of `cfg.worker_bin`, walks them through
/// the bootstrap protocol, then waits for every worker's report and
/// clean goodbye. Any worker failure kills the remaining workers and
/// returns an error; the watchdog in `cfg.timeout` bounds the whole run.
pub fn run_coordinator(cfg: &DistConfig) -> Result<RunReport, DistError> {
    let start = Instant::now();
    let deadline = start + cfg.timeout;
    LpAssignment::new(cfg.n_lps, cfg.n_workers)?; // validate early
    let n_procs = cfg.n_workers + 1;

    let listener = bind_loopback()?;
    let coord_addr = listener.local_addr()?;

    let mut children: Vec<Child> = Vec::new();
    let spawn_result = (|| -> Result<Vec<(u32, String)>, DistError> {
        for _ in 0..cfg.n_workers {
            children.push(
                Command::new(&cfg.worker_bin)
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()?,
            );
        }

        // Collect every worker's LISTEN line, then tell each one about
        // the whole cluster.
        let mut peers: Vec<(u32, String)> = vec![(0, coord_addr.to_string())];
        for (i, child) in children.iter_mut().enumerate() {
            let proc_id = i as u32 + 1;
            let addr = read_listen_line(child, proc_id, deadline)?;
            peers.push((proc_id, addr));
        }
        for (i, child) in children.iter_mut().enumerate() {
            let init = WorkerInit {
                proc_id: i as u32 + 1,
                n_procs,
                n_lps: cfg.n_lps,
                peers: peers.clone(),
                model: cfg.model.clone(),
                heartbeat_ms: HEARTBEAT.as_millis() as u64,
                liveness_ms: LIVENESS.as_millis() as u64,
                connect_ms: remaining_ms(deadline),
            };
            let line = serde_json::to_string(&init)
                .map_err(|e| DistError::Protocol(format!("init encode: {e}")))?;
            let stdin = child.stdin.as_mut().expect("worker stdin piped");
            stdin
                .write_all(line.as_bytes())
                .and_then(|_| stdin.write_all(b"\n"))
                .map_err(|e| DistError::Worker {
                    proc_id: i as u32 + 1,
                    detail: format!("died before reading its init line: {e}"),
                })?;
        }
        Ok(peers)
    })();
    if let Err(e) = spawn_result {
        kill_all(&mut children);
        return Err(e);
    }

    let mesh_cfg = TcpMeshConfig {
        proc_id: 0,
        n_procs,
        heartbeat_interval: HEARTBEAT,
        liveness_timeout: LIVENESS,
        connect_timeout: Duration::from_millis(remaining_ms(deadline)),
    };
    let mesh = match TcpMesh::establish(mesh_cfg, listener, &[]) {
        Ok(m) => m,
        Err(e) => {
            kill_all(&mut children);
            return Err(DistError::Io(e));
        }
    };

    match coordinate(&mesh, cfg.n_workers, deadline) {
        Ok(reports) => {
            mesh.shutdown();
            for (i, child) in children.iter_mut().enumerate() {
                match child.wait() {
                    Ok(status) if status.success() => {}
                    Ok(status) => {
                        kill_all(&mut children);
                        return Err(DistError::Worker {
                            proc_id: i as u32 + 1,
                            detail: format!("exited with {status} after reporting"),
                        });
                    }
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(DistError::Io(e));
                    }
                }
            }
            Ok(merge_reports(reports, start.elapsed().as_secs_f64()))
        }
        Err(e) => {
            mesh.abort();
            kill_all(&mut children);
            Err(e)
        }
    }
}

/// Pump the mesh until every worker has reported and said goodbye.
fn coordinate(
    mesh: &TcpMesh,
    n_workers: u32,
    deadline: Instant,
) -> Result<Vec<WorkerReport>, DistError> {
    let mut reports: Vec<Option<WorkerReport>> = (0..n_workers).map(|_| None).collect();
    let mut closed = vec![false; n_workers as usize];
    loop {
        if reports.iter().all(Option::is_some) && closed.iter().all(|&c| c) {
            return Ok(reports.into_iter().map(Option::unwrap).collect());
        }
        if Instant::now() >= deadline {
            let missing: Vec<u32> = reports
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_none())
                .map(|(i, _)| i as u32 + 1)
                .collect();
            return Err(DistError::Timeout(format!(
                "still waiting on workers {missing:?} at the deadline"
            )));
        }
        match mesh.recv_timeout(Duration::from_millis(50)) {
            Some(MeshEvent::Frame { from, frame }) => match frame {
                Frame::Report(bytes) => {
                    let report: WorkerReport = serde_json::from_slice(&bytes).map_err(|e| {
                        DistError::Protocol(format!("bad report from proc {from}: {e}"))
                    })?;
                    reports[from as usize - 1] = Some(report);
                }
                other => {
                    return Err(DistError::Protocol(format!(
                        "coordinator hosts no LPs but received {other:?} from proc {from}"
                    )));
                }
            },
            Some(MeshEvent::PeerDown {
                peer,
                clean,
                detail,
            }) => {
                if clean && reports[peer as usize - 1].is_some() {
                    closed[peer as usize - 1] = true;
                } else {
                    return Err(DistError::Worker {
                        proc_id: peer,
                        detail: if clean {
                            "closed cleanly without sending its report".into()
                        } else {
                            detail
                        },
                    });
                }
            }
            None => {}
        }
    }
}

fn merge_reports(reports: Vec<WorkerReport>, wall: f64) -> RunReport {
    let gvt_rounds = reports.iter().map(|r| r.gvt_rounds).max().unwrap_or(0);
    let mut per_lp: Vec<LpSummary> = reports.into_iter().flat_map(|r| r.per_lp).collect();
    per_lp.sort_by_key(|s| s.lp);

    let mut kernel = ObjectStats::default();
    let mut comm = CommStats::default();
    let mut committed = 0u64;
    for s in &per_lp {
        committed += s.kernel.net_executed();
        kernel.merge(&s.kernel);
        comm.merge(&s.comm);
    }

    RunReport {
        timeline: Vec::new(),
        executive: "distributed".into(),
        completion_seconds: wall,
        wall_seconds: wall,
        committed_events: committed,
        events_per_second: if wall > 0.0 {
            committed as f64 / wall
        } else {
            0.0
        },
        gvt_rounds,
        kernel,
        comm,
        per_lp,
    }
}

fn read_listen_line(
    child: &mut Child,
    proc_id: u32,
    deadline: Instant,
) -> Result<String, DistError> {
    let stdout = child.stdout.take().expect("worker stdout piped");
    let (tx, rx) = mpsc::channel();
    // A thread per child: read_line has no timeout of its own. On the
    // failure path the thread unblocks at worker EOF (we kill it).
    thread_spawn_reader(stdout, tx);
    match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
        Ok(Ok(line)) => {
            let addr = line
                .strip_prefix("LISTEN ")
                .ok_or_else(|| DistError::Worker {
                    proc_id,
                    detail: format!("expected a LISTEN line on stdout, got {line:?}"),
                })?;
            Ok(addr.trim().to_string())
        }
        Ok(Err(detail)) => Err(DistError::Worker { proc_id, detail }),
        Err(_) => Err(DistError::Timeout(format!(
            "worker (proc {proc_id}) never announced its listen address"
        ))),
    }
}

fn thread_spawn_reader(stdout: std::process::ChildStdout, tx: Sender<Result<String, String>>) {
    std::thread::spawn(move || {
        let mut line = String::new();
        let res = match BufReader::new(stdout).read_line(&mut line) {
            Ok(0) => Err("exited before announcing its listen address".into()),
            Ok(_) => Ok(line.trim().to_string()),
            Err(e) => Err(format!("stdout read failed: {e}")),
        };
        let _ = tx.send(res);
    });
}

fn remaining_ms(deadline: Instant) -> u64 {
    deadline
        .saturating_duration_since(Instant::now())
        .as_millis() as u64
}

fn kill_all(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// An LP's transport inside a worker process: packets for co-resident
/// LPs go over local channels, everything else becomes a frame on the
/// TCP mesh addressed to the owning process.
struct WorkerPort {
    lp: u32,
    n_lps: u32,
    my_proc: u32,
    assign: LpAssignment,
    locals: Arc<Vec<Option<Sender<Packet>>>>,
    mesh_tx: MeshSender,
    rx: Receiver<Packet>,
}

impl LpPort for WorkerPort {
    fn id(&self) -> usize {
        self.lp as usize
    }
    fn n_total(&self) -> usize {
        self.n_lps as usize
    }
    fn send(&self, to: usize, p: Packet) {
        if self.assign.proc_of(to as u32) == self.my_proc {
            if let Some(Some(tx)) = self.locals.get(to) {
                // A send to an LP that already shut down is ignorable by
                // construction (it can only concern committed history).
                let _ = tx.send(p);
            }
        } else {
            let frame = match p {
                Packet::Data { msg, epoch } => Frame::Data { epoch, msg },
                Packet::Token(token) => Frame::Token {
                    dst_lp: to as u32,
                    token,
                },
                Packet::GvtNews(gvt) => Frame::GvtNews {
                    dst_lp: to as u32,
                    gvt,
                },
            };
            self.mesh_tx.send(self.assign.proc_of(to as u32), frame);
        }
    }
    fn try_recv(&self) -> Option<Packet> {
        self.rx.try_recv().ok()
    }
    fn recv_timeout(&self, timeout: Duration) -> Option<Packet> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Entry point for a worker binary: speak the bootstrap protocol on
/// stdio, then run this process's share of the simulation.
///
/// `build` turns the coordinator's opaque model JSON into the
/// [`SimulationSpec`] — that is the only model knowledge in the whole
/// distributed machinery, and it lives in the binary, not this crate.
pub fn worker_main(
    build: &dyn Fn(&serde_json::Value) -> Result<SimulationSpec, String>,
) -> Result<(), String> {
    let listener = bind_loopback().map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!("LISTEN {addr}");
    io::stdout().flush().map_err(|e| format!("stdout: {e}"))?;

    let mut line = String::new();
    io::stdin()
        .read_line(&mut line)
        .map_err(|e| format!("reading init: {e}"))?;
    let init: WorkerInit = serde_json::from_str(&line).map_err(|e| format!("parsing init: {e}"))?;

    let spec = build(&init.model)?;
    let n_lps = spec.partition.n_lps() as u32;
    if n_lps != init.n_lps {
        return Err(format!(
            "coordinator expects {} LPs but the model builds {n_lps}",
            init.n_lps
        ));
    }
    run_worker(&init, spec, listener)
}

/// The worker's life after bootstrap: establish the mesh, run the local
/// LP threads, report, say goodbye. Exits the process (nonzero) if a
/// peer is lost mid-run — without every process, the run cannot commit
/// a correct history, and a prompt exit is what lets the peers' own
/// failure detectors fire.
pub fn run_worker(
    init: &WorkerInit,
    spec: SimulationSpec,
    listener: std::net::TcpListener,
) -> Result<(), String> {
    let assign = LpAssignment::new(init.n_lps, init.n_procs - 1).map_err(|e| e.to_string())?;
    let my_lps = assign.lps_of(init.proc_id);

    let peer_addrs: Vec<(u32, SocketAddr)> = init
        .peers
        .iter()
        .filter(|(id, _)| *id < init.proc_id)
        .map(|(id, addr)| {
            addr.parse()
                .map(|a| (*id, a))
                .map_err(|e| format!("bad peer address {addr:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;

    let mesh_cfg = TcpMeshConfig {
        proc_id: init.proc_id,
        n_procs: init.n_procs,
        heartbeat_interval: Duration::from_millis(init.heartbeat_ms.max(10)),
        liveness_timeout: Duration::from_millis(init.liveness_ms.max(100)),
        connect_timeout: Duration::from_millis(init.connect_ms.max(100)),
    };
    let mesh = TcpMesh::establish(mesh_cfg, listener, &peer_addrs)
        .map_err(|e| format!("mesh establishment: {e}"))?;

    // Test hook: die like a killed worker — no Bye, no report — right
    // after joining the mesh, so failure-detection paths can be
    // exercised end-to-end with the real binary.
    if std::env::var_os("WARP_WORKER_TEST_CRASH").is_some() {
        std::process::exit(9);
    }

    // Local delivery channels for this process's LPs.
    let mut locals: Vec<Option<Sender<Packet>>> = (0..init.n_lps).map(|_| None).collect();
    let mut inboxes = Vec::new();
    for lp in my_lps.clone() {
        let (tx, rx) = mpsc::channel();
        locals[lp as usize] = Some(tx);
        inboxes.push((lp, rx));
    }
    let locals = Arc::new(locals);
    let mesh_tx = mesh.sender();

    let handles: Vec<_> = inboxes
        .into_iter()
        .map(|(lp, rx)| {
            let port = WorkerPort {
                lp,
                n_lps: init.n_lps,
                my_proc: init.proc_id,
                assign,
                locals: Arc::clone(&locals),
                mesh_tx: mesh_tx.clone(),
                rx,
            };
            let spec = spec.clone();
            std::thread::spawn(move || lp_thread(spec, port))
        })
        .collect();

    // Inbound router: mesh frames → local LP channels. Runs until the
    // LP threads finish, then hands the mesh back for the report.
    let stop = Arc::new(AtomicBool::new(false));
    let router = {
        let stop = Arc::clone(&stop);
        let locals = Arc::clone(&locals);
        std::thread::spawn(move || route_inbound(mesh, &locals, &stop))
    };

    let mut results: Vec<(LpSummary, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("LP thread panicked"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    let mesh = router.join().expect("router thread panicked");

    results.sort_by_key(|(s, _)| s.lp);
    let report = WorkerReport {
        gvt_rounds: results.iter().map(|(_, r)| *r).max().unwrap_or(0),
        per_lp: results.into_iter().map(|(s, _)| s).collect(),
    };
    let bytes = serde_json::to_vec(&report).map_err(|e| format!("report encode: {e}"))?;
    mesh.send(0, Frame::Report(bytes));
    mesh.shutdown();
    Ok(())
}

/// Dispatch inbound mesh traffic to local LP channels until told to
/// stop. Terminates the whole process if a peer is lost uncleanly.
fn route_inbound(mesh: TcpMesh, locals: &[Option<Sender<Packet>>], stop: &AtomicBool) -> TcpMesh {
    let deliver = |lp: u32, p: Packet| {
        if let Some(Some(tx)) = locals.get(lp as usize) {
            let _ = tx.send(p); // finished LPs simply miss stale traffic
        }
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            return mesh;
        }
        match mesh.recv_timeout(Duration::from_millis(20)) {
            Some(MeshEvent::Frame { from, frame }) => match frame {
                Frame::Data { epoch, msg } => {
                    deliver(msg.dst.0, Packet::Data { msg, epoch });
                }
                Frame::Token { dst_lp, token } => deliver(dst_lp, Packet::Token(token)),
                Frame::GvtNews { dst_lp, gvt } => deliver(dst_lp, Packet::GvtNews(gvt)),
                other => {
                    eprintln!(
                        "warp-worker (proc {}): protocol violation from proc {from}: {other:?}",
                        mesh.proc_id()
                    );
                    std::process::exit(3);
                }
            },
            Some(MeshEvent::PeerDown {
                peer,
                clean: false,
                detail,
            }) => {
                eprintln!(
                    "warp-worker (proc {}): lost proc {peer} ({detail}); aborting",
                    mesh.proc_id()
                );
                std::process::exit(3);
            }
            // Clean goodbyes while LPs still run mean the peer finished
            // its share after GVT = ∞; per-link FIFO guarantees the ∞
            // news preceded the Bye, so nothing this process still
            // needs was lost.
            Some(MeshEvent::PeerDown { .. }) => {}
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_covers_all_lps_contiguously() {
        for (n_lps, n_workers) in [(4u32, 2u32), (5, 2), (7, 3), (3, 3), (16, 4), (9, 4)] {
            let a = LpAssignment::new(n_lps, n_workers).unwrap();
            let mut seen = Vec::new();
            for w in 1..=n_workers {
                let r = a.lps_of(w);
                for lp in r {
                    assert_eq!(a.proc_of(lp), w, "lp {lp} ({n_lps}/{n_workers})");
                    seen.push(lp);
                }
            }
            assert_eq!(seen, (0..n_lps).collect::<Vec<_>>());
        }
    }

    #[test]
    fn assignment_rejects_degenerate_shapes() {
        assert!(LpAssignment::new(4, 0).is_err());
        assert!(LpAssignment::new(2, 3).is_err());
    }

    #[test]
    fn worker_init_round_trips_as_json() {
        let init = WorkerInit {
            proc_id: 2,
            n_procs: 3,
            n_lps: 8,
            peers: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
            model: serde_json::json!("opaque"),
            heartbeat_ms: 250,
            liveness_ms: 3000,
            connect_ms: 10_000,
        };
        let line = serde_json::to_string(&init).unwrap();
        let back: WorkerInit = serde_json::from_str(&line).unwrap();
        assert_eq!(back.proc_id, 2);
        assert_eq!(back.peers.len(), 2);
        assert_eq!(back.peers[1].1, "127.0.0.1:2");
        assert_eq!(back.model, init.model);
    }

    #[test]
    fn missing_worker_binary_is_a_clean_error() {
        let cfg = DistConfig {
            n_workers: 1,
            worker_bin: PathBuf::from("/nonexistent/warp-worker"),
            model: serde_json::json!(null),
            n_lps: 2,
            timeout: Duration::from_secs(5),
        };
        match run_coordinator(&cfg) {
            Err(DistError::Io(_)) => {}
            other => panic!("expected an I/O error, got {other:?}"),
        }
    }
}
