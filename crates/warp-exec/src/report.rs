//! Run reports: the measured output of an executive.

use serde::{Deserialize, Serialize};
use warp_core::stats::{CommStats, ObjectStats};
use warp_telemetry::TelemetryReport;

/// Per-object summary (final configuration and trace digest).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObjectSummary {
    /// Object id.
    pub id: u32,
    /// Model-provided name.
    pub name: String,
    /// Cancellation strategy in force at termination.
    pub final_mode: String,
    /// Checkpoint interval in force at termination.
    pub final_chi: u32,
    /// Committed events executed by this object.
    pub committed: u64,
    /// Full kernel statistics for this object.
    pub stats: ObjectStats,
    /// Committed-history digest (only when trace collection was on).
    pub trace_digest: Option<u64>,
}

/// Per-LP summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LpSummary {
    /// LP id.
    pub lp: u32,
    /// Merged kernel statistics over the LP's objects.
    pub kernel: ObjectStats,
    /// Communication statistics of the LP's aggregation layer.
    pub comm: CommStats,
    /// Per-object details.
    pub objects: Vec<ObjectSummary>,
}

/// One sample of the cluster's progress, taken at each GVT round when
/// timeline collection is enabled: the raw material of a space-time
/// diagram (optimism fronts vs. the commit horizon).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Modeled wall time of the sample (seconds).
    pub at: f64,
    /// GVT at the sample (`None` once infinite).
    pub gvt: Option<u64>,
    /// Per-LP optimism front: the largest object LVT in each LP.
    pub lp_fronts: Vec<u64>,
    /// Cumulative rollbacks at the sample.
    pub rollbacks: u64,
    /// Retained history items at the sample (memory pressure).
    pub retained: u64,
}

/// One LP move inside a [`MigrationRecord`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MigrationMove {
    /// The migrated LP.
    pub lp: u32,
    /// Worker the LP left.
    pub from: u32,
    /// Worker the LP landed on.
    pub to: u32,
}

/// One on-line reconfiguration of the LP↔worker assignment performed by
/// the distributed executive's load balancer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// GVT at which the migration barrier committed (`None` if the
    /// horizon was still at virtual time zero).
    pub gvt: Option<u64>,
    /// The imbalance index that triggered the move.
    pub imbalance: f64,
    /// The LPs that changed owner.
    pub moves: Vec<MigrationMove>,
}

/// One elastic membership change performed by the distributed
/// executive's elastic controller (or its recovery fallback).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleRecord {
    /// GVT at which the scale barrier committed (`None` if the horizon
    /// was still at virtual time zero).
    pub gvt: Option<u64>,
    /// `"out"` (worker added), `"in"` (worker retired), or
    /// `"fallback"` (a scale-out undone because the newcomer died
    /// before proving itself; charged to the recovery budget).
    pub direction: String,
    /// Worker count before the change.
    pub from_workers: u32,
    /// Worker count after the change.
    pub to_workers: u32,
    /// The pressure index that triggered the scale (`-1` for a
    /// fallback).
    pub pressure: f64,
    /// The LPs that changed owner across the membership change.
    pub moves: Vec<MigrationMove>,
}

/// Resume and durable-store accounting for distributed runs. All zero
/// for the in-process executives and for fault-free distributed runs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumeStats {
    /// Total resume payload bytes the coordinator streamed to workers
    /// across all recoveries (before chunking overhead).
    pub resume_bytes: u64,
    /// `ResumeChunk` frames sent. More than one per worker per recovery
    /// means a chain outgrew the configured chunk size.
    pub resume_chunks: u64,
    /// Delta-chain compactions the checkpoint store performed.
    pub compactions: u64,
    /// Delta bytes written to the on-disk segment store (appends and
    /// compaction/migration rewrites; 0 when the store is off).
    pub store_spilled_bytes: u64,
    /// LPs re-seeded by a full rebuild: object init plus replay of every
    /// committed event below the restore horizon.
    pub lps_rebuilt: u64,
    /// LPs recovered by in-place incremental rollback on a surviving
    /// worker — no replay of committed history at all.
    pub lps_rolled_back: u64,
    /// Committed events replayed during full rebuilds: the work the
    /// incremental path avoids.
    pub replayed_events: u64,
    /// Parked workers a restarted coordinator re-adopted via the
    /// protocol `Reattach` handshake instead of respawning.
    #[serde(default)]
    pub reattached: u64,
}

impl ResumeStats {
    /// Accumulate another worker's (or session's) counters.
    pub fn merge(&mut self, other: &ResumeStats) {
        self.resume_bytes += other.resume_bytes;
        self.resume_chunks += other.resume_chunks;
        self.compactions += other.compactions;
        self.store_spilled_bytes += other.store_spilled_bytes;
        self.lps_rebuilt += other.lps_rebuilt;
        self.lps_rolled_back += other.lps_rolled_back;
        self.replayed_events += other.replayed_events;
        self.reattached += other.reattached;
    }
}

/// The result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Which executive produced this ("sequential", "virtual", "threaded").
    pub executive: String,
    /// The run's *execution time*: modeled seconds for the virtual
    /// cluster (max node clock at completion), wall seconds otherwise.
    pub completion_seconds: f64,
    /// Wall-clock seconds the run actually took on this machine.
    pub wall_seconds: f64,
    /// Events committed across all objects.
    pub committed_events: u64,
    /// Committed events per completion second — the paper's throughput
    /// metric (11,300 ev/s for SMMP, 10,917 ev/s for RAID, §8).
    pub events_per_second: f64,
    /// GVT rounds performed.
    pub gvt_rounds: u64,
    /// Merged kernel statistics.
    pub kernel: ObjectStats,
    /// Merged communication statistics.
    pub comm: CommStats,
    /// Per-LP breakdown.
    pub per_lp: Vec<LpSummary>,
    /// Progress samples (empty unless timeline collection was enabled).
    #[serde(default)]
    pub timeline: Vec<TimelineSample>,
    /// Checkpoint recoveries the distributed executive performed to
    /// finish the run (0 everywhere else, and on a fault-free run).
    #[serde(default)]
    pub recoveries: u64,
    /// LP migrations the distributed load balancer performed (empty
    /// everywhere else, and when balancing was off or never triggered).
    #[serde(default)]
    pub migrations: Vec<MigrationRecord>,
    /// Elastic membership changes the distributed executive performed
    /// (empty everywhere else, and when elasticity was off or never
    /// triggered).
    #[serde(default)]
    pub scales: Vec<ScaleRecord>,
    /// The merged observation record — metric series and the control
    /// trajectory (`None` unless the spec enabled telemetry).
    #[serde(default)]
    pub telemetry: Option<TelemetryReport>,
    /// Per-link on-the-wire aggregation gauges from the distributed
    /// data plane, one entry per (worker, peer) link (empty when wire
    /// aggregation was off or the executive has no wire).
    #[serde(default)]
    pub wire_agg: Vec<warp_net::LinkAggStats>,
    /// Resume and checkpoint-store accounting (all zero outside the
    /// distributed executive). Kept last so legacy reports parse.
    #[serde(default)]
    pub resume: ResumeStats,
}

impl RunReport {
    /// Merged rollback fraction: rolled-back / executed.
    pub fn rollback_fraction(&self) -> f64 {
        if self.kernel.executed == 0 {
            0.0
        } else {
            self.kernel.rolled_back as f64 / self.kernel.executed as f64
        }
    }

    /// Committed-trace digests keyed by object id (empty when trace
    /// collection was off).
    pub fn trace_digests(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .per_lp
            .iter()
            .flat_map(|lp| lp.objects.iter())
            .filter_map(|o| o.trace_digest.map(|d| (o.id, d)))
            .collect();
        v.sort_unstable();
        v
    }

    /// One-line adaptation summary: where the controllers ended up.
    /// Final χ statistics and the cancellation-mode census come from the
    /// per-object summaries; the mean DyMA window needs telemetry (`-`
    /// without it, or when aggregation never adapted).
    pub fn adaptation_summary(&self) -> String {
        let objects: Vec<&ObjectSummary> = self
            .per_lp
            .iter()
            .flat_map(|lp| lp.objects.iter())
            .collect();
        let (chi, census) = if objects.is_empty() {
            ("-".into(), "no objects".into())
        } else {
            let chis: Vec<u32> = objects.iter().map(|o| o.final_chi).collect();
            let mean = chis.iter().map(|&c| c as u64).sum::<u64>() as f64 / chis.len() as f64;
            let lazy = objects.iter().filter(|o| o.final_mode == "Lazy").count();
            (
                format!(
                    "{}..{} (mean {mean:.2})",
                    chis.iter().min().unwrap(),
                    chis.iter().max().unwrap()
                ),
                format!("{lazy} lazy / {} aggressive", objects.len() - lazy),
            )
        };
        let window = self
            .telemetry
            .as_ref()
            .and_then(|t| t.mean_dyma_window())
            .map(|w| format!("{:.3}ms", w * 1e3))
            .unwrap_or_else(|| "-".into());
        let migrations = if self.migrations.is_empty() {
            "none".into()
        } else {
            let detail: Vec<String> = self
                .migrations
                .iter()
                .map(|m| {
                    let gvt = m.gvt.map(|g| g.to_string()).unwrap_or_else(|| "-".into());
                    let moves: Vec<String> = m
                        .moves
                        .iter()
                        .map(|mv| format!("lp{} w{}→w{}", mv.lp, mv.from, mv.to))
                        .collect();
                    format!("gvt {gvt}: {}", moves.join(", "))
                })
                .collect();
            format!("{} ({})", self.migrations.len(), detail.join("; "))
        };
        let scales = if self.scales.is_empty() {
            "none".into()
        } else {
            let detail: Vec<String> = self
                .scales
                .iter()
                .map(|s| {
                    let gvt = s.gvt.map(|g| g.to_string()).unwrap_or_else(|| "-".into());
                    format!(
                        "gvt {gvt}: {} {}→{} workers",
                        s.direction, s.from_workers, s.to_workers
                    )
                })
                .collect();
            format!("{} ({})", self.scales.len(), detail.join("; "))
        };
        format!(
            "adaptation: final chi {chi}, modes {census}, mean DyMA window {window}, migrations {migrations}, scales {scales}"
        )
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<10} committed={:<9} T={:>9.4}s ({:>8.0} ev/s) rollbacks={} ({:.1}% rolled) phys_msgs={} (aggr {:.2}x)",
            self.executive,
            self.committed_events,
            self.completion_seconds,
            self.events_per_second,
            self.kernel.rollbacks(),
            100.0 * self.rollback_fraction(),
            self.comm.phys_sent,
            self.comm.aggregation_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            executive: "virtual".into(),
            completion_seconds: 2.0,
            wall_seconds: 0.5,
            committed_events: 1000,
            events_per_second: 500.0,
            gvt_rounds: 3,
            kernel: ObjectStats {
                executed: 1100,
                rolled_back: 100,
                ..Default::default()
            },
            comm: CommStats {
                events_offered: 50,
                phys_sent: 10,
                ..Default::default()
            },
            timeline: Vec::new(),
            recoveries: 0,
            migrations: Vec::new(),
            scales: Vec::new(),
            telemetry: None,
            wire_agg: Vec::new(),
            resume: ResumeStats::default(),
            per_lp: vec![LpSummary {
                lp: 0,
                kernel: ObjectStats::default(),
                comm: CommStats::default(),
                objects: vec![ObjectSummary {
                    id: 7,
                    name: "disk".into(),
                    final_mode: "Lazy".into(),
                    final_chi: 4,
                    committed: 10,
                    stats: ObjectStats::default(),
                    trace_digest: Some(42),
                }],
            }],
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.rollback_fraction() - 100.0 / 1100.0).abs() < 1e-12);
        assert_eq!(r.trace_digests(), vec![(7, 42)]);
        let line = r.summary_line();
        assert!(line.contains("virtual"));
        assert!(line.contains("1000"));
        let adapt = r.adaptation_summary();
        assert!(adapt.contains("1 lazy / 0 aggressive"), "{adapt}");
        assert!(adapt.contains("4..4"), "{adapt}");
        assert!(adapt.contains("window -"), "no telemetry, no window");
        assert!(adapt.contains("migrations none"), "{adapt}");
    }

    #[test]
    fn migrations_show_up_in_the_adaptation_summary() {
        let mut r = report();
        r.migrations.push(MigrationRecord {
            gvt: Some(144),
            imbalance: 0.8,
            moves: vec![MigrationMove {
                lp: 3,
                from: 2,
                to: 1,
            }],
        });
        let adapt = r.adaptation_summary();
        assert!(adapt.contains("migrations 1"), "{adapt}");
        assert!(adapt.contains("gvt 144: lp3 w2→w1"), "{adapt}");
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.migrations.len(), 1);
        assert_eq!(back.migrations[0].moves[0].lp, 3);
    }

    #[test]
    fn scales_show_up_in_the_adaptation_summary_and_default_for_legacy_reports() {
        let mut r = report();
        assert!(
            r.adaptation_summary().contains("scales none"),
            "{}",
            r.adaptation_summary()
        );
        r.scales.push(ScaleRecord {
            gvt: Some(96),
            direction: "out".into(),
            from_workers: 2,
            to_workers: 3,
            pressure: 0.7,
            moves: vec![MigrationMove {
                lp: 5,
                from: 1,
                to: 3,
            }],
        });
        let adapt = r.adaptation_summary();
        assert!(adapt.contains("scales 1"), "{adapt}");
        assert!(adapt.contains("gvt 96: out 2→3 workers"), "{adapt}");
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scales.len(), 1);
        assert_eq!(back.scales[0].to_workers, 3);

        // A report written before elasticity existed has no `scales`
        // key; it must parse with an empty list.
        let cut = json.find(",\"scales\"").expect("scales serialized");
        let end = json[cut + 1..].find(",\"telemetry\"").unwrap() + cut + 1;
        let legacy = format!("{}{}", &json[..cut], &json[end..]);
        let old: RunReport = serde_json::from_str(&legacy).unwrap();
        assert!(old.scales.is_empty());
    }

    #[test]
    fn serializes_to_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"executive\":\"virtual\""));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.committed_events, 1000);
    }

    #[test]
    fn resume_stats_roundtrip_and_default_for_legacy_reports() {
        let mut r = report();
        r.resume.resume_bytes = 1 << 20;
        r.resume.resume_chunks = 17;
        r.resume.lps_rolled_back = 3;
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.resume, r.resume);

        // A report written before the store existed has no `resume` key;
        // it must parse with zeroed counters (the field is declared last
        // so the key sits at the tail of the serialized object).
        let cut = json.find(",\"resume\"").expect("resume serialized last");
        let legacy = format!("{}}}", &json[..cut]);
        let old: RunReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old.resume, ResumeStats::default());

        let mut sum = ResumeStats::default();
        sum.merge(&r.resume);
        sum.merge(&r.resume);
        assert_eq!(sum.resume_chunks, 34);
        assert_eq!(sum.lps_rolled_back, 6);
    }
}
