//! The sequential executive: the golden model.
//!
//! Runs the same simulation objects with a single global event list in
//! strict timestamp order — no optimism, no rollback, no cancellation.
//! Its committed history *defines* correctness for the optimistic
//! executives: per object, every Time Warp run must commit exactly the
//! history this engine executes (compared via trace digests).
//!
//! WARPED supported exactly this configuration ("the simulation kernel
//! can operate as a sequential kernel").

use crate::report::{LpSummary, ObjectSummary, RunReport};
use crate::spec::SimulationSpec;
use std::collections::BinaryHeap;
use std::time::Instant;
use warp_core::stats::{CommStats, ObjectStats};
use warp_core::trace::TraceDigest;
use warp_core::{
    Event, EventId, EventKey, ExecutionContext, KernelError, ObjectId, SimObject, VirtualTime,
};

struct SeqCtx {
    me: ObjectId,
    now: VirtualTime,
    sends: Vec<(ObjectId, VirtualTime, u16, Vec<u8>)>,
}

impl ExecutionContext for SeqCtx {
    fn me(&self) -> ObjectId {
        self.me
    }
    fn now(&self) -> VirtualTime {
        self.now
    }
    fn try_send_at(
        &mut self,
        dst: ObjectId,
        at: VirtualTime,
        kind: u16,
        payload: Vec<u8>,
    ) -> Result<(), KernelError> {
        if at <= self.now {
            return Err(KernelError::SendIntoPast {
                now: self.now,
                requested: at,
            });
        }
        self.sends.push((dst, at, kind, payload));
        Ok(())
    }
}

/// Min-heap entry ordered by the kernel's total event order.
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the minimum key.
        other.0.key().cmp(&self.0.key())
    }
}

/// Run the spec sequentially to completion (event exhaustion).
pub fn run_sequential(spec: &SimulationSpec) -> RunReport {
    let start = Instant::now();
    let n = spec.partition.n_objects();
    let mut objects: Vec<Box<dyn SimObject>> =
        (0..n).map(|i| (spec.objects)(ObjectId(i as u32))).collect();
    let mut serials = vec![0u64; n];
    let mut digests = vec![TraceDigest::new(); n];
    let mut executed = vec![0u64; n];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

    let push_sends = |heap: &mut BinaryHeap<HeapEntry>,
                      serials: &mut Vec<u64>,
                      me: ObjectId,
                      send_time: VirtualTime,
                      sends: Vec<(ObjectId, VirtualTime, u16, Vec<u8>)>| {
        for (dst, at, kind, payload) in sends {
            let serial = serials[me.index()];
            serials[me.index()] += 1;
            heap.push(HeapEntry(Event::new(
                EventId { sender: me, serial },
                dst,
                send_time,
                at,
                kind,
                payload,
            )));
        }
    };

    // Init phase.
    for (i, obj) in objects.iter_mut().enumerate() {
        let me = ObjectId(i as u32);
        let mut ctx = SeqCtx {
            me,
            now: VirtualTime::ZERO,
            sends: Vec::new(),
        };
        obj.init(&mut ctx);
        push_sends(&mut heap, &mut serials, me, VirtualTime::ZERO, ctx.sends);
    }

    // Main loop: strict global key order.
    let dump_name = std::env::var("WARP_DUMP_HISTORY").ok();
    let mut last_key: Option<EventKey> = None;
    let mut total: u64 = 0;
    while let Some(HeapEntry(ev)) = heap.pop() {
        if let Some(name) = &dump_name {
            if objects[ev.dst.index()].name() == *name {
                eprintln!(
                    "[seq-history] t={} from={} serial={} kind={} payload={:02x?}",
                    ev.recv_time, ev.id.sender, ev.id.serial, ev.kind, ev.payload
                );
            }
        }
        debug_assert!(
            last_key.is_none_or(|k| k < ev.key()),
            "sequential engine processed events out of order"
        );
        last_key = Some(ev.key());
        let i = ev.dst.index();
        let mut ctx = SeqCtx {
            me: ev.dst,
            now: ev.recv_time,
            sends: Vec::new(),
        };
        objects[i].execute(&mut ctx, &ev);
        digests[i].update(&ev);
        executed[i] += 1;
        total += 1;
        push_sends(&mut heap, &mut serials, ev.dst, ev.recv_time, ctx.sends);
    }

    let wall = start.elapsed().as_secs_f64();
    // Shape the report along the partition's LPs for comparability.
    let per_lp: Vec<LpSummary> = spec
        .partition
        .lps()
        .map(|lp| {
            let objs = spec
                .partition
                .objects_of(lp)
                .iter()
                .map(|&id| ObjectSummary {
                    id: id.0,
                    name: objects[id.index()].name(),
                    final_mode: "sequential".into(),
                    final_chi: 0,
                    committed: executed[id.index()],
                    stats: ObjectStats {
                        executed: executed[id.index()],
                        ..Default::default()
                    },
                    trace_digest: if spec.collect_traces {
                        Some(digests[id.index()].value())
                    } else {
                        None
                    },
                })
                .collect();
            let kernel = ObjectStats {
                executed: spec
                    .partition
                    .objects_of(lp)
                    .iter()
                    .map(|&id| executed[id.index()])
                    .sum(),
                ..Default::default()
            };
            LpSummary {
                lp: lp.0,
                kernel,
                comm: CommStats::default(),
                objects: objs,
            }
        })
        .collect();

    let kernel = ObjectStats {
        executed: total,
        ..Default::default()
    };
    RunReport {
        timeline: Vec::new(),
        executive: "sequential".into(),
        completion_seconds: wall,
        wall_seconds: wall,
        committed_events: total,
        events_per_second: if wall > 0.0 { total as f64 / wall } else { 0.0 },
        gvt_rounds: 0,
        kernel,
        comm: CommStats::default(),
        per_lp,
        recoveries: 0,
        migrations: Vec::new(),
        scales: Vec::new(),
        telemetry: None,
        wire_agg: Vec::new(),
        resume: Default::default(),
    }
}
