//! The simulation specification: everything an executive needs to stage a
//! run — the model (object factory), the partition, the cost model, and
//! the configuration under test (policies + aggregation).
//!
//! Factories are `Fn` (not `FnOnce`): the same spec can be run repeatedly
//! and by different executives, which is exactly how the experiments
//! compare configurations on identical workloads.

use std::sync::Arc;
use warp_core::policy::ObjectPolicies;
use warp_core::{CostModel, LpId, LpRuntime, ObjectId, Partition, SimObject};
use warp_net::AggregationConfig;

/// Builds a fresh simulation object for an id.
pub type ObjectFactory = Arc<dyn Fn(ObjectId) -> Box<dyn SimObject> + Send + Sync>;

/// Builds the per-object policy pair (cancellation selector + checkpoint
/// tuner) for an id.
pub type PolicyFactory = Arc<dyn Fn(ObjectId) -> ObjectPolicies + Send + Sync>;

/// A complete, repeatable description of one simulation run.
#[derive(Clone)]
pub struct SimulationSpec {
    /// Object → LP → node placement.
    pub partition: Arc<Partition>,
    /// Modeled costs of kernel and communication actions.
    pub cost: CostModel,
    /// Message aggregation policy for cross-LP traffic.
    pub aggregation: AggregationConfig,
    /// Modeled seconds between GVT rounds (and fossil collections).
    /// `None` disables GVT-driven fossil collection — memory then grows
    /// with the run, which is only acceptable for tests that inspect the
    /// full committed history.
    pub gvt_period: Option<f64>,
    /// Model factory.
    pub objects: ObjectFactory,
    /// Policy factory.
    pub policies: PolicyFactory,
    /// Record per-object committed-trace digests in the report (requires
    /// `gvt_period == None` to be meaningful).
    pub collect_traces: bool,
    /// Record runtime telemetry: per-GVT-round metric samples and the
    /// control trajectory (every χ tuner invocation, cancellation flip,
    /// and DyMA window change). Strictly observational — a run's
    /// committed trace is identical with this on or off.
    pub telemetry: bool,
    /// Adaptive GVT cadence (extension facet): when set, the virtual
    /// executive re-tunes the GVT period after every round from the
    /// reclaimed/retained history volumes, starting from the law's own
    /// period (`gvt_period` is ignored except as on/off: `None` still
    /// disables GVT entirely).
    pub gvt_law: Option<warp_control::GvtPeriodLaw>,
}

impl SimulationSpec {
    /// Spec with the paper's baseline configuration: checkpoint every
    /// event, aggressive cancellation, no aggregation, GVT every 50 ms.
    pub fn new(partition: Partition, objects: ObjectFactory) -> Self {
        SimulationSpec {
            partition: Arc::new(partition),
            cost: CostModel::sparc_now_10mbps(),
            aggregation: AggregationConfig::Unaggregated,
            gvt_period: Some(0.05),
            objects,
            policies: Arc::new(|_| ObjectPolicies::default()),
            collect_traces: false,
            telemetry: false,
            gvt_law: None,
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        cost.validate().expect("invalid cost model");
        self.cost = cost;
        self
    }

    /// Replace the aggregation configuration.
    pub fn with_aggregation(mut self, aggregation: AggregationConfig) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Replace the per-object policy factory.
    pub fn with_policies(mut self, policies: PolicyFactory) -> Self {
        self.policies = policies;
        self
    }

    /// Replace the GVT period (`None` disables fossil collection).
    pub fn with_gvt_period(mut self, period: Option<f64>) -> Self {
        if let Some(p) = period {
            assert!(p > 0.0 && p.is_finite(), "GVT period must be positive");
        }
        self.gvt_period = period;
        self
    }

    /// Enable committed-trace digests in the report.
    pub fn with_traces(mut self) -> Self {
        self.collect_traces = true;
        self
    }

    /// Enable the adaptive GVT-period controller (extension facet).
    pub fn with_adaptive_gvt(mut self, law: warp_control::GvtPeriodLaw) -> Self {
        self.gvt_law = Some(law);
        self
    }

    /// Enable telemetry recording (metric samples + control trajectory).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Instantiate the LP runtimes for a run.
    pub(crate) fn build_lps(&self) -> Vec<LpRuntime> {
        self.partition.lps().map(|lp| self.build_lp(lp)).collect()
    }

    /// Instantiate a single LP runtime (the threaded executive builds LPs
    /// where their threads live).
    pub(crate) fn build_lp(&self, lp: LpId) -> LpRuntime {
        let objects = self
            .partition
            .objects_of(lp)
            .iter()
            .map(|&id| warp_core::ObjectRuntime::new(id, (self.objects)(id), (self.policies)(id)))
            .collect();
        let mut rt = LpRuntime::new(lp, self.partition.clone(), objects, self.cost.clone());
        rt.set_record_control(self.telemetry);
        rt
    }
}
