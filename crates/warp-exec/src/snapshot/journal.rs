//! The coordinator's durable run journal — the control-plane WAL that
//! makes a run survive its own coordinator.
//!
//! The checkpoint segments (see [`super::store`]) persist the *data*
//! plane: each worker's committed delta chain. They are useless without
//! the control-plane facts the coordinator carries in memory — which
//! session the cluster is on, which worker owns which LP, how many
//! checkpoints are on disk, what the run has already accumulated in
//! recoveries/migrations/scales. The journal WALs exactly those facts
//! into `run.journal` next to the segments, one record per checkpoint
//! barrier (and per membership/assignment change), so a fresh
//! `warp-cluster --resume STORE_DIR` process can replay the journal and
//! continue the run as if the dead coordinator had merely blinked.
//!
//! ```text
//! header:  "WJRN" | u32 version | u32 spec-hash (crc32 of the job JSON)
//! record 0: [u32 len][u32 crc32][job JSON]            (little-endian)
//! records:  repeat [u32 len][u32 crc32][state JSON]
//! ```
//!
//! Record framing and CRC discipline are identical to the segment
//! files. The job spec itself is the first record, which makes
//! `--resume` self-contained: no job file is needed (or consulted) on
//! restart, and the header's spec hash pins the journal to that exact
//! spec — a journal pointed at by the wrong `--store-dir` fails with a
//! typed [`SnapshotError::SpecHashMismatch`] instead of resuming the
//! wrong run.
//!
//! State records are opaque JSON owned by the executive (the
//! `CoordJournal` struct in `distributed`); the journal layer only
//! guarantees integrity and ordering. Loading distinguishes, exactly
//! like the segment loader, a *torn tail* (crash mid-append: the intact
//! prefix is the truth, the final partial record is dropped and
//! reported) from mid-file corruption ([`SnapshotError::BadCrc`] /
//! [`SnapshotError::Truncated`] — the journal cannot be trusted).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use super::store::crc32;
use super::SnapshotError;

/// Journal file magic.
pub(crate) const JRN_MAGIC: &[u8; 4] = b"WJRN";
/// Journal format version.
pub(crate) const JRN_VERSION: u32 = 1;

/// Path of the run journal under a store directory.
pub(crate) fn journal_path(dir: &Path) -> PathBuf {
    dir.join("run.journal")
}

/// Hash pinning a journal to one job spec: CRC32 over the serialized
/// job JSON (the same bytes `dist_config` ships to workers as the
/// opaque model spec).
pub(crate) fn spec_hash(job_json: &str) -> u32 {
    crc32(job_json.as_bytes())
}

/// The open, append-only run journal of a live coordinator.
#[derive(Debug)]
pub(crate) struct RunJournal {
    file: File,
    /// State records appended by this process (diagnostics).
    pub(crate) appended: u64,
}

impl RunJournal {
    /// Create (or truncate) `run.journal` under `dir`, writing the
    /// header and the job-spec record. A fresh run never resumes
    /// another run's control plane, so a stale journal is discarded —
    /// the same rule the segment store applies.
    pub(crate) fn create(dir: &Path, job_json: &str) -> Result<Self, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let mut file = File::create(journal_path(dir))?;
        file.write_all(JRN_MAGIC)?;
        file.write_all(&JRN_VERSION.to_le_bytes())?;
        file.write_all(&spec_hash(job_json).to_le_bytes())?;
        let mut journal = RunJournal { file, appended: 0 };
        journal.write_record(job_json.as_bytes())?;
        Ok(journal)
    }

    /// Re-open an existing journal for appending, first truncating it
    /// to `valid_len` — the intact prefix a load reported — so a torn
    /// tail from the previous coordinator's death is excised rather
    /// than buried under fresh records.
    pub(crate) fn reopen(path: &Path, valid_len: u64) -> Result<Self, SnapshotError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        // Paranoia: `set_len` + append means the next write lands at
        // `valid_len`; seek explicitly anyway for platforms where the
        // append cursor was cached before the truncate.
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(RunJournal { file, appended: 0 })
    }

    /// Append one executive-owned state record and flush it to the OS.
    /// Called at each checkpoint barrier *before* the `SnapshotAck`
    /// broadcast: workers only unpin fossils for history the journal
    /// already covers, mirroring the segment-store ordering.
    pub(crate) fn append_state(&mut self, payload: &[u8]) -> Result<(), SnapshotError> {
        self.write_record(payload)?;
        self.appended += 1;
        Ok(())
    }

    fn write_record(&mut self, payload: &[u8]) -> Result<(), SnapshotError> {
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.file.flush()?;
        Ok(())
    }
}

/// Everything a journal load recovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JournalContents {
    /// The job spec the run was started with, verbatim.
    pub job_json: String,
    /// The executive-owned state records, oldest first.
    pub states: Vec<Vec<u8>>,
    /// Byte length of the intact prefix — what [`RunJournal::reopen`]
    /// must truncate to before appending.
    pub valid_len: u64,
    /// True when a torn final record (crash mid-append) was dropped.
    pub dropped_tail: bool,
}

/// Read a run journal back, validating the header, every record's CRC,
/// and the spec hash against the embedded job spec.
///
/// Error taxonomy: a short header or a short/torn *job* record is
/// [`SnapshotError::Truncated`] (nothing can be resumed without the
/// spec); a foreign or wrong-version header is
/// [`SnapshotError::Corrupt`]; a complete record failing its checksum
/// is [`SnapshotError::BadCrc`]; a header hash disagreeing with the job
/// record is [`SnapshotError::SpecHashMismatch`]. A torn *final* state
/// record is not an error — it is the expected signature of a
/// coordinator dying mid-append — so it is dropped and reported via
/// [`JournalContents::dropped_tail`].
pub(crate) fn load_journal(path: &Path) -> Result<JournalContents, SnapshotError> {
    let buf = std::fs::read(path)?;
    if buf.len() < 12 {
        return Err(SnapshotError::Truncated {
            context: "journal header",
            detail: format!("{} bytes, header needs 12", buf.len()),
        });
    }
    if &buf[0..4] != JRN_MAGIC {
        return Err(SnapshotError::Corrupt(format!(
            "{}: not a run journal (bad magic)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != JRN_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "{}: journal version {version}, this build reads {JRN_VERSION}",
            path.display()
        )));
    }
    let stored_hash = u32::from_le_bytes(buf[8..12].try_into().unwrap());

    let mut pos = 12usize;
    let mut record = 0usize;
    let mut job_json: Option<String> = None;
    let mut states: Vec<Vec<u8>> = Vec::new();
    let mut valid_len = 12u64;
    let mut dropped_tail = false;
    while pos < buf.len() {
        let torn = |detail: String| -> Result<(), SnapshotError> {
            if record == 0 {
                Err(SnapshotError::Truncated {
                    context: "journal job record",
                    detail,
                })
            } else {
                Ok(())
            }
        };
        if buf.len() - pos < 8 {
            torn(format!(
                "record {record}: {} trailing bytes",
                buf.len() - pos
            ))?;
            dropped_tail = true;
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if buf.len() - pos - 8 < len {
            torn(format!(
                "record {record}: {len} bytes promised, {} present",
                buf.len() - pos - 8
            ))?;
            dropped_tail = true;
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        let computed = crc32(payload);
        if computed != stored {
            // A CRC failure on a *complete* record is corruption, not a
            // torn append — even at the tail. A torn append can only
            // shorten the file, never rewrite bytes it already wrote.
            return Err(SnapshotError::BadCrc {
                record,
                stored,
                computed,
            });
        }
        if record == 0 {
            let spec = String::from_utf8(payload.to_vec()).map_err(|e| {
                SnapshotError::Corrupt(format!("journal job record is not UTF-8: {e}"))
            })?;
            let computed = spec_hash(&spec);
            if computed != stored_hash {
                return Err(SnapshotError::SpecHashMismatch {
                    stored: stored_hash,
                    computed,
                });
            }
            job_json = Some(spec);
        } else {
            states.push(payload.to_vec());
        }
        pos += 8 + len;
        valid_len = pos as u64;
        record += 1;
    }
    let job_json = job_json.ok_or(SnapshotError::Truncated {
        context: "journal job record",
        detail: "journal ends after the header".into(),
    })?;
    Ok(JournalContents {
        job_json,
        states,
        valid_len,
        dropped_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("warp-jrn-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const JOB: &str = r#"{"model":{"phold":{}},"gvt_period":5}"#;

    #[test]
    fn create_append_load_roundtrips() {
        let dir = scratch("roundtrip");
        let mut j = RunJournal::create(&dir, JOB).unwrap();
        j.append_state(br#"{"session":0,"ckpt":1}"#).unwrap();
        j.append_state(br#"{"session":0,"ckpt":2}"#).unwrap();
        assert_eq!(j.appended, 2);
        drop(j);
        let loaded = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(loaded.job_json, JOB);
        assert_eq!(
            loaded.states,
            vec![
                br#"{"session":0,"ckpt":1}"#.to_vec(),
                br#"{"session":0,"ckpt":2}"#.to_vec(),
            ]
        );
        assert!(!loaded.dropped_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_reopen_excises_it() {
        // Crash mid-append: the final record is short. The intact
        // prefix is the truth; the tail is dropped, reported, and
        // truncated away by reopen so fresh appends stay well-formed.
        let dir = scratch("torn");
        let mut j = RunJournal::create(&dir, JOB).unwrap();
        j.append_state(b"state-one").unwrap();
        j.append_state(b"state-two-longer").unwrap();
        drop(j);
        let path = journal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let loaded = load_journal(&path).unwrap();
        assert!(loaded.dropped_tail);
        assert_eq!(loaded.states, vec![b"state-one".to_vec()]);

        let mut j = RunJournal::reopen(&path, loaded.valid_len).unwrap();
        j.append_state(b"state-three").unwrap();
        drop(j);
        let reloaded = load_journal(&path).unwrap();
        assert!(!reloaded.dropped_tail);
        assert_eq!(
            reloaded.states,
            vec![b"state-one".to_vec(), b"state-three".to_vec()]
        );

        // Cutting into the torn record's 8-byte header is still a
        // droppable tail, not an error.
        std::fs::write(&path, &full[..loaded.valid_len as usize + 3]).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert!(loaded.dropped_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_crc_on_a_complete_record_is_a_typed_error() {
        let dir = scratch("crc");
        let mut j = RunJournal::create(&dir, JOB).unwrap();
        j.append_state(b"precious-control-plane-state").unwrap();
        j.append_state(b"later").unwrap();
        drop(j);
        let path = journal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the middle record's payload.
        let hit = bytes.len() - b"later".len() - 8 - 3;
        bytes[hit] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(SnapshotError::BadCrc { record: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_hash_mismatch_is_a_typed_error() {
        let dir = scratch("spec");
        drop(RunJournal::create(&dir, JOB).unwrap());
        let path = journal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Tamper with the header's stored spec hash; the job record and
        // its own CRC stay intact, so only the cross-check can object.
        bytes[8] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match load_journal(&path) {
            Err(SnapshotError::SpecHashMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
                assert_eq!(computed, spec_hash(JOB));
            }
            other => panic!("expected SpecHashMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_and_truncated_headers_are_typed_errors() {
        let dir = scratch("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-journal");
        std::fs::write(&path, b"WSEG but wrong family entirely").unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(SnapshotError::Corrupt(_))
        ));
        std::fs::write(&path, b"WJRN").unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(SnapshotError::Truncated {
                context: "journal header",
                ..
            })
        ));
        // A valid header with a torn job record cannot be resumed: the
        // spec itself is gone.
        let good = {
            let d = scratch("foreign-good");
            drop(RunJournal::create(&d, JOB).unwrap());
            let b = std::fs::read(journal_path(&d)).unwrap();
            std::fs::remove_dir_all(&d).unwrap();
            b
        };
        std::fs::write(&path, &good[..good.len() - 2]).unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(SnapshotError::Truncated {
                context: "journal job record",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_version_is_corrupt() {
        let dir = scratch("version");
        drop(RunJournal::create(&dir, JOB).unwrap());
        let path = journal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(SnapshotError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
