//! Durable spill-to-disk backing for the coordinator's checkpoint store.
//!
//! The in-memory delta chains (`CkptStore` in the distributed executive)
//! are authoritative while the coordinator lives; this module gives them
//! a durable shadow so an operator can audit what a recovery would
//! replay, and so the chains survive the coordinator process itself. One
//! append-only *segment file* per worker, written as each checkpoint
//! commits:
//!
//! ```text
//! header:  "WSEG" | u32 version | u32 worker-id (1-based)
//! records: repeat [u32 len][u32 crc32][payload]        (little-endian)
//! ```
//!
//! Each payload is one `Frame::Snapshot` delta, exactly as the worker
//! shipped it; the CRC32 (IEEE) guards it against torn writes and bit
//! rot. Compaction and migration re-keying rewrite a segment via a
//! temporary file renamed into place, so a crash mid-rewrite leaves
//! either the old or the new segment, never a hybrid. A crash mid-append
//! leaves a truncated final record, which [`load_segment`] reports as
//! [`SnapshotError::Truncated`] — distinguishable from a corrupted
//! ([`SnapshotError::BadCrc`]) or foreign ([`SnapshotError::Corrupt`])
//! file.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use super::SnapshotError;

/// Segment file magic.
pub(crate) const SEG_MAGIC: &[u8; 4] = b"WSEG";
/// Segment format version.
pub(crate) const SEG_VERSION: u32 = 1;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Path of worker `w`'s (1-based) segment file under `dir`.
pub(crate) fn segment_path(dir: &Path, worker: u32) -> PathBuf {
    dir.join(format!("worker-{worker}.seg"))
}

/// The open per-worker segment files of one run.
#[derive(Debug)]
pub(crate) struct SegmentStore {
    dir: PathBuf,
    files: Vec<File>,
    /// Total delta payload bytes written (appends and rewrites), for the
    /// run report.
    pub(crate) spilled_bytes: u64,
}

impl SegmentStore {
    /// Create (or truncate) the segment files for `n_workers` workers
    /// under `dir`, creating the directory if needed. A fresh run never
    /// resumes another run's chains, so stale segments are discarded.
    pub(crate) fn create(dir: &Path, n_workers: u32) -> Result<Self, SnapshotError> {
        fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(n_workers as usize);
        for w in 1..=n_workers {
            files.push(fresh_segment(&segment_path(dir, w), w)?);
        }
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            files,
            spilled_bytes: 0,
        })
    }

    /// Append one committed delta to worker `w`'s (1-based) segment.
    pub(crate) fn append(&mut self, worker: u32, delta: &[u8]) -> Result<(), SnapshotError> {
        let f = &mut self.files[(worker - 1) as usize];
        f.write_all(&(delta.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(delta).to_le_bytes())?;
        f.write_all(delta)?;
        self.spilled_bytes += delta.len() as u64;
        Ok(())
    }

    /// Replace worker `w`'s (1-based) whole on-disk chain — after
    /// compaction or migration re-keying. Writes a sibling temporary
    /// file and renames it into place so the replacement is atomic at
    /// the filesystem level.
    pub(crate) fn rewrite(&mut self, worker: u32, chain: &[Vec<u8>]) -> Result<(), SnapshotError> {
        let path = segment_path(&self.dir, worker);
        let tmp = self.dir.join(format!("worker-{worker}.seg.tmp"));
        {
            let mut f = fresh_segment(&tmp, worker)?;
            for delta in chain {
                f.write_all(&(delta.len() as u32).to_le_bytes())?;
                f.write_all(&crc32(delta).to_le_bytes())?;
                f.write_all(delta)?;
                self.spilled_bytes += delta.len() as u64;
            }
        }
        fs::rename(&tmp, &path)?;
        self.files[(worker - 1) as usize] = OpenOptions::new().append(true).open(&path)?;
        Ok(())
    }

    /// Re-open the existing segment files of an interrupted run for
    /// appending, without truncating them — the resume path's
    /// counterpart to [`SegmentStore::create`]. The caller has already
    /// validated the segment contents (via [`load_segment_prefix`]) and
    /// truncates any un-journaled tail through [`SegmentStore::rewrite`]
    /// afterwards. `spilled_bytes` restarts at zero: the journal carries
    /// the pre-outage total, so per-incarnation accounting keeps the
    /// merged report additive.
    pub(crate) fn reopen(dir: &Path, n_workers: u32) -> Result<Self, SnapshotError> {
        let mut files = Vec::with_capacity(n_workers as usize);
        for w in 1..=n_workers {
            files.push(OpenOptions::new().append(true).open(segment_path(dir, w))?);
        }
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            files,
            spilled_bytes: 0,
        })
    }

    /// Grow or shrink the store to `n_workers` segments across an
    /// elastic membership change: new workers get fresh (empty)
    /// segments, a retired worker's segment file is deleted. The caller
    /// rewrites the surviving segments afterwards with the re-keyed
    /// chains.
    pub(crate) fn resize(&mut self, n_workers: u32) -> Result<(), SnapshotError> {
        while (self.files.len() as u32) < n_workers {
            let w = self.files.len() as u32 + 1;
            self.files
                .push(fresh_segment(&segment_path(&self.dir, w), w)?);
        }
        while (self.files.len() as u32) > n_workers {
            let w = self.files.len() as u32;
            self.files.pop();
            fs::remove_file(segment_path(&self.dir, w))?;
        }
        Ok(())
    }
}

fn fresh_segment(path: &Path, worker: u32) -> Result<File, SnapshotError> {
    let mut f = File::create(path)?;
    f.write_all(SEG_MAGIC)?;
    f.write_all(&SEG_VERSION.to_le_bytes())?;
    f.write_all(&worker.to_le_bytes())?;
    Ok(f)
}

/// Read a segment file back into `(worker_id, delta_chain)`, validating
/// the header and every record's CRC. Errors are typed: a short file is
/// [`SnapshotError::Truncated`] (crash mid-append — the intact prefix is
/// *not* returned, the caller must decide), a checksum mismatch is
/// [`SnapshotError::BadCrc`], and a foreign header is
/// [`SnapshotError::Corrupt`].
pub(crate) fn load_segment(path: &Path) -> Result<(u32, Vec<Vec<u8>>), SnapshotError> {
    let buf = fs::read(path)?;
    if buf.len() < 12 {
        return Err(SnapshotError::Truncated {
            context: "segment header",
            detail: format!("{} bytes, header needs 12", buf.len()),
        });
    }
    if &buf[0..4] != SEG_MAGIC {
        return Err(SnapshotError::Corrupt(format!(
            "{}: not a checkpoint segment (bad magic)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != SEG_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "{}: segment version {version}, this build reads {SEG_VERSION}",
            path.display()
        )));
    }
    let worker = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let mut chain = Vec::new();
    let mut pos = 12usize;
    let mut record = 0usize;
    while pos < buf.len() {
        if buf.len() - pos < 8 {
            return Err(SnapshotError::Truncated {
                context: "segment record header",
                detail: format!("record {record}: {} trailing bytes", buf.len() - pos),
            });
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        pos += 8;
        if buf.len() - pos < len {
            return Err(SnapshotError::Truncated {
                context: "segment record payload",
                detail: format!(
                    "record {record}: {len} bytes promised, {} present",
                    buf.len() - pos
                ),
            });
        }
        let payload = &buf[pos..pos + len];
        let computed = crc32(payload);
        if computed != stored {
            return Err(SnapshotError::BadCrc {
                record,
                stored,
                computed,
            });
        }
        chain.push(payload.to_vec());
        pos += len;
        record += 1;
    }
    Ok((worker, chain))
}

/// Like [`load_segment`], but tolerate a torn *final* record: the intact
/// prefix is returned and the third tuple element reports whether a tail
/// was dropped. This is the crash-recovery loader — a coordinator killed
/// mid-append leaves exactly one short trailing record, which the resume
/// path discards (the journal never committed the barrier that wrote
/// it). A bad CRC on a *complete* record is still [`SnapshotError::BadCrc`]:
/// that is corruption, not a torn write, and resuming past it would
/// silently lose a committed checkpoint.
pub(crate) fn load_segment_prefix(path: &Path) -> Result<(u32, Vec<Vec<u8>>, bool), SnapshotError> {
    match load_segment(path) {
        Ok((worker, chain)) => Ok((worker, chain, false)),
        Err(SnapshotError::Truncated { context, detail }) if context != "segment header" => {
            let _ = detail;
            let buf = fs::read(path)?;
            let worker = u32::from_le_bytes(buf[8..12].try_into().unwrap());
            let mut chain = Vec::new();
            let mut pos = 12usize;
            let mut record = 0usize;
            while buf.len() - pos >= 8 {
                let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                let stored = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
                if buf.len() - pos - 8 < len {
                    break; // the torn final record
                }
                pos += 8;
                let payload = &buf[pos..pos + len];
                let computed = crc32(payload);
                if computed != stored {
                    return Err(SnapshotError::BadCrc {
                        record,
                        stored,
                        computed,
                    });
                }
                chain.push(payload.to_vec());
                pos += len;
                record += 1;
            }
            Ok((worker, chain, true))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("warp-seg-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_load_roundtrips_per_worker() {
        let dir = scratch("roundtrip");
        let mut store = SegmentStore::create(&dir, 2).unwrap();
        store.append(1, b"alpha").unwrap();
        store.append(2, b"beta").unwrap();
        store.append(1, b"gamma-longer-delta").unwrap();
        assert_eq!(store.spilled_bytes, 5 + 4 + 18);

        let (w, chain) = load_segment(&segment_path(&dir, 1)).unwrap();
        assert_eq!(w, 1);
        assert_eq!(
            chain,
            vec![b"alpha".to_vec(), b"gamma-longer-delta".to_vec()]
        );
        let (w, chain) = load_segment(&segment_path(&dir, 2)).unwrap();
        assert_eq!(w, 2);
        assert_eq!(chain, vec![b"beta".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_record_is_a_typed_error() {
        // Regression: a crash mid-append leaves a short final record.
        // Loading must say Truncated — never silently return a shorter
        // chain, and never confuse it with corruption.
        let dir = scratch("truncated");
        let mut store = SegmentStore::create(&dir, 1).unwrap();
        store.append(1, b"first-delta").unwrap();
        store.append(1, b"second-delta").unwrap();
        drop(store);
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            load_segment(&path),
            Err(SnapshotError::Truncated {
                context: "segment record payload",
                ..
            })
        ));
        // Cutting into the record header is still Truncated, not BadCrc.
        fs::write(&path, &full[..full.len() - b"second-delta".len() - 3]).unwrap();
        assert!(matches!(
            load_segment(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_the_crc() {
        let dir = scratch("crc");
        let mut store = SegmentStore::create(&dir, 1).unwrap();
        store.append(1, b"precious-checkpoint-delta").unwrap();
        drop(store);
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_segment(&path),
            Err(SnapshotError::BadCrc { record: 0, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_are_rejected_as_corrupt() {
        let dir = scratch("foreign");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-segment");
        fs::write(&path, b"GIF89a-definitely-not-warp").unwrap();
        assert!(matches!(
            load_segment(&path),
            Err(SnapshotError::Corrupt(_))
        ));
        fs::write(&path, b"short").unwrap();
        assert!(matches!(
            load_segment(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resize_grows_with_fresh_segments_and_shrinks_by_deleting() {
        let dir = scratch("resize");
        let mut store = SegmentStore::create(&dir, 2).unwrap();
        store.append(1, b"one").unwrap();
        store.append(2, b"two").unwrap();
        // Scale out: worker 3 gets a fresh, empty segment.
        store.resize(3).unwrap();
        store.append(3, b"three").unwrap();
        let (w, chain) = load_segment(&segment_path(&dir, 3)).unwrap();
        assert_eq!((w, chain), (3, vec![b"three".to_vec()]));
        // Scale in: worker 3's segment disappears, survivors keep theirs.
        store.resize(2).unwrap();
        assert!(!segment_path(&dir, 3).exists());
        let (_, chain) = load_segment(&segment_path(&dir, 1)).unwrap();
        assert_eq!(chain, vec![b"one".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefix_loader_drops_a_torn_tail_and_flags_it() {
        let dir = scratch("prefix");
        let mut store = SegmentStore::create(&dir, 1).unwrap();
        store.append(1, b"committed-one").unwrap();
        store.append(1, b"committed-two").unwrap();
        store.append(1, b"torn-by-the-crash").unwrap();
        drop(store);
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();

        // Intact file: prefix load agrees with the strict loader.
        let (w, chain, dropped) = load_segment_prefix(&path).unwrap();
        assert_eq!((w, dropped), (1, false));
        assert_eq!(chain.len(), 3);

        // Torn payload: the final record vanishes, the flag is raised.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, chain, dropped) = load_segment_prefix(&path).unwrap();
        assert_eq!(
            chain,
            vec![b"committed-one".to_vec(), b"committed-two".to_vec()]
        );
        assert!(dropped);

        // Torn record header (fewer than 8 trailing bytes): same outcome.
        fs::write(&path, &full[..full.len() - b"torn-by-the-crash".len() - 3]).unwrap();
        let (_, chain, dropped) = load_segment_prefix(&path).unwrap();
        assert_eq!(chain.len(), 2);
        assert!(dropped);

        // A bad CRC on a *complete* record is still a hard error.
        let mut bytes = full.clone();
        let flip = bytes.len() - b"torn-by-the-crash".len() - 9; // inside record 1
        bytes[flip] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_segment_prefix(&path),
            Err(SnapshotError::BadCrc { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_to_existing_segments_without_truncating() {
        let dir = scratch("reopen");
        let mut store = SegmentStore::create(&dir, 2).unwrap();
        store.append(1, b"before-crash").unwrap();
        store.append(2, b"other-worker").unwrap();
        drop(store);
        let mut store = SegmentStore::reopen(&dir, 2).unwrap();
        assert_eq!(store.spilled_bytes, 0);
        store.append(1, b"after-resume").unwrap();
        let (_, chain) = load_segment(&segment_path(&dir, 1)).unwrap();
        assert_eq!(
            chain,
            vec![b"before-crash".to_vec(), b"after-resume".to_vec()]
        );
        let (_, chain) = load_segment(&segment_path(&dir, 2)).unwrap();
        assert_eq!(chain, vec![b"other-worker".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_the_chain_and_keeps_appending() {
        let dir = scratch("rewrite");
        let mut store = SegmentStore::create(&dir, 1).unwrap();
        store.append(1, b"one").unwrap();
        store.append(1, b"two").unwrap();
        store.append(1, b"three").unwrap();
        // Compaction: the three records collapse into one.
        store.rewrite(1, &[b"one+two+three".to_vec()]).unwrap();
        // The store keeps working after the rename.
        store.append(1, b"four").unwrap();
        let (_, chain) = load_segment(&segment_path(&dir, 1)).unwrap();
        assert_eq!(chain, vec![b"one+two+three".to_vec(), b"four".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
