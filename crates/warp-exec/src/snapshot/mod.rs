//! Checkpoint snapshot codec for the distributed executive.
//!
//! A checkpoint captures, per LP, the committed event log of every
//! object in the half-open virtual-time window since the previous
//! checkpoint. Workers ship these deltas to the coordinator inside
//! `Frame::Snapshot` payloads; the coordinator accumulates one delta
//! chain per worker and, on recovery, concatenates each worker's chain
//! into a `Frame::Resume` payload. Restoring a worker replays the
//! merged logs through the normal kernel paths
//! ([`warp_core::LpRuntime::restore_committed`]), which regenerates
//! both object state and the cross-checkpoint event frontier.
//!
//! Everything is encoded with the canonical `warp_core::wire` layer so
//! the snapshot format inherits the codec's determinism guarantees. The
//! [`store`] submodule adds the durable face of the same data: delta
//! chains spilled to per-worker segment files as checkpoints commit.
//!
//! Malformed input surfaces as a typed [`SnapshotError`] rather than a
//! bare I/O error, so callers (and tests) can tell a truncated payload
//! from a corrupted one from a failing disk.

pub(crate) mod journal;
pub(crate) mod store;

use std::collections::HashMap;
use std::fmt;

use warp_core::wire::{
    decode_event, encode_event, read_vt, write_vt, PayloadReader, PayloadWriter,
};
use warp_core::{Event, ObjectId, VirtualTime};

/// Failure decoding or validating checkpoint material.
///
/// The distinction matters operationally: `Truncated` on the final delta
/// of a chain usually means a crash mid-append (recoverable by dropping
/// the tail), `BadCrc`/`Corrupt` mean the bytes themselves lie and the
/// store cannot be trusted, and `Io` is the filesystem failing underneath
/// an otherwise healthy store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SnapshotError {
    /// Input ended before the structure it promised was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// The underlying decoder message.
        detail: String,
    },
    /// A payload decoded fully but left unconsumed bytes — the producer
    /// and consumer disagree about the format.
    TrailingBytes {
        /// What was being decoded.
        context: &'static str,
    },
    /// Structurally invalid content: bad ids, window mismatches, or a
    /// segment file whose header is not ours.
    Corrupt(String),
    /// A durable-store segment record failed its CRC check.
    BadCrc {
        /// Zero-based record index within the segment file.
        record: usize,
        /// Checksum stored alongside the record.
        stored: u32,
        /// Checksum recomputed over the record's payload.
        computed: u32,
    },
    /// The run journal's recorded job-spec hash disagrees with the job
    /// spec it carries (or the one the caller is trying to resume with)
    /// — the journal belongs to a different run configuration and
    /// resuming from it would replay the wrong control-plane history.
    SpecHashMismatch {
        /// Hash recorded in the journal header.
        stored: u32,
        /// Hash recomputed over the job spec.
        computed: u32,
    },
    /// Filesystem failure underneath the durable store.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context, detail } => {
                write!(f, "truncated {context}: {detail}")
            }
            SnapshotError::TrailingBytes { context } => {
                write!(f, "{context} has trailing bytes")
            }
            SnapshotError::Corrupt(detail) => write!(f, "corrupt checkpoint data: {detail}"),
            SnapshotError::BadCrc {
                record,
                stored,
                computed,
            } => write!(
                f,
                "segment record {record} failed its CRC check \
                 (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapshotError::SpecHashMismatch { stored, computed } => write!(
                f,
                "run journal belongs to a different job spec \
                 (journal {stored:#010x}, spec {computed:#010x})"
            ),
            SnapshotError::Io(detail) => write!(f, "checkpoint store I/O: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// One LP's committed-window contribution to a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct LpDelta {
    /// Global LP id.
    pub lp: u32,
    /// Per-object committed events in the checkpoint window, in the
    /// order the kernel committed them.
    pub objects: Vec<(ObjectId, Vec<Event>)>,
}

fn truncated(context: &'static str, e: impl fmt::Display) -> SnapshotError {
    SnapshotError::Truncated {
        context,
        detail: e.to_string(),
    }
}

/// Encode one worker's checkpoint delta (all its LPs) plus the window
/// bounds into a `Frame::Snapshot` payload.
pub(crate) fn encode_delta(from: VirtualTime, below: VirtualTime, lps: &[LpDelta]) -> Vec<u8> {
    // Exact size up front: the Pod event envelope is fixed-width, so
    // the whole delta is one allocation + bounds-checked copies.
    let total: usize = 20
        + lps
            .iter()
            .map(|d| {
                8 + d
                    .objects
                    .iter()
                    .map(|(_, evs)| {
                        8 + evs
                            .iter()
                            .map(warp_core::wire::encoded_event_len)
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum::<usize>();
    let mut w = PayloadWriter::with_capacity(total);
    write_vt(&mut w, from);
    write_vt(&mut w, below);
    w.u32(lps.len() as u32);
    for d in lps {
        w.u32(d.lp);
        w.u32(d.objects.len() as u32);
        for (oid, events) in &d.objects {
            w.u32(oid.0);
            w.u32(events.len() as u32);
            for ev in events {
                encode_event(&mut w, ev);
            }
        }
    }
    w.finish()
}

/// Decode a `Frame::Snapshot` payload back into (window, deltas).
pub(crate) fn decode_delta(
    buf: &[u8],
) -> Result<(VirtualTime, VirtualTime, Vec<LpDelta>), SnapshotError> {
    let mut r = PayloadReader::new(buf);
    let from = read_vt(&mut r).map_err(|e| truncated("snapshot window", e))?;
    let below = read_vt(&mut r).map_err(|e| truncated("snapshot window", e))?;
    let n_lps = r.u32().map_err(|e| truncated("snapshot lp count", e))?;
    let mut lps = Vec::with_capacity(n_lps as usize);
    for _ in 0..n_lps {
        let lp = r.u32().map_err(|e| truncated("snapshot lp id", e))?;
        let n_objs = r.u32().map_err(|e| truncated("snapshot object count", e))?;
        let mut objects = Vec::with_capacity(n_objs as usize);
        for _ in 0..n_objs {
            let oid = ObjectId(r.u32().map_err(|e| truncated("snapshot object id", e))?);
            let n_ev = r.u32().map_err(|e| truncated("snapshot event count", e))?;
            let mut events = Vec::with_capacity(n_ev as usize);
            for _ in 0..n_ev {
                events.push(decode_event(&mut r).map_err(|e| truncated("snapshot event", e))?);
            }
            objects.push((oid, events));
        }
        lps.push(LpDelta { lp, objects });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes {
            context: "snapshot payload",
        });
    }
    Ok((from, below, lps))
}

/// Concatenate a worker's accumulated delta payloads (oldest first)
/// into one `Frame::Resume` payload.
pub(crate) fn encode_resume(deltas: &[Vec<u8>]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u32(deltas.len() as u32);
    for d in deltas {
        w.bytes(d);
    }
    w.finish()
}

/// Split a `Frame::Resume` payload back into the ordered delta chain.
/// A truncated final delta is an error, never a shorter chain: silently
/// tolerating it would resume a worker from a partial history and
/// commit a diverged trace.
pub(crate) fn decode_resume(buf: &[u8]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    let mut r = PayloadReader::new(buf);
    let n = r.u32().map_err(|e| truncated("resume count", e))?;
    let mut deltas = Vec::with_capacity(n as usize);
    for _ in 0..n {
        deltas.push(
            r.bytes()
                .map_err(|e| truncated("resume delta", e))?
                .to_vec(),
        );
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes {
            context: "resume payload",
        });
    }
    Ok(deltas)
}

/// Merge an ordered delta chain into per-LP committed logs ready for
/// [`warp_core::LpRuntime::restore_committed`]: events append in
/// checkpoint order, which is committed order. Replay requires each
/// object's log in [`Event::key`] order, so the merge canonicalizes:
/// out-of-order chains are sorted back into key order and overlapping
/// windows (the same checkpoint present in two deltas) deduplicate by
/// key. For the well-formed chains the coordinator ships — disjoint
/// ascending windows — both passes are no-ops.
pub(crate) fn merge_logs(
    deltas: &[Vec<u8>],
) -> Result<HashMap<u32, HashMap<ObjectId, Vec<Event>>>, SnapshotError> {
    let mut merged: HashMap<u32, HashMap<ObjectId, Vec<Event>>> = HashMap::new();
    for blob in deltas {
        let (_, _, lps) = decode_delta(blob)?;
        for d in lps {
            let per_obj = merged.entry(d.lp).or_default();
            for (oid, events) in d.objects {
                per_obj.entry(oid).or_default().extend(events);
            }
        }
    }
    for per_obj in merged.values_mut() {
        for log in per_obj.values_mut() {
            log.sort_by_key(|a| a.key());
            log.dedup_by(|a, b| a.key() == b.key());
        }
    }
    Ok(merged)
}

/// Regroup a full set of per-worker delta chains under a new LP→worker
/// assignment (`owner_of(lp)` → 1-based worker id): for each checkpoint
/// index the per-LP deltas of *all* workers are pooled and re-encoded
/// per new owner, preserving the window bounds. Chains must describe
/// the same checkpoint sequence (every complete checkpoint has one
/// delta per worker with identical windows) — the invariant `CkptStore`
/// maintains.
pub(crate) fn rekey_chains(
    chains: &[Vec<Vec<u8>>],
    n_workers: u32,
    owner_of: impl Fn(u32) -> u32,
) -> Result<Vec<Vec<Vec<u8>>>, SnapshotError> {
    let depth = chains.iter().map(Vec::len).max().unwrap_or(0);
    let mut out: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n_workers as usize];
    for k in 0..depth {
        let mut window: Option<(VirtualTime, VirtualTime)> = None;
        let mut grouped: Vec<Vec<LpDelta>> = vec![Vec::new(); n_workers as usize];
        for chain in chains {
            let Some(blob) = chain.get(k) else { continue };
            let (from, below, lps) = decode_delta(blob)?;
            match window {
                None => window = Some((from, below)),
                Some(w) if w != (from, below) => {
                    return Err(SnapshotError::Corrupt(format!(
                        "checkpoint {k}: window mismatch across workers \
                         ({:?}..{:?} vs {:?}..{:?})",
                        w.0, w.1, from, below
                    )));
                }
                Some(_) => {}
            }
            for d in lps {
                let w = owner_of(d.lp);
                if w == 0 || w > n_workers {
                    return Err(SnapshotError::Corrupt(format!(
                        "lp {} assigned to invalid worker {w}",
                        d.lp
                    )));
                }
                grouped[(w - 1) as usize].push(d);
            }
        }
        let (from, below) = window
            .ok_or_else(|| SnapshotError::Corrupt(format!("checkpoint {k} has no deltas")))?;
        for (chain, mut lps) in out.iter_mut().zip(grouped) {
            // Deterministic order regardless of which worker held a
            // block before the move.
            lps.sort_by_key(|d| d.lp);
            chain.push(encode_delta(from, below, &lps));
        }
    }
    Ok(out)
}

/// Collapse a delta chain into a single delta spanning
/// `[first.from, last.below)`. Windows must be contiguous and ascending —
/// the invariant `CkptStore` maintains. Per-object logs merge in
/// [`Event::key`] order and deduplicate, which is exactly the
/// canonicalization [`merge_logs`] applies on resume, so replaying the
/// compacted chain commits the same trace as replaying the original.
pub(crate) fn compact_chain(chain: &[Vec<u8>]) -> Result<Vec<u8>, SnapshotError> {
    let first = chain
        .first()
        .ok_or_else(|| SnapshotError::Corrupt("compacting an empty chain".into()))?;
    let (from, _, _) = decode_delta(first)?;
    let mut merged: HashMap<u32, HashMap<ObjectId, Vec<Event>>> = HashMap::new();
    let mut cursor = from;
    for blob in chain {
        let (f, b, lps) = decode_delta(blob)?;
        if f != cursor || b < f {
            return Err(SnapshotError::Corrupt(format!(
                "compaction: non-contiguous windows (reached {cursor}, next is {f}..{b})"
            )));
        }
        cursor = b;
        for d in lps {
            let per_obj = merged.entry(d.lp).or_default();
            for (oid, events) in d.objects {
                per_obj.entry(oid).or_default().extend(events);
            }
        }
    }
    let mut lps: Vec<LpDelta> = merged
        .into_iter()
        .map(|(lp, objs)| {
            let mut objects: Vec<(ObjectId, Vec<Event>)> = objs.into_iter().collect();
            objects.sort_by_key(|(oid, _)| *oid);
            for (_, log) in &mut objects {
                log.sort_by_key(|e| e.key());
                log.dedup_by(|a, b| a.key() == b.key());
            }
            LpDelta { lp, objects }
        })
        .collect();
    lps.sort_by_key(|d| d.lp);
    Ok(encode_delta(from, cursor, &lps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::event::EventId;

    fn ev(sender: u32, serial: u64, dst: u32, at: u64) -> Event {
        Event::new(
            EventId {
                sender: ObjectId(sender),
                serial,
            },
            ObjectId(dst),
            VirtualTime::new(at.saturating_sub(1)),
            VirtualTime::new(at),
            7,
            vec![at as u8],
        )
    }

    fn delta(lp: u32, events: Vec<(u32, Vec<Event>)>) -> LpDelta {
        LpDelta {
            lp,
            objects: events
                .into_iter()
                .map(|(o, evs)| (ObjectId(o), evs))
                .collect(),
        }
    }

    #[test]
    fn delta_roundtrip() {
        let lps = vec![
            delta(
                0,
                vec![(0, vec![ev(1, 1, 0, 3), ev(1, 2, 0, 5)]), (1, vec![])],
            ),
            delta(2, vec![(4, vec![ev(0, 9, 4, 8)])]),
        ];
        let buf = encode_delta(VirtualTime::ZERO, VirtualTime::new(10), &lps);
        let (from, below, back) = decode_delta(&buf).unwrap();
        assert_eq!(from, VirtualTime::ZERO);
        assert_eq!(below, VirtualTime::new(10));
        assert_eq!(back, lps);
    }

    #[test]
    fn resume_roundtrip_preserves_chain_order() {
        let a = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(1, vec![(2, vec![ev(3, 1, 2, 2)])])],
        );
        let b = encode_delta(
            VirtualTime::new(4),
            VirtualTime::new(9),
            &[delta(1, vec![(2, vec![ev(3, 2, 2, 6)])])],
        );
        let resume = encode_resume(&[a.clone(), b.clone()]);
        assert_eq!(decode_resume(&resume).unwrap(), vec![a, b]);
    }

    #[test]
    fn merge_appends_in_checkpoint_order() {
        let a = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(1, vec![(2, vec![ev(3, 1, 2, 2), ev(3, 2, 2, 3)])])],
        );
        let b = encode_delta(
            VirtualTime::new(4),
            VirtualTime::new(9),
            &[
                delta(1, vec![(2, vec![ev(3, 3, 2, 6)])]),
                delta(0, vec![(0, vec![ev(2, 5, 0, 7)])]),
            ],
        );
        let merged = merge_logs(&[a, b]).unwrap();
        let lp1 = &merged[&1][&ObjectId(2)];
        assert_eq!(
            lp1.iter().map(|e| e.recv_time.ticks()).collect::<Vec<_>>(),
            vec![2, 3, 6]
        );
        assert_eq!(merged[&0][&ObjectId(0)].len(), 1);
    }

    #[test]
    fn merge_restores_key_order_from_an_out_of_order_chain() {
        // Chain delivered newest-first: the merge must not trust chain
        // order but re-sort each object's log into Event::key order,
        // which is what replay_committed requires.
        let newer = encode_delta(
            VirtualTime::new(4),
            VirtualTime::new(9),
            &[delta(1, vec![(2, vec![ev(3, 3, 2, 6), ev(3, 4, 2, 8)])])],
        );
        let older = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(1, vec![(2, vec![ev(3, 1, 2, 2), ev(3, 2, 2, 3)])])],
        );
        let merged = merge_logs(&[newer, older]).unwrap();
        let log = &merged[&1][&ObjectId(2)];
        assert_eq!(
            log.iter().map(|e| e.recv_time.ticks()).collect::<Vec<_>>(),
            vec![2, 3, 6, 8]
        );
        let mut keys: Vec<_> = log.iter().map(|e| e.key()).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted);
        keys.dedup();
        assert_eq!(keys.len(), log.len());
    }

    #[test]
    fn merge_deduplicates_overlapping_windows() {
        // The same checkpoint window shipped twice (e.g. a duplicated
        // Snapshot frame surviving into a chain) must not double-commit
        // its events on replay.
        let window = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(1, vec![(2, vec![ev(3, 1, 2, 2), ev(3, 2, 2, 3)])])],
        );
        let next = encode_delta(
            VirtualTime::new(4),
            VirtualTime::new(9),
            &[delta(1, vec![(2, vec![ev(3, 3, 2, 6)])])],
        );
        let merged = merge_logs(&[window.clone(), window, next]).unwrap();
        let log = &merged[&1][&ObjectId(2)];
        assert_eq!(
            log.iter().map(|e| e.recv_time.ticks()).collect::<Vec<_>>(),
            vec![2, 3, 6],
            "overlap must collapse to one copy per event"
        );
    }

    #[test]
    fn merge_interleaves_scrambled_overlapping_chains() {
        // Worst case: chains out of order *and* overlapping. The merged
        // log must equal the clean merge of the distinct windows.
        let a = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(0, vec![(0, vec![ev(1, 1, 0, 1), ev(1, 2, 0, 3)])])],
        );
        let b = encode_delta(
            VirtualTime::new(4),
            VirtualTime::new(9),
            &[delta(0, vec![(0, vec![ev(1, 3, 0, 5)])])],
        );
        let c = encode_delta(
            VirtualTime::new(9),
            VirtualTime::new(12),
            &[delta(0, vec![(0, vec![ev(1, 4, 0, 10)])])],
        );
        let scrambled = merge_logs(&[c.clone(), a.clone(), b.clone(), a.clone()]).unwrap();
        let clean = merge_logs(&[a, b, c]).unwrap();
        assert_eq!(scrambled, clean);
    }

    #[test]
    fn rekey_regroups_blocks_under_a_new_owner_map() {
        // Two workers, two checkpoints; then LP 1 moves from worker 1 to
        // worker 2.
        let w1 = vec![
            encode_delta(
                VirtualTime::ZERO,
                VirtualTime::new(4),
                &[
                    delta(0, vec![(0, vec![ev(1, 1, 0, 2)])]),
                    delta(1, vec![(2, vec![ev(3, 1, 2, 3)])]),
                ],
            ),
            encode_delta(
                VirtualTime::new(4),
                VirtualTime::new(9),
                &[
                    delta(0, vec![(0, vec![ev(1, 2, 0, 6)])]),
                    delta(1, vec![(2, vec![ev(3, 2, 2, 7)])]),
                ],
            ),
        ];
        let w2 = vec![
            encode_delta(
                VirtualTime::ZERO,
                VirtualTime::new(4),
                &[delta(2, vec![(4, vec![ev(5, 1, 4, 2)])])],
            ),
            encode_delta(
                VirtualTime::new(4),
                VirtualTime::new(9),
                &[delta(2, vec![(4, vec![ev(5, 2, 4, 8)])])],
            ),
        ];
        let owner = |lp: u32| if lp == 0 { 1 } else { 2 };
        let rekeyed = rekey_chains(&[w1.clone(), w2.clone()], 2, owner).unwrap();
        assert_eq!(rekeyed.len(), 2);
        assert_eq!(rekeyed[0].len(), 2, "chain depth preserved");
        assert_eq!(rekeyed[1].len(), 2);

        // Worker 1 keeps only LP 0; worker 2 now owns LPs 1 and 2.
        for k in 0..2 {
            let (from, below, lps) = decode_delta(&rekeyed[0][k]).unwrap();
            let (of, ob, _) = decode_delta(&w1[k]).unwrap();
            assert_eq!((from, below), (of, ob), "windows preserved");
            assert_eq!(lps.iter().map(|d| d.lp).collect::<Vec<_>>(), vec![0]);
            let (_, _, lps) = decode_delta(&rekeyed[1][k]).unwrap();
            assert_eq!(lps.iter().map(|d| d.lp).collect::<Vec<_>>(), vec![1, 2]);
        }

        // The merged committed logs are identical either way: rekeying
        // moves bytes between chains, never changes history.
        let mut before = merge_logs(&w1).unwrap();
        before.extend(merge_logs(&w2).unwrap());
        let mut after = merge_logs(&rekeyed[0]).unwrap();
        after.extend(merge_logs(&rekeyed[1]).unwrap());
        assert_eq!(before, after);
    }

    #[test]
    fn rekey_rejects_inconsistent_chains() {
        let a = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(0, vec![(0, vec![ev(1, 1, 0, 2)])])],
        );
        let skewed = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(5),
            &[delta(1, vec![(2, vec![ev(3, 1, 2, 2)])])],
        );
        assert!(
            rekey_chains(&[vec![a.clone()], vec![skewed]], 2, |_| 1).is_err(),
            "mismatched windows at the same checkpoint index"
        );
        assert!(
            rekey_chains(&[vec![a]], 2, |_| 7).is_err(),
            "owner map pointing at a worker that does not exist"
        );
    }

    #[test]
    fn corrupt_payloads_are_rejected_with_typed_errors() {
        assert!(matches!(
            decode_delta(&[1, 2, 3]),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            decode_resume(&[0, 0, 0, 9]),
            Err(SnapshotError::Truncated { .. })
        ));
        let good = encode_delta(VirtualTime::ZERO, VirtualTime::new(1), &[]);
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            decode_delta(&trailing),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn truncated_final_delta_is_an_error_not_a_shorter_chain() {
        // Regression: a resume payload whose last delta is cut short must
        // fail loudly. Resuming from a partial chain would silently
        // commit a diverged trace.
        let a = encode_delta(
            VirtualTime::ZERO,
            VirtualTime::new(4),
            &[delta(1, vec![(2, vec![ev(3, 1, 2, 2)])])],
        );
        let b = encode_delta(
            VirtualTime::new(4),
            VirtualTime::new(9),
            &[delta(1, vec![(2, vec![ev(3, 2, 2, 6)])])],
        );
        let resume = encode_resume(&[a.clone(), b]);
        let cut = resume[..resume.len() - 3].to_vec();
        match decode_resume(&cut) {
            Err(SnapshotError::Truncated { context, .. }) => {
                assert_eq!(context, "resume delta");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // The intact prefix alone still decodes — proving the cut hit
        // only the final delta, which must not be silently dropped.
        assert_eq!(
            decode_resume(&encode_resume(std::slice::from_ref(&a))).unwrap(),
            [a]
        );
    }

    #[test]
    fn compaction_is_replay_equivalent() {
        // Three contiguous windows collapse to one delta spanning the
        // full range whose merged logs are byte-identical to the
        // original chain's — the property that makes compaction safe.
        let chain = vec![
            encode_delta(
                VirtualTime::ZERO,
                VirtualTime::new(4),
                &[
                    delta(0, vec![(0, vec![ev(1, 1, 0, 1), ev(1, 2, 0, 3)])]),
                    delta(1, vec![(2, vec![ev(3, 1, 2, 2)])]),
                ],
            ),
            encode_delta(
                VirtualTime::new(4),
                VirtualTime::new(9),
                &[delta(0, vec![(0, vec![ev(1, 3, 0, 5)])])],
            ),
            encode_delta(
                VirtualTime::new(9),
                VirtualTime::new(12),
                &[
                    delta(0, vec![(0, vec![])]),
                    delta(1, vec![(2, vec![ev(3, 2, 2, 10)])]),
                ],
            ),
        ];
        let compacted = compact_chain(&chain).unwrap();
        let (from, below, lps) = decode_delta(&compacted).unwrap();
        assert_eq!(from, VirtualTime::ZERO);
        assert_eq!(below, VirtualTime::new(12));
        assert_eq!(
            lps.iter().map(|d| d.lp).collect::<Vec<_>>(),
            vec![0, 1],
            "deterministic LP order"
        );
        assert_eq!(
            merge_logs(&[compacted]).unwrap(),
            merge_logs(&chain).unwrap(),
            "compaction changed the committed history"
        );
    }

    #[test]
    fn compaction_rejects_gappy_chains() {
        let a = encode_delta(VirtualTime::ZERO, VirtualTime::new(4), &[]);
        let c = encode_delta(VirtualTime::new(9), VirtualTime::new(12), &[]);
        assert!(matches!(
            compact_chain(&[a, c]),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(compact_chain(&[]).is_err());
    }
}
