//! The virtual-cluster executive: a deterministic discrete-event
//! simulation of the network of workstations the paper ran on.
//!
//! We do not have a 1998 cluster of SPARCstations on shared 10 Mb
//! Ethernet, so we simulate one: each node is a CPU with a real-time
//! clock (f64 seconds); every kernel action — executing an event, saving
//! a state, coasting forward, the protocol-stack cost of each physical
//! message — advances the owning node's clock by the `CostModel`'s
//! charge, and the wire imposes latency plus bandwidth-proportional
//! transit on every physical message. The executive interleaves nodes in
//! global modeled-time order, so the rollback/anti-message dynamics that
//! emerge are exactly the dynamics a real asynchronous cluster with those
//! cost ratios would exhibit — but reproducibly: the same spec always
//! yields the same run, which is what makes strategy comparisons clean.
//!
//! "Execution time" reported for the figures is the completion time of
//! this virtual cluster (max node clock when the last event commits).

use crate::report::{LpSummary, ObjectSummary, RunReport, TimelineSample};
use crate::spec::SimulationSpec;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;
use warp_core::stats::{CommStats, ObjectStats};
use warp_core::{Event, LpRuntime, VirtualTime};
use warp_net::{Aggregator, PhysMsg};

/// Tuning knobs of the virtual executive.
#[derive(Clone, Debug)]
pub struct VirtualOptions {
    /// Hard cap on processed events (runaway guard). The executive
    /// panics if it is exceeded — a simulation that does not terminate is
    /// a bug in the model or the kernel, not a condition to paper over.
    pub max_steps: u64,
    /// Relative CPU speed per node (1.0 = the calibrated SPARC). The
    /// paper's testbed was explicitly *not dedicated*; a speed of 0.5
    /// models a workstation losing half its cycles to background load.
    /// Nodes beyond the vector's length run at 1.0. Speeds must be
    /// positive.
    pub node_speeds: Vec<f64>,
    /// Record a [`crate::report::TimelineSample`] at every GVT round
    /// (requires the spec's GVT period to be set).
    pub collect_timeline: bool,
}

impl Default for VirtualOptions {
    fn default() -> Self {
        VirtualOptions {
            max_steps: 500_000_000,
            node_speeds: Vec::new(),
            collect_timeline: false,
        }
    }
}

impl VirtualOptions {
    /// Uniform speed for every node.
    pub fn with_uniform_speed(n_nodes: usize, speed: f64) -> Self {
        VirtualOptions {
            node_speeds: vec![speed; n_nodes],
            ..Default::default()
        }
    }
}

#[derive(Debug)]
enum VEvent {
    /// A physical message completes its wire transit into an LP's inbox.
    Arrive { dst_lp: usize, msg: PhysMsg },
    /// A node should look for work.
    Wake { node: usize, version: u64 },
    /// Periodic exact-GVT computation + fossil collection.
    GvtTick,
}

struct HeapItem {
    at: f64,
    seq: u64,
    ev: VEvent,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, insertion sequence): deterministic ties.
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Node {
    clock: f64,
    wake_version: u64,
    lps: Vec<usize>,
    /// Relative CPU speed: every CPU charge is divided by this.
    speed: f64,
}

struct Cluster {
    lps: Vec<LpRuntime>,
    aggs: Vec<Aggregator>,
    inbox: Vec<Vec<PhysMsg>>,
    node_of_lp: Vec<usize>,
    nodes: Vec<Node>,
    heap: BinaryHeap<HeapItem>,
    seq: u64,
    /// Outstanding Arrive + Wake items (incl. stale wakes): when zero and
    /// no node has work, the simulation has quiesced.
    live: u64,
    steps: u64,
    gvt_rounds: u64,
    cost: warp_core::CostModel,
    partition: std::sync::Arc<warp_core::Partition>,
}

impl Cluster {
    /// Charge `cpu_seconds` of calibrated CPU work to a node, scaled by
    /// its speed (a loaded workstation takes proportionally longer).
    fn charge(&mut self, node: usize, cpu_seconds: f64) {
        self.nodes[node].clock += cpu_seconds / self.nodes[node].speed;
    }

    fn push(&mut self, at: f64, ev: VEvent) {
        self.seq += 1;
        self.live += 1;
        self.heap.push(HeapItem {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn push_tick(&mut self, at: f64) {
        self.seq += 1;
        self.heap.push(HeapItem {
            at,
            seq: self.seq,
            ev: VEvent::GvtTick,
        });
    }

    fn schedule_wake(&mut self, node: usize, at: f64) {
        let t = at.max(self.nodes[node].clock);
        self.nodes[node].wake_version += 1;
        let version = self.nodes[node].wake_version;
        self.push(t, VEvent::Wake { node, version });
    }

    /// Ship a batch of physical messages from `lp`, charging the sender's
    /// node clock and scheduling arrivals.
    fn transmit(&mut self, lp: usize, msgs: Vec<PhysMsg>) {
        let node = self.node_of_lp[lp];
        for msg in msgs {
            let send_cost = msg.send_cost(&self.cost);
            self.charge(node, send_cost);
            self.aggs[lp].note_send_cost(send_cost);
            let arrive_at = self.nodes[node].clock + msg.transit_time(&self.cost);
            let dst_lp = msg.dst.index();
            self.push(arrive_at, VEvent::Arrive { dst_lp, msg });
        }
    }

    /// Offer remote events from `lp` to its aggregation layer at the
    /// node's current clock, then transmit whatever became due.
    fn offer_remote(&mut self, lp: usize, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let now = self.nodes[self.node_of_lp[lp]].clock;
        let mut due = Vec::new();
        for ev in events {
            let dst = self.partition.lp_of(ev.dst);
            debug_assert_ne!(dst.index(), lp, "LP surfaced a local event as remote");
            self.aggs[lp].offer(dst, ev, now, &mut due);
        }
        self.transmit(lp, due);
    }

    fn run_node(&mut self, node_idx: usize, t_wake: f64) {
        let clock = self.nodes[node_idx].clock.max(t_wake);
        self.nodes[node_idx].clock = clock;

        // 1. Ingest every arrived physical message on this node's LPs.
        let lp_list = self.nodes[node_idx].lps.clone();
        for &lp in &lp_list {
            if self.inbox[lp].is_empty() {
                continue;
            }
            let msgs = std::mem::take(&mut self.inbox[lp]);
            for msg in msgs {
                let recv_cost = msg.recv_cost(&self.cost);
                self.charge(node_idx, recv_cost);
                self.aggs[lp].note_received(&msg, &self.cost);
                let mut remote = Vec::new();
                self.lps[lp].deliver(msg.events, &mut remote);
                let c = self.lps[lp].take_cost();
                self.charge(node_idx, c);
                self.offer_remote(lp, remote);
            }
        }

        // 2. Flush aggregation buckets that have aged out.
        for &lp in &lp_list {
            let now = self.nodes[node_idx].clock;
            let mut due = Vec::new();
            self.aggs[lp].poll(now, &mut due);
            self.transmit(lp, due);
        }

        // 3. Execute one event on the LP holding the earliest timestamp.
        let busiest = lp_list
            .iter()
            .copied()
            .filter(|&lp| self.lps[lp].next_time().is_finite())
            .min_by_key(|&lp| self.lps[lp].next_time());
        if let Some(lp) = busiest {
            let mut remote = Vec::new();
            let advanced = self.lps[lp].process_one(&mut remote);
            debug_assert!(advanced);
            self.steps += 1;
            let c = self.lps[lp].take_cost();
            self.charge(node_idx, c);
            self.offer_remote(lp, remote);
        } else {
            // Whole node idle: decide the fate of held-back lazy sends so
            // GVT can move past them.
            for &lp in &lp_list {
                let mut remote = Vec::new();
                self.lps[lp].flush_idle(&mut remote);
                let c = self.lps[lp].take_cost();
                self.charge(node_idx, c);
                self.offer_remote(lp, remote);
            }
        }

        // 4. Schedule the next look.
        let has_events = lp_list
            .iter()
            .any(|&lp| self.lps[lp].next_time().is_finite());
        // Held-back lazy anti-messages with no event left to regenerate
        // them must still be decided by the idle path above — an LP whose
        // GVT contribution is finite while its event queue is empty is
        // exactly an LP with undecided pendings, so keep the node awake.
        let has_pendings = !has_events
            && lp_list
                .iter()
                .any(|&lp| self.lps[lp].gvt_contribution().is_finite());
        if has_events || has_pendings {
            let t = self.nodes[node_idx].clock;
            self.schedule_wake(node_idx, t);
        } else {
            let deadline = lp_list
                .iter()
                .filter_map(|&lp| self.aggs[lp].next_deadline())
                .min_by(f64::total_cmp);
            if let Some(d) = deadline {
                self.schedule_wake(node_idx, d);
            }
        }
    }

    /// Exact GVT: minimum over LP contributions, buffered aggregates,
    /// inboxed and in-flight physical messages.
    fn compute_gvt(&self) -> VirtualTime {
        let mut g = VirtualTime::INFINITY;
        for lp in &self.lps {
            g = g.min(lp.gvt_contribution());
        }
        for agg in &self.aggs {
            g = g.min(agg.buffered_min_time());
        }
        for msgs in &self.inbox {
            for m in msgs {
                g = g.min(m.min_recv_time());
            }
        }
        for item in self.heap.iter() {
            if let VEvent::Arrive { msg, .. } = &item.ev {
                g = g.min(msg.min_recv_time());
            }
        }
        g
    }
}

/// Run the spec on the virtual cluster with default options.
pub fn run_virtual(spec: &SimulationSpec) -> RunReport {
    run_virtual_with(spec, &VirtualOptions::default())
}

/// Run the spec on the virtual cluster.
pub fn run_virtual_with(spec: &SimulationSpec, opts: &VirtualOptions) -> RunReport {
    run_virtual_inspect(spec, opts, |_| {})
}

/// Run the spec and hand the terminated LP runtimes to `inspect` before
/// the report is assembled — the hook for examining final model state
/// (committed histories, object internals via downcast) in tests and
/// analysis tools.
pub fn run_virtual_inspect(
    spec: &SimulationSpec,
    opts: &VirtualOptions,
    inspect: impl FnOnce(&[LpRuntime]),
) -> RunReport {
    let start = Instant::now();
    let n_lps = spec.partition.n_lps();
    let n_nodes = spec.partition.n_nodes();

    for (i, &sp) in opts.node_speeds.iter().enumerate() {
        assert!(
            sp.is_finite() && sp > 0.0,
            "node {i} speed {sp} must be positive and finite"
        );
    }
    let mut nodes: Vec<Node> = (0..n_nodes)
        .map(|i| Node {
            clock: 0.0,
            wake_version: 0,
            lps: Vec::new(),
            speed: opts.node_speeds.get(i).copied().unwrap_or(1.0),
        })
        .collect();
    let mut node_of_lp = vec![0usize; n_lps];
    for lp in spec.partition.lps() {
        let node = spec.partition.node_of(lp).index();
        nodes[node].lps.push(lp.index());
        node_of_lp[lp.index()] = node;
    }

    let mut cluster = Cluster {
        lps: spec.build_lps(),
        aggs: spec
            .partition
            .lps()
            .map(|lp| {
                let mut agg = Aggregator::new(lp, spec.aggregation.clone());
                agg.set_record_windows(spec.telemetry);
                agg
            })
            .collect(),
        inbox: vec![Vec::new(); n_lps],
        node_of_lp,
        nodes,
        heap: BinaryHeap::new(),
        seq: 0,
        live: 0,
        steps: 0,
        gvt_rounds: 0,
        cost: spec.cost.clone(),
        partition: spec.partition.clone(),
    };

    // Init: every LP runs object inits; initial remote events go through
    // the aggregation layer like any other traffic.
    for lp in 0..n_lps {
        let mut remote = Vec::new();
        cluster.lps[lp].init(&mut remote);
        let node = cluster.node_of_lp[lp];
        cluster.nodes[node].clock += cluster.lps[lp].take_cost();
        cluster.offer_remote(lp, remote);
    }
    for node in 0..cluster.nodes.len() {
        let t = cluster.nodes[node].clock;
        cluster.schedule_wake(node, t);
    }
    let mut gvt_law = spec.gvt_law.clone();
    if let Some(p) = spec.gvt_period {
        let first = gvt_law.as_ref().map_or(p, |law| law.period());
        cluster.push_tick(first);
    }

    // Main loop.
    let mut timeline: Vec<TimelineSample> = Vec::new();
    let mut recorders: Vec<warp_telemetry::Recorder> = if spec.telemetry {
        (0..n_lps as u32)
            .map(warp_telemetry::Recorder::new)
            .collect()
    } else {
        Vec::new()
    };
    let debug_trace = std::env::var("WARP_DEBUG_VIRTUAL").is_ok();
    let mut pops: u64 = 0;
    while let Some(HeapItem { at, ev, .. }) = cluster.heap.pop() {
        pops += 1;
        if debug_trace && pops.is_multiple_of(1_000_000) {
            eprintln!(
                "[virt] pops={} steps={} live={} heap={} t={:.6} gvt={} clocks={:?}",
                pops,
                cluster.steps,
                cluster.live,
                cluster.heap.len(),
                at,
                cluster.compute_gvt(),
                cluster.nodes.iter().map(|n| n.clock).collect::<Vec<_>>()
            );
        }
        match ev {
            VEvent::Arrive { dst_lp, msg } => {
                cluster.live -= 1;
                cluster.inbox[dst_lp].push(msg);
                cluster.schedule_wake(cluster.node_of_lp[dst_lp], at);
            }
            VEvent::Wake { node, version } => {
                cluster.live -= 1;
                if version != cluster.nodes[node].wake_version {
                    continue; // superseded
                }
                cluster.run_node(node, at);
                assert!(
                    cluster.steps <= opts.max_steps,
                    "virtual executive exceeded {} steps — runaway simulation",
                    opts.max_steps
                );
            }
            VEvent::GvtTick => {
                cluster.gvt_rounds += 1;
                let g = cluster.compute_gvt();
                if opts.collect_timeline {
                    timeline.push(TimelineSample {
                        at,
                        gvt: if g.is_finite() { Some(g.ticks()) } else { None },
                        lp_fronts: cluster
                            .lps
                            .iter()
                            .map(|lp| lp.lvt_front().ticks())
                            .collect(),
                        rollbacks: cluster.lps.iter().map(|lp| lp.stats().rollbacks()).sum(),
                        retained: cluster.lps.iter().map(|lp| lp.history_items() as u64).sum(),
                    });
                }
                // Telemetry sampling precedes fossil collection so the
                // retained gauge shows the pressure this round relieves.
                for (i, rec) in recorders.iter_mut().enumerate() {
                    rec.observe_lp(g, &mut cluster.lps[i]);
                    for (dst, old, new) in cluster.aggs[i].take_window_changes() {
                        rec.window_change(g, dst.0, old, new);
                    }
                }
                if g.is_infinite() && cluster.live == 0 {
                    break;
                }
                let mut reclaimed = 0u64;
                if g.is_finite() {
                    let before: u64 = cluster
                        .lps
                        .iter()
                        .map(|lp| lp.stats().fossils_collected)
                        .sum();
                    for lp in &mut cluster.lps {
                        lp.fossil_collect(g);
                    }
                    let after: u64 = cluster
                        .lps
                        .iter()
                        .map(|lp| lp.stats().fossils_collected)
                        .sum();
                    reclaimed = after - before;
                    for node in &mut cluster.nodes {
                        node.clock += cluster.cost.gvt_round / node.speed;
                    }
                }
                // Pace the next round off the busiest node's clock, not
                // the global event axis: GVT work consumes node CPU, so a
                // tick cadence faster than the clocks advance would recede
                // from the work it charges for (and never terminate).
                let period = match gvt_law.as_mut() {
                    Some(law) => {
                        let retained: usize = cluster.lps.iter().map(|lp| lp.history_items()).sum();
                        law.on_round(reclaimed, retained as u64, spec.partition.n_objects())
                    }
                    None => spec.gvt_period.expect("tick without period"),
                };
                let busiest_clock = cluster.nodes.iter().map(|n| n.clock).fold(at, f64::max);
                cluster.push_tick(busiest_clock + period);
            }
        }
    }

    inspect(&cluster.lps);

    // Completion: the cluster finished when its busiest node did.
    let completion = cluster
        .nodes
        .iter()
        .map(|n| n.clock)
        .fold(0.0_f64, f64::max);
    let wall = start.elapsed().as_secs_f64();

    if let Ok(name) = std::env::var("WARP_DUMP_HISTORY") {
        for lp in &cluster.lps {
            for o in lp.objects() {
                if o.object_name() == name {
                    eprintln!("[virt-history] {name}:");
                    for ev in o.committed_history() {
                        eprintln!(
                            "  t={} from={} serial={} kind={} payload={:02x?}",
                            ev.recv_time, ev.id.sender, ev.id.serial, ev.kind, ev.payload
                        );
                    }
                }
            }
        }
    }

    let mut kernel = ObjectStats::default();
    let mut comm = CommStats::default();
    let mut per_lp = Vec::with_capacity(n_lps);
    let mut committed = 0u64;
    for (i, lp) in cluster.lps.iter().enumerate() {
        let ks = lp.stats();
        committed += ks.net_executed();
        kernel.merge(&ks);
        let cs = cluster.aggs[i].stats().clone();
        comm.merge(&cs);
        let objects = lp
            .objects()
            .iter()
            .map(|o| ObjectSummary {
                id: o.id().0,
                name: o.object_name(),
                final_mode: format!("{:?}", o.cancellation_mode()),
                final_chi: o.checkpoint_interval(),
                committed: o.stats().net_executed(),
                stats: o.stats().clone(),
                trace_digest: if spec.collect_traces {
                    Some(o.trace_digest().value())
                } else {
                    None
                },
            })
            .collect();
        per_lp.push(LpSummary {
            lp: lp.id().0,
            kernel: ks,
            comm: cs,
            objects,
        });
    }

    RunReport {
        timeline,
        executive: "virtual".into(),
        completion_seconds: completion,
        wall_seconds: wall,
        committed_events: committed,
        events_per_second: if completion > 0.0 {
            committed as f64 / completion
        } else {
            0.0
        },
        gvt_rounds: cluster.gvt_rounds,
        kernel,
        comm,
        per_lp,
        recoveries: 0,
        migrations: Vec::new(),
        scales: Vec::new(),
        telemetry: crate::threaded::merge_telemetry(
            recorders.into_iter().map(warp_telemetry::Recorder::finish),
        ),
        wire_agg: Vec::new(),
        resume: Default::default(),
    }
}
