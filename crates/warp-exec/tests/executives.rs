//! Cross-executive equivalence: the optimistic executives must commit,
//! per object, exactly the history the sequential golden model executes —
//! whatever the configuration (cancellation strategy, checkpoint
//! interval, aggregation policy, fossil collection).

use std::sync::Arc;
use warp_control::{DynamicCancellation, DynamicCheckpoint};
use warp_core::policy::{CancellationMode, FixedCancellation, FixedCheckpoint, ObjectPolicies};
use warp_core::rng::SimRng;
use warp_core::wire::{PayloadReader, PayloadWriter};
use warp_core::{
    CostModel, ErasedState, Event, ExecutionContext, ObjectId, ObjectState, Partition, SimObject,
};
use warp_exec::{run_sequential, run_threaded, run_virtual, SimulationSpec};
use warp_net::AggregationConfig;

/// A relay workload: tokens hop between objects with random (state-seeded)
/// delays and destinations; each hop decrements a TTL. One send per event,
/// so committed histories are stable across executives by construction.
#[derive(Clone, Debug)]
struct RelayState {
    rng: SimRng,
    received: u64,
}
impl ObjectState for RelayState {}

struct Relay {
    me: u32,
    n_objects: u32,
    starters: u32,
    hops: u32,
    mean_delay: f64,
    state: RelayState,
}

impl Relay {
    fn forward(&mut self, ctx: &mut dyn ExecutionContext, ttl: u32) {
        if ttl == 0 {
            return;
        }
        let dst = self.state.rng.below(self.n_objects as u64) as u32;
        let delay = self.state.rng.exp_ticks(self.mean_delay);
        let mut w = PayloadWriter::new();
        w.u32(ttl - 1);
        ctx.send(ObjectId(dst), delay, 1, w.finish());
    }
}

impl SimObject for Relay {
    fn name(&self) -> String {
        format!("relay-{}", self.me)
    }
    fn init(&mut self, ctx: &mut dyn ExecutionContext) {
        if self.me < self.starters {
            self.forward(ctx, self.hops + 1);
        }
    }
    fn execute(&mut self, ctx: &mut dyn ExecutionContext, ev: &Event) {
        self.state.received += 1;
        let ttl = PayloadReader::new(&ev.payload)
            .u32()
            .expect("relay payload");
        self.forward(ctx, ttl);
    }
    fn snapshot(&self) -> ErasedState {
        ErasedState::of(self.state.clone())
    }
    fn restore(&mut self, snapshot: &ErasedState) {
        self.state = snapshot.get::<RelayState>().clone();
    }
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<RelayState>()
    }
}

fn relay_spec(seed: u64, n_objects: u32, n_lps: usize, starters: u32, hops: u32) -> SimulationSpec {
    let partition = Partition::round_robin(n_objects as usize, n_lps);
    SimulationSpec::new(
        partition,
        Arc::new(move |id: ObjectId| {
            Box::new(Relay {
                me: id.0,
                n_objects,
                starters,
                hops,
                mean_delay: 40.0,
                state: RelayState {
                    rng: SimRng::derive(seed, id.0 as u64),
                    received: 0,
                },
            }) as Box<dyn SimObject>
        }),
    )
    .with_cost(CostModel::uniform_unit())
    .with_gvt_period(None)
    .with_traces()
}

fn assert_same_traces(a: &warp_exec::RunReport, b: &warp_exec::RunReport) {
    assert_eq!(
        a.committed_events, b.committed_events,
        "{} vs {}",
        a.executive, b.executive
    );
    let ta = a.trace_digests();
    let tb = b.trace_digests();
    assert_eq!(ta.len(), tb.len());
    for ((ida, da), (idb, db)) in ta.iter().zip(tb.iter()) {
        assert_eq!(ida, idb);
        assert_eq!(
            da, db,
            "object {ida} committed a different history ({} vs {})",
            a.executive, b.executive
        );
    }
}

#[test]
fn virtual_matches_sequential_aggressive() {
    let spec = relay_spec(1, 12, 3, 6, 120);
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert!(
        seq.committed_events > 500,
        "workload too small to be meaningful"
    );
    assert_same_traces(&seq, &tw);
    assert!(
        tw.kernel.rollbacks() > 0,
        "workload never exercised rollback"
    );
}

#[test]
fn virtual_matches_sequential_lazy() {
    let spec = relay_spec(2, 12, 3, 6, 120).with_policies(Arc::new(|_| {
        ObjectPolicies::new(
            Box::new(FixedCancellation(CancellationMode::Lazy)),
            Box::new(FixedCheckpoint::new(4)),
        )
    }));
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert_same_traces(&seq, &tw);
    assert!(tw.kernel.rollbacks() > 0);
}

#[test]
fn virtual_matches_sequential_with_aggregation() {
    for config in [
        AggregationConfig::Faw { window: 2e-3 },
        AggregationConfig::saaw(1e-3),
    ] {
        let spec = relay_spec(3, 12, 4, 8, 100).with_aggregation(config.clone());
        let seq = run_sequential(&spec);
        let tw = run_virtual(&spec);
        assert_same_traces(&seq, &tw);
        assert!(
            tw.comm.aggregation_ratio() > 1.0,
            "{:?} never aggregated anything",
            config
        );
    }
}

#[test]
fn virtual_matches_sequential_with_dynamic_policies() {
    let spec = relay_spec(4, 10, 2, 5, 150).with_policies(Arc::new(|_| {
        ObjectPolicies::new(
            Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
            Box::new(DynamicCheckpoint::new(1, 32, 32)),
        )
    }));
    let seq = run_sequential(&spec);
    let tw = run_virtual(&spec);
    assert_same_traces(&seq, &tw);
}

#[test]
fn virtual_is_deterministic() {
    let spec = relay_spec(5, 12, 3, 6, 100).with_aggregation(AggregationConfig::saaw(1e-3));
    let a = run_virtual(&spec);
    let b = run_virtual(&spec);
    assert_eq!(a.committed_events, b.committed_events);
    assert_eq!(
        a.completion_seconds, b.completion_seconds,
        "modeled time must be bit-equal"
    );
    assert_eq!(a.kernel, b.kernel);
    assert_eq!(a.trace_digests(), b.trace_digests());
    assert_eq!(a.comm.phys_sent, b.comm.phys_sent);
}

#[test]
fn fossil_collection_preserves_results() {
    let base = relay_spec(6, 12, 3, 6, 100);
    let no_fossil = run_virtual(&base);
    // Same run with GVT + fossil collection on: committed counts must
    // match (trace digests are unavailable once history is reclaimed).
    let fossil = run_virtual(&base.clone().with_gvt_period(Some(0.02)));
    assert_eq!(no_fossil.committed_events, fossil.committed_events);
    assert!(fossil.gvt_rounds > 0, "GVT never ran");
    assert!(fossil.kernel.fossils_collected > 0, "nothing was reclaimed");
}

#[test]
fn threaded_matches_sequential() {
    let spec = relay_spec(7, 8, 2, 4, 80);
    let seq = run_sequential(&spec);
    let tw = run_threaded(&spec);
    assert_same_traces(&seq, &tw);
}

#[test]
fn threaded_matches_sequential_lazy_with_aggregation() {
    let spec = relay_spec(8, 8, 4, 6, 60)
        .with_policies(Arc::new(|_| {
            ObjectPolicies::new(
                Box::new(FixedCancellation(CancellationMode::Lazy)),
                Box::new(FixedCheckpoint::new(3)),
            )
        }))
        .with_aggregation(AggregationConfig::Faw { window: 0.5e-3 });
    let seq = run_sequential(&spec);
    let tw = run_threaded(&spec);
    assert_same_traces(&seq, &tw);
}

#[test]
fn threaded_with_fossils_terminates_and_commits() {
    let spec = relay_spec(9, 8, 3, 4, 60);
    let seq = run_sequential(&spec);
    let tw = run_threaded(&spec.clone().with_gvt_period(Some(0.002)));
    assert_eq!(seq.committed_events, tw.committed_events);
    assert!(tw.gvt_rounds > 0);
}

#[test]
fn single_lp_virtual_and_threaded() {
    let spec = relay_spec(10, 6, 1, 3, 50);
    let seq = run_sequential(&spec);
    let v = run_virtual(&spec);
    let t = run_threaded(&spec);
    assert_same_traces(&seq, &v);
    assert_same_traces(&seq, &t);
    assert_eq!(
        v.kernel.rollbacks(),
        0,
        "single LP: everything is local and in order"
    );
}

#[test]
fn reports_carry_configuration_details() {
    let spec = relay_spec(11, 6, 2, 3, 40).with_policies(Arc::new(|_| {
        ObjectPolicies::new(
            Box::new(DynamicCancellation::dc(8, 0.45, 0.2, 8)),
            Box::new(DynamicCheckpoint::new(1, 16, 16)),
        )
    }));
    let tw = run_virtual(&spec);
    for lp in &tw.per_lp {
        for o in &lp.objects {
            assert!(o.final_chi >= 1);
            assert!(o.final_mode == "Aggressive" || o.final_mode == "Lazy");
            assert!(o.name.starts_with("relay-"));
        }
    }
    let json = serde_json::to_string(&tw).unwrap();
    assert!(json.contains("phys_sent"));
}

// ---------------------------------------------------------------------
// Telemetry: observation must never perturb the run, and the recorded
// control trajectory must be the controller's actual decision sequence.
// ---------------------------------------------------------------------

/// A fully-adaptive spec with telemetry-worthy dynamics: dynamic
/// cancellation plus a hill-climbing checkpoint tuner. GVT rounds still
/// happen (the token ring always circulates) but fossil collection
/// stays off so committed-trace digests remain comparable.
fn adaptive_spec(seed: u64) -> SimulationSpec {
    relay_spec(seed, 12, 3, 6, 150).with_policies(Arc::new(|_| {
        ObjectPolicies::new(
            Box::new(DynamicCancellation::dc(16, 0.45, 0.2, 16)),
            Box::new(DynamicCheckpoint::with_rule(
                1,
                32,
                32,
                warp_control::AdaptRule::HillClimb,
            )),
        )
    }))
}

#[test]
fn telemetry_is_observational_and_records_the_run() {
    let base = adaptive_spec(21);
    let seq = run_sequential(&base);
    let plain = run_threaded(&base);
    let observed = run_threaded(&base.clone().with_telemetry());

    // Observation must not change what gets committed.
    assert_same_traces(&seq, &plain);
    assert_same_traces(&seq, &observed);
    assert!(plain.telemetry.is_none(), "telemetry off => no report");

    let telem = observed.telemetry.expect("telemetry on => report present");
    assert!(!telem.samples.is_empty(), "GVT rounds must produce samples");
    assert_eq!(telem.dropped_samples, 0, "run too small to overflow rings");

    // Per-LP counter deltas must add back up to the cumulative totals
    // the summaries report — sampling is lossless bookkeeping.
    let sampled_executed: u64 = telem.samples.iter().map(|s| s.executed).sum();
    assert_eq!(
        sampled_executed, observed.kernel.executed,
        "sample deltas must sum to the kernel's executed total"
    );
}

#[test]
fn recorded_chi_trajectory_replays_through_a_fresh_tuner() {
    use std::collections::BTreeMap;
    use warp_core::policy::CheckpointTuner;
    use warp_telemetry::{ControlEvent, Param};

    let report = run_threaded(&adaptive_spec(22).with_telemetry());
    let telem = report.telemetry.expect("telemetry enabled");
    let mut by_object: BTreeMap<u32, Vec<&ControlEvent>> = BTreeMap::new();
    for ev in telem.events.iter().filter(|e| e.param == Param::Chi) {
        by_object.entry(ev.object).or_default().push(ev);
    }
    assert!(
        !by_object.is_empty(),
        "the hill-climber was never invoked — workload too small"
    );

    for (object, events) in by_object {
        // The trajectory is a chain: each step starts where the last
        // ended, beginning at the configured χ₀.
        assert_eq!(events[0].old, 1.0, "object {object} must start at χ₀");
        for w in events.windows(2) {
            assert_eq!(
                w[1].old, w[0].new,
                "object {object}: χ trajectory has a gap"
            );
        }
        // Replaying the recorded cost samples through a *fresh* tuner of
        // the same configuration must reproduce the recorded decisions:
        // the trace captures everything the controller acted on.
        let mut replay =
            DynamicCheckpoint::with_rule(1, 32, 32, warp_control::AdaptRule::HillClimb);
        for ev in events {
            let chi = replay
                .invoke(ev.sampled_o, 0.0)
                .expect("dynamic tuner always yields an interval");
            assert_eq!(
                chi as f64, ev.new,
                "object {object}: replay diverged from the recorded trajectory at gvt {:?}",
                ev.gvt
            );
        }
    }
}
