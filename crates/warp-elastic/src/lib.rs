//! Elastic cluster membership: on-line configuration of the worker
//! count itself.
//!
//! The paper's `<O,I,S,T,P>` loop configures per-LP knobs
//! (`warp-control`) and the worker↔LP assignment (`warp-balance`). This
//! crate lifts the same structure one more level: the configured
//! parameter `I` is the *size of the worker set*.
//!
//! * `O` — the same per-LP [`LpLoad`] stream the balance controller
//!   consumes at every GVT round; the controller reduces it to a
//!   cluster *pressure* index, the normalized spread of per-worker mean
//!   LVT leads (identical in shape to the balance imbalance index).
//! * `I` — the worker count, actuated between
//!   [`ElasticPolicy::min_workers`] and [`ElasticPolicy::max_workers`].
//! * `T` — [`ElasticController::observe`]: a *two-sided* dead zone.
//!   Pressure above [`ElasticPolicy::scale_out_pressure`] for
//!   [`ElasticPolicy::patience`] consecutive rounds means the slowest
//!   worker is pinned at the horizon while everyone else speculates far
//!   ahead — the cluster is capacity-bound on one host, so spread the
//!   load over one more worker. Pressure below
//!   [`ElasticPolicy::scale_in_pressure`] for `patience` rounds means
//!   the leads are even again and the extra capacity is idle headroom —
//!   retire a worker. The band between the two thresholds is the
//!   hysteresis dead zone where membership never moves.
//!
//! A firing produces a [`ScalePlan`]: the new [`Assignment`] (over one
//! more or one fewer worker) plus the LP moves that realize it. The
//! executive applies it exactly like a rebalance — checkpoint barrier,
//! session regroup — except the membership changes across the epoch:
//! a newcomer is spawned/admitted and seeded from the checkpoint
//! store, or the retiree drains and exits. This crate is pure policy;
//! it owns no transport, process, or checkpoint state.

use serde::{Deserialize, Serialize};
use warp_balance::{Assignment, LpLoad, Move};

/// Knobs for the elastic membership loop. Defaults leave it disabled
/// and, when enabled, damp it harder than the balance loop: a scale
/// costs a process spawn (or a drain) on top of the checkpoint barrier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ElasticPolicy {
    /// Master switch. Off by default: scaling reuses the checkpoint
    /// seeding machinery, so enabling it also requires recovery.
    pub enabled: bool,
    /// Floor on the worker count; scale-in never goes below it.
    pub min_workers: u32,
    /// Ceiling on the worker count; scale-out never exceeds it.
    pub max_workers: u32,
    /// Scale out when the pressure index sits at or above this for
    /// `patience` rounds. Must lie in `(0, 1]`.
    pub scale_out_pressure: f64,
    /// Scale in when the pressure index sits at or below this for
    /// `patience` rounds. Must lie in `[0, scale_out_pressure)`; the
    /// open band between the two thresholds is the dead zone.
    pub scale_in_pressure: f64,
    /// Consecutive GVT rounds on the same side of the dead zone
    /// required before a scale fires (the `P` of the control loop).
    pub patience: u32,
    /// Initial GVT rounds of each session to ignore while EWMA state
    /// warms up (leads are transient right after a resume replay).
    pub warmup_rounds: u32,
    /// Total membership changes allowed per run (each costs a barrier,
    /// a regroup, and a spawn or drain).
    pub max_scales: u32,
    /// Allow the coordinator to spawn fresh worker processes on scale
    /// out. When false the controller only proposes scale-out while a
    /// `--join` worker is parked in the admission queue.
    pub spawn: bool,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            min_workers: 1,
            max_workers: 4,
            scale_out_pressure: 0.6,
            scale_in_pressure: 0.15,
            patience: 3,
            warmup_rounds: 2,
            max_scales: 2,
            spawn: true,
        }
    }
}

impl ElasticPolicy {
    pub fn validate(&self) -> Result<(), String> {
        if self.min_workers == 0 {
            return Err("min_workers must be >= 1".into());
        }
        if self.max_workers < self.min_workers {
            return Err(format!(
                "max_workers {} below min_workers {}",
                self.max_workers, self.min_workers
            ));
        }
        if !(0.0 < self.scale_out_pressure && self.scale_out_pressure <= 1.0) {
            return Err(format!(
                "scale_out_pressure {} outside (0, 1]",
                self.scale_out_pressure
            ));
        }
        if !(0.0..1.0).contains(&self.scale_in_pressure)
            || self.scale_in_pressure >= self.scale_out_pressure
        {
            return Err(format!(
                "scale_in_pressure {} must lie in [0, scale_out_pressure)",
                self.scale_in_pressure
            ));
        }
        if self.patience == 0 {
            return Err("patience must be >= 1".into());
        }
        Ok(())
    }
}

/// Which way the membership moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDirection {
    /// Add one worker (`from_workers + 1`).
    Out,
    /// Retire the highest-numbered worker (`from_workers - 1`).
    In,
}

/// A proposed membership change: the assignment over the *new* worker
/// set plus the LP moves that realize it and the pressure index that
/// triggered it.
#[derive(Clone, Debug)]
pub struct ScalePlan {
    pub direction: ScaleDirection,
    /// Worker count before the scale.
    pub from_workers: u32,
    /// Worker count after the scale (`from_workers ± 1`).
    pub to_workers: u32,
    /// LP→worker map over `to_workers` workers.
    pub assignment: Assignment,
    /// Every LP changing owner (`to == to_workers` on scale-out;
    /// `from == from_workers` on scale-in).
    pub moves: Vec<Move>,
    /// The pressure index at the firing round.
    pub pressure: f64,
}

impl ScalePlan {
    /// The proc id being drained, on scale-in. Always the
    /// highest-numbered worker so surviving proc ids stay contiguous.
    pub fn retired(&self) -> Option<u32> {
        match self.direction {
            ScaleDirection::Out => None,
            ScaleDirection::In => Some(self.from_workers),
        }
    }
}

/// EWMA smoothing factor, matching `warp-balance` (GVT rounds are
/// already coarse).
const ALPHA: f64 = 0.5;

/// The membership-level transfer function `T`.
///
/// Feed it one complete round of per-LP loads per GVT round via
/// [`observe`](Self::observe); it returns `Some(ScalePlan)` on the rare
/// round where the membership should change. The executive recreates
/// the controller at every session start, which doubles as the cooldown
/// after a scale, migration, or recovery.
pub struct ElasticController {
    policy: ElasticPolicy,
    n_lps: u32,
    /// EWMA of per-LP LVT leads — the straggler/headroom signal.
    lead: Vec<f64>,
    rounds: u32,
    out_streak: u32,
    in_streak: u32,
    scales: u32,
}

impl ElasticController {
    pub fn new(policy: ElasticPolicy, n_lps: u32) -> Self {
        Self {
            policy,
            n_lps,
            lead: vec![0.0; n_lps as usize],
            rounds: 0,
            out_streak: 0,
            in_streak: 0,
            scales: 0,
        }
    }

    /// Ingest one complete GVT round of loads under the current
    /// assignment. `can_spawn` tells the controller whether a scale-out
    /// is actually realizable right now (a joiner is parked, or the
    /// policy allows spawning); when false, out-pressure still counts
    /// strikes but never fires.
    pub fn observe(
        &mut self,
        assign: &Assignment,
        per_lp: &[LpLoad],
        can_spawn: bool,
    ) -> Option<ScalePlan> {
        assert_eq!(per_lp.len(), self.n_lps as usize, "incomplete load round");
        for (lp, load) in per_lp.iter().enumerate() {
            self.lead[lp] = ALPHA * load.lvt_lead as f64 + (1.0 - ALPHA) * self.lead[lp];
        }
        self.rounds += 1;
        if self.rounds <= self.policy.warmup_rounds || self.scales >= self.policy.max_scales {
            return None;
        }

        let n = assign.n_workers();
        let lead = self.worker_leads(assign);
        let max_l = lead.iter().cloned().fold(f64::MIN, f64::max);
        let min_l = lead.iter().cloned().fold(f64::MAX, f64::min);
        let pressure = (max_l - min_l) / max_l.max(1.0);

        let plan = if pressure >= self.policy.scale_out_pressure {
            self.in_streak = 0;
            self.out_streak += 1;
            if self.out_streak < self.policy.patience || n >= self.policy.max_workers || !can_spawn
            {
                return None;
            }
            self.plan_out(assign, &lead, pressure)
        } else if pressure <= self.policy.scale_in_pressure {
            self.out_streak = 0;
            self.in_streak += 1;
            if self.in_streak < self.policy.patience || n <= self.policy.min_workers {
                return None;
            }
            self.plan_in(assign, pressure)
        } else {
            self.out_streak = 0;
            self.in_streak = 0;
            return None;
        };
        if plan.is_some() {
            self.out_streak = 0;
            self.in_streak = 0;
            self.scales += 1;
        }
        plan
    }

    /// Per-worker mean LVT lead under `assign` (index `w-1`).
    fn worker_leads(&self, assign: &Assignment) -> Vec<f64> {
        let n = assign.n_workers() as usize;
        let mut sum = vec![0.0; n];
        let mut count = vec![0u32; n];
        for lp in 0..self.n_lps {
            let w = (assign.proc_of(lp) - 1) as usize;
            sum[w] += self.lead[lp as usize];
            count[w] += 1;
        }
        sum.iter()
            .zip(&count)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Grow by one: give the newcomer its fair share
    /// (`n_lps / (n + 1)`, at least 1) of LPs, drawn from the most
    /// pressured (lowest-lead) workers first, never draining a donor
    /// below one LP.
    fn plan_out(&self, assign: &Assignment, lead: &[f64], pressure: f64) -> Option<ScalePlan> {
        let n = assign.n_workers();
        let newcomer = n + 1;
        if self.n_lps < newcomer {
            return None; // every worker must keep at least one LP
        }
        let target = (self.n_lps / newcomer).max(1);
        let mut owner = assign.owners().to_vec();
        let mut counts: Vec<u32> = (1..=n).map(|w| assign.lps_of(w).len() as u32).collect();
        let mut moves = Vec::new();
        for _ in 0..target {
            // Donor: the worker with the lowest mean lead (the most
            // pressured) that can still spare an LP; ties break to the
            // lowest id so the plan is deterministic.
            let donor = (0..n as usize)
                .filter(|&w| counts[w] > 1)
                .min_by(|&a, &b| lead[a].total_cmp(&lead[b]).then(a.cmp(&b)))
                .map(|w| w as u32 + 1)?;
            // Lowest-id LP on the donor, again for determinism.
            let lp = (0..self.n_lps).find(|&lp| owner[lp as usize] == donor)?;
            owner[lp as usize] = newcomer;
            counts[(donor - 1) as usize] -= 1;
            moves.push(Move {
                lp,
                from: donor,
                to: newcomer,
            });
        }
        let assignment = Assignment::from_owners(owner, newcomer).ok()?;
        Some(ScalePlan {
            direction: ScaleDirection::Out,
            from_workers: n,
            to_workers: newcomer,
            assignment,
            moves,
            pressure,
        })
    }

    /// Shrink by one: retire the highest-numbered worker (keeping proc
    /// ids contiguous) and deal its LPs to the survivors with the
    /// fewest LPs first.
    fn plan_in(&self, assign: &Assignment, pressure: f64) -> Option<ScalePlan> {
        let n = assign.n_workers();
        let retiree = n;
        let survivors = n - 1;
        let mut owner = assign.owners().to_vec();
        let mut counts: Vec<u32> = (1..=survivors)
            .map(|w| assign.lps_of(w).len() as u32)
            .collect();
        let mut moves = Vec::new();
        for lp in assign.lps_of(retiree) {
            let to = (0..survivors as usize)
                .min_by(|&a, &b| counts[a].cmp(&counts[b]).then(a.cmp(&b)))
                .map(|w| w as u32 + 1)?;
            owner[lp as usize] = to;
            counts[(to - 1) as usize] += 1;
            moves.push(Move {
                lp,
                from: retiree,
                to,
            });
        }
        let assignment = Assignment::from_owners(owner, survivors).ok()?;
        Some(ScalePlan {
            direction: ScaleDirection::In,
            from_workers: n,
            to_workers: survivors,
            assignment,
            moves,
            pressure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ElasticPolicy {
        ElasticPolicy {
            enabled: true,
            min_workers: 2,
            max_workers: 3,
            scale_out_pressure: 0.6,
            scale_in_pressure: 0.15,
            patience: 3,
            warmup_rounds: 1,
            max_scales: 2,
            spawn: true,
        }
    }

    /// A round where `slow` (1-based) sits at the horizon while the
    /// rest lead by `lead` ticks; `slow == 0` means everyone is even.
    fn round(assign: &Assignment, slow: u32, lead: u64) -> Vec<LpLoad> {
        (0..assign.n_lps())
            .map(|lp| LpLoad {
                executed: 100,
                rolled_back: 0,
                retained: 8,
                lvt_lead: if assign.proc_of(lp) == slow { 0 } else { lead },
            })
            .collect()
    }

    #[test]
    fn policy_validation() {
        assert!(ElasticPolicy::default().validate().is_ok());
        assert!(ElasticPolicy {
            min_workers: 0,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(ElasticPolicy {
            max_workers: 1,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(ElasticPolicy {
            scale_out_pressure: 1.5,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(ElasticPolicy {
            scale_in_pressure: 0.7,
            ..policy()
        }
        .validate()
        .is_err(),);
        assert!(ElasticPolicy {
            patience: 0,
            ..policy()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = ElasticPolicy {
            enabled: true,
            ..ElasticPolicy::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: ElasticPolicy = serde_json::from_str(&json).unwrap();
        assert!(back.enabled);
        assert_eq!(back.max_workers, p.max_workers);
        assert_eq!(back.max_scales, p.max_scales);
    }

    #[test]
    fn skew_scales_out_after_patience_rounds() {
        let assign = Assignment::contiguous(6, 2).unwrap();
        let mut ctl = ElasticController::new(policy(), 6);
        // Warmup + two strikes: nothing fires.
        for r in 1..=3 {
            assert!(
                ctl.observe(&assign, &round(&assign, 1, 500), true)
                    .is_none(),
                "round {r} fired early"
            );
        }
        let plan = ctl
            .observe(&assign, &round(&assign, 1, 500), true)
            .expect("fires on patience");
        assert_eq!(plan.direction, ScaleDirection::Out);
        assert_eq!((plan.from_workers, plan.to_workers), (2, 3));
        assert!(plan.pressure >= 0.6);
        assert_eq!(plan.retired(), None);
        // The newcomer gets its fair share and every move targets it.
        assert_eq!(plan.moves.len(), 2); // 6 / 3
        for mv in &plan.moves {
            assert_eq!(mv.to, 3);
            assert_eq!(mv.from, 1, "LPs come off the pressured worker");
        }
        assert_eq!(plan.assignment.n_workers(), 3);
        for w in 1..=3 {
            assert!(!plan.assignment.lps_of(w).is_empty(), "worker {w} idle");
        }
    }

    #[test]
    fn even_leads_scale_in_after_patience_rounds() {
        let assign = Assignment::contiguous(6, 3).unwrap();
        let mut ctl = ElasticController::new(policy(), 6);
        for r in 1..=3 {
            assert!(
                ctl.observe(&assign, &round(&assign, 0, 300), true)
                    .is_none(),
                "round {r} fired early"
            );
        }
        let plan = ctl
            .observe(&assign, &round(&assign, 0, 300), true)
            .expect("fires on patience");
        assert_eq!(plan.direction, ScaleDirection::In);
        assert_eq!((plan.from_workers, plan.to_workers), (3, 2));
        assert_eq!(plan.retired(), Some(3));
        // Every LP of the retiree is re-homed on a survivor.
        let retired_lps = assign.lps_of(3);
        assert_eq!(plan.moves.len(), retired_lps.len());
        for mv in &plan.moves {
            assert_eq!(mv.from, 3);
            assert!(mv.to < 3);
        }
        assert_eq!(plan.assignment.n_workers(), 2);
        assert_eq!(plan.assignment.n_lps(), 6);
    }

    #[test]
    fn dead_zone_between_thresholds_holds_membership() {
        let assign = Assignment::contiguous(6, 2).unwrap();
        let mut ctl = ElasticController::new(policy(), 6);
        // Pressure ≈ 0.4: above scale-in, below scale-out.
        for r in 1..=40 {
            let loads: Vec<LpLoad> = (0..6)
                .map(|lp| LpLoad {
                    lvt_lead: if assign.proc_of(lp) == 1 { 300 } else { 500 },
                    ..LpLoad::default()
                })
                .collect();
            assert!(
                ctl.observe(&assign, &loads, true).is_none(),
                "round {r} fired inside the dead zone"
            );
        }
    }

    #[test]
    fn bounds_and_budget_cap_the_run() {
        // At max_workers already: out-pressure never fires.
        let assign = Assignment::contiguous(6, 3).unwrap();
        let mut ctl = ElasticController::new(policy(), 6);
        for _ in 1..=20 {
            assert!(ctl
                .observe(&assign, &round(&assign, 1, 500), true)
                .is_none());
        }
        // At min_workers already: in-pressure never fires.
        let assign = Assignment::contiguous(6, 2).unwrap();
        let mut ctl = ElasticController::new(policy(), 6);
        for _ in 1..=20 {
            assert!(ctl
                .observe(&assign, &round(&assign, 0, 300), true)
                .is_none());
        }
        // max_scales bounds total firings.
        let mut ctl = ElasticController::new(
            ElasticPolicy {
                max_workers: 8,
                max_scales: 1,
                ..policy()
            },
            6,
        );
        let mut fired = 0;
        for _ in 1..=40 {
            if ctl
                .observe(&assign, &round(&assign, 1, 500), true)
                .is_some()
            {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "budget allows exactly max_scales");
    }

    #[test]
    fn out_pressure_without_a_spawn_path_never_fires() {
        let assign = Assignment::contiguous(6, 2).unwrap();
        let mut ctl = ElasticController::new(policy(), 6);
        for r in 1..=10 {
            assert!(
                ctl.observe(&assign, &round(&assign, 1, 500), false)
                    .is_none(),
                "round {r} fired with no way to add a worker"
            );
        }
        // The moment a joiner appears the accumulated strikes pay off.
        assert!(ctl
            .observe(&assign, &round(&assign, 1, 500), true)
            .is_some());
    }

    #[test]
    fn plans_never_leave_a_worker_idle() {
        for n_lps in 3..=12u32 {
            let assign = Assignment::contiguous(n_lps, 2).unwrap();
            let mut ctl = ElasticController::new(
                ElasticPolicy {
                    warmup_rounds: 0,
                    patience: 1,
                    ..policy()
                },
                n_lps,
            );
            let plan = ctl
                .observe(&assign, &round(&assign, 1, 500), true)
                .expect("fires immediately with patience 1");
            for w in 1..=plan.to_workers {
                assert!(
                    !plan.assignment.lps_of(w).is_empty(),
                    "{n_lps} LPs: worker {w} idle after scale-out"
                );
            }
        }
    }

    #[test]
    fn scale_out_is_infeasible_when_every_worker_holds_one_lp() {
        let assign = Assignment::contiguous(2, 2).unwrap();
        let mut ctl = ElasticController::new(
            ElasticPolicy {
                warmup_rounds: 0,
                patience: 1,
                ..policy()
            },
            2,
        );
        assert!(
            ctl.observe(&assign, &round(&assign, 1, 500), true)
                .is_none(),
            "2 LPs cannot cover 3 workers"
        );
    }
}
