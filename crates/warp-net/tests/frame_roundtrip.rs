//! Property test: the distributed executive's frame codec is a perfect
//! inverse of itself under *any* stream segmentation. TCP guarantees
//! byte order but not message boundaries — a frame can arrive split at
//! every byte, or ten frames can arrive fused in one read — so the
//! decoder must reconstruct exactly the encoded frame sequence no
//! matter how the byte stream is chopped up.

use proptest::prelude::*;
use warp_core::event::EventId;
use warp_core::gvt::GvtToken;
use warp_core::{Event, LpId, ObjectId, VirtualTime};
use warp_net::frame::{Frame, FrameDecoder, PROTO_VERSION};
use warp_net::PhysMsg;

/// A peer still speaking protocol v7 (pre-`DataBatch`) must be refused
/// at `Hello`: the version gate is what guarantees a v8 process never
/// sends a batch frame to a decoder that cannot parse tag 21.
#[test]
fn v7_peer_is_refused_at_hello() {
    use std::io::Write;
    use warp_net::{bind_loopback, TcpMesh, TcpMeshConfig};

    const { assert!(PROTO_VERSION >= 8, "DataBatch shipped in v8") };
    let listener = bind_loopback().unwrap();
    let addr = listener.local_addr().unwrap();
    let v7 = std::thread::spawn(move || {
        let s = std::net::TcpStream::connect(addr).unwrap();
        let hello = Frame::Hello {
            version: 7,
            proc_id: 1,
            n_procs: 2,
            session: 0,
        };
        (&s).write_all(&hello.encode()).unwrap();
        // Hold the socket open long enough for the refusal to happen.
        std::thread::sleep(std::time::Duration::from_millis(500));
    });
    let err = match TcpMesh::establish(TcpMeshConfig::new(0, 2), listener, &[]) {
        Ok(_) => panic!("establishment must fail against a v7 peer"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("version"), "{err}");
    v7.join().unwrap();
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        any::<u32>(),   // sender object
        any::<u64>(),   // serial
        any::<u32>(),   // destination object
        0u64..u64::MAX, // send time (finite)
        0u64..u64::MAX, // receive time (finite)
        any::<u16>(),   // kind
        proptest::collection::vec(any::<u8>(), 0..48),
        any::<bool>(), // make it an anti-message?
    )
        .prop_map(|(sender, serial, dst, st, rt, kind, payload, anti)| {
            let e = Event::new(
                EventId {
                    sender: ObjectId(sender),
                    serial,
                },
                ObjectId(dst),
                VirtualTime::new(st),
                VirtualTime::new(rt),
                kind,
                payload,
            );
            if anti {
                e.to_anti()
            } else {
                e
            }
        })
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (any::<u16>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(version, proc_id, n_procs, session)| {
                Frame::Hello {
                    version,
                    proc_id,
                    n_procs,
                    session,
                }
            }
        ),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(arb_event(), 0..5),
        )
            .prop_map(|(seq, epoch, src, dst, events)| Frame::Data {
                seq,
                epoch,
                msg: PhysMsg {
                    src: LpId(src),
                    dst: LpId(dst),
                    events,
                },
            }),
        // Protocol v8: the on-the-wire aggregation batch — several
        // same-link physical messages coalesced into one frame.
        (
            any::<u64>(),
            proptest::collection::vec(
                (
                    any::<u32>(),
                    any::<u32>(),
                    any::<u32>(),
                    proptest::collection::vec(arb_event(), 0..4),
                )
                    .prop_map(|(epoch, src, dst, events)| {
                        (
                            epoch,
                            PhysMsg {
                                src: LpId(src),
                                dst: LpId(dst),
                                events,
                            },
                        )
                    }),
                0..5,
            ),
        )
            .prop_map(|(seq, entries)| Frame::DataBatch { seq, entries }),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<i64>()).prop_map(
            |(dst_lp, round, min, count)| Frame::Token {
                dst_lp,
                token: GvtToken {
                    round,
                    // from_ticks: ∞ is legitimate on the wire.
                    min: VirtualTime::from_ticks(min),
                    count,
                },
            }
        ),
        (any::<u32>(), any::<u64>()).prop_map(|(dst_lp, gvt)| Frame::GvtNews {
            dst_lp,
            gvt: VirtualTime::from_ticks(gvt),
        }),
        Just(Frame::Heartbeat),
        proptest::collection::vec(any::<u8>(), 0..96).prop_map(Frame::Report),
        Just(Frame::Bye),
        any::<u64>().prop_map(|gvt| Frame::Progress {
            gvt: VirtualTime::from_ticks(gvt),
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(ckpt, gvt)| Frame::SnapshotReq {
            ckpt,
            gvt: VirtualTime::from_ticks(gvt),
        }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(ckpt, gvt, payload)| Frame::Snapshot {
                ckpt,
                gvt: VirtualTime::from_ticks(gvt),
                payload,
            }),
        (any::<u32>(), any::<u64>()).prop_map(|(ckpt, gvt)| Frame::SnapshotAck {
            ckpt,
            gvt: VirtualTime::from_ticks(gvt),
        }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(session, gvt, payload)| Frame::Resume {
                session,
                gvt: VirtualTime::from_ticks(gvt),
                payload,
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(session, gvt, seq, last, payload)| Frame::ResumeChunk {
                session,
                gvt: VirtualTime::from_ticks(gvt),
                seq,
                last,
                payload,
            }),
        proptest::collection::vec(any::<u8>(), 0..96).prop_map(Frame::Telemetry),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(gvt, lp, executed, rolled_back, retained, lvt_lead)| {
                Frame::LoadReport {
                    gvt: VirtualTime::from_ticks(gvt),
                    lp,
                    executed,
                    rolled_back,
                    retained,
                    lvt_lead,
                }
            }),
        any::<u64>().prop_map(|gvt| Frame::Rebalance {
            gvt: VirtualTime::from_ticks(gvt),
        }),
        any::<u16>().prop_map(|version| Frame::Join { version }),
        any::<u64>().prop_map(|gvt| Frame::Retire {
            gvt: VirtualTime::from_ticks(gvt),
        }),
        any::<u64>().prop_map(|gvt| Frame::DrainAck {
            gvt: VirtualTime::from_ticks(gvt),
        }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(session, worker_id, horizon)| {
            Frame::Reattach {
                session,
                worker_id,
                // from_ticks: ∞ is legitimate (a worker that never saw
                // a checkpoint reattaches with an unbounded horizon).
                horizon: VirtualTime::from_ticks(horizon),
            }
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        .. ProptestConfig::default()
    })]

    /// encode → chop at arbitrary boundaries → decode ≡ identity.
    #[test]
    fn frames_survive_arbitrary_segmentation(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        chunks in proptest::collection::vec(1usize..31, 1..40),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut turn = 0;
        while pos < stream.len() {
            let n = chunks[turn % chunks.len()].min(stream.len() - pos);
            turn += 1;
            dec.push(&stream[pos..pos + n]);
            pos += n;
            loop {
                match dec.next() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break,
                    Err(e) => return Err(proptest::prelude::TestCaseError(format!(
                        "decoder rejected a valid stream: {e}"
                    ))),
                }
            }
        }

        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A resume payload split into `ResumeChunk` frames at *arbitrary*
    /// chunk boundaries — then pushed through the codec with *arbitrary*
    /// TCP segmentation on top — reassembles to exactly the original
    /// bytes, with the sequence numbers contiguous and only the final
    /// chunk flagged `last`. This is the wire half of the streamed
    /// resume protocol (the executive's reassembly loop applies the
    /// same seq/last rules).
    #[test]
    fn resume_chunk_streams_reassemble_under_any_segmentation(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(1usize..97, 1..16),
        tcp_chunks in proptest::collection::vec(1usize..53, 1..24),
    ) {
        // Split the payload into chunk frames at the given widths
        // (cycled); always at least one chunk, even for empty payloads.
        let mut frames = Vec::new();
        let mut off = 0;
        let mut seq = 0u32;
        loop {
            let width = cuts[seq as usize % cuts.len()].min(payload.len() - off);
            let end = off + width;
            let last = end == payload.len();
            frames.push(Frame::ResumeChunk {
                session: 7,
                gvt: VirtualTime::from_ticks(42),
                seq,
                last,
                payload: payload[off..end].to_vec(),
            });
            seq += 1;
            off = end;
            if last {
                break;
            }
        }

        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }

        // Decode under arbitrary TCP segmentation and reassemble.
        let mut dec = FrameDecoder::new();
        let mut rebuilt = Vec::new();
        let mut next_seq = 0u32;
        let mut finished = false;
        let mut pos = 0;
        let mut turn = 0;
        while pos < stream.len() {
            let n = tcp_chunks[turn % tcp_chunks.len()].min(stream.len() - pos);
            turn += 1;
            dec.push(&stream[pos..pos + n]);
            pos += n;
            loop {
                match dec.next() {
                    Ok(Some(Frame::ResumeChunk { session, gvt, seq, last, payload })) => {
                        prop_assert_eq!(session, 7);
                        prop_assert_eq!(gvt, VirtualTime::from_ticks(42));
                        prop_assert_eq!(seq, next_seq);
                        prop_assert!(!finished, "chunk after the last chunk");
                        next_seq += 1;
                        rebuilt.extend_from_slice(&payload);
                        finished = last;
                    }
                    Ok(Some(other)) => return Err(proptest::prelude::TestCaseError(format!(
                        "non-ResumeChunk frame decoded: {other:?}"
                    ))),
                    Ok(None) => break,
                    Err(e) => return Err(proptest::prelude::TestCaseError(format!(
                        "decoder rejected a valid stream: {e}"
                    ))),
                }
            }
        }

        prop_assert!(finished, "no chunk carried the last flag");
        prop_assert_eq!(&rebuilt, &payload);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A frame's encoding is deterministic and self-contained: encoding
    /// twice yields identical bytes, and each frame decodes alone.
    #[test]
    fn single_frame_roundtrip_and_determinism(frame in arb_frame()) {
        let a = frame.encode();
        let b = frame.encode();
        prop_assert_eq!(&a, &b);

        let mut dec = FrameDecoder::new();
        dec.push(&a);
        match dec.next() {
            Ok(Some(back)) => prop_assert_eq!(back, frame),
            other => return Err(proptest::prelude::TestCaseError(format!(
                "expected one frame, got {other:?}"
            ))),
        }
        prop_assert_eq!(dec.pending(), 0);
    }
}
