//! The distributed executive's wire protocol: length-prefixed, versioned
//! frames over a byte stream.
//!
//! Every frame is `[u32 length (LE)][u8 tag][body]`, with the body
//! encoded by the canonical `warp_core::wire` writers — the same
//! encoding lazy cancellation relies on, so event bytes are identical on
//! every platform and a digest computed from decoded events equals one
//! computed locally. The codec is transport-agnostic: [`FrameDecoder`]
//! consumes bytes in arbitrary chunks (TCP segment boundaries carry no
//! meaning), and [`Frame::encode`] produces the exact byte run to write.
//!
//! Frame taxonomy:
//!
//! * `Hello` — handshake; first frame on every connection, carrying the
//!   protocol version and the sender's process coordinates. A version
//!   mismatch aborts the connection before any simulation traffic.
//! * `Data` — a physical message (aggregated events) tagged with the
//!   sender's Mattern epoch.
//! * `DataBatch` — several physical messages for the same link coalesced
//!   under the adaptive aggregation window (v8). Consumes one link
//!   sequence number for the whole batch; receivers fan the entries out
//!   in order, so delivery is indistinguishable from the unbatched
//!   stream.
//! * `Token` / `GvtNews` — the circulating GVT token and the controller's
//!   round results, addressed to a destination LP so the receiving
//!   process can route them to the right LP thread.
//! * `Heartbeat` — idle-link liveness probe; carries nothing and never
//!   reaches LP threads.
//! * `Report` — a worker's end-of-run summary (opaque JSON bytes; the
//!   executive layer owns the schema).
//! * `Telemetry` — a worker's periodic observability batch (opaque JSON
//!   bytes, same ownership rule as `Report`), piggybacked on GVT rounds
//!   so the coordinator can stream cluster-wide metric series without a
//!   side channel.
//! * `LoadReport` — one LP's cumulative progress counters at a GVT round
//!   (same advisory contract as `Telemetry`); the coordinator's balance
//!   controller samples these to decide LP migrations.
//! * `Rebalance` — coordinator announcement that the session ends at a
//!   checkpoint barrier so the cluster can regroup under a new LP
//!   assignment.
//! * `Join` / `Retire` / `DrainAck` — the elastic membership plane
//!   (v6). `Join` is the one frame a `--join` worker sends on its
//!   admission connection before switching to the coordinator's line
//!   protocol; `Retire` tells a drained worker its LPs have been
//!   checkpointed and re-homed so it can leave; `DrainAck` is the
//!   retiree's confirmation, after which it exits cleanly.
//! * `Reattach` — the failover plane (v7): a parked worker's one-frame
//!   re-admission handshake to a restarted coordinator, announcing the
//!   session it last ran, its mesh slot, and the checkpoint horizon its
//!   retained runtimes can roll back to.
//! * `Bye` — graceful shutdown: the peer finished sending and will close
//!   after draining. A connection that dies *without* `Bye` is a crash.
//! * `Progress` / `SnapshotReq` / `Snapshot` / `SnapshotAck` / `Resume` —
//!   the checkpoint/recovery plane. Workers report committed GVT
//!   (`Progress`); the coordinator requests a checkpoint at a GVT
//!   (`SnapshotReq`), each worker answers with its wire-encoded committed
//!   delta (`Snapshot`), the coordinator confirms persistence
//!   (`SnapshotAck`, letting workers advance their fossil pin), and after
//!   a failure `Resume` re-seeds a worker with the accumulated checkpoint
//!   payload for a new session epoch. `ResumeChunk` (v5) streams that
//!   payload as a contiguous sequence of bounded slices instead, so a
//!   long job's delta chain is never limited by the frame-size cap.
//!
//! `Hello` additionally carries a *session epoch*: recovery re-establishes
//! the mesh under an incremented session, so connection attempts left over
//! from a dead session fail the handshake instead of leaking stale frames
//! into the resumed run. `Data` frames carry a per-link sequence number,
//! letting receivers drop duplicates, reorder delayed frames back into
//! send order, and detect gaps (lost frames) as an unclean link failure.

use crate::aggregate::PhysMsg;
use std::fmt;
use warp_core::gvt::GvtToken;
use warp_core::wire::{
    decode_event, encode_event, read_vt, write_vt, PayloadReader, PayloadWriter,
};
use warp_core::{LpId, VirtualTime};

/// Protocol version carried in `Hello`; bump on any frame-format change.
/// v2: session epochs in `Hello`, per-link `Data` sequence numbers, and
/// the checkpoint/recovery frames. v3: the `Telemetry` streaming frame.
/// v4: the load-balance plane (`LoadReport`, `Rebalance`). v5: the
/// chunked `ResumeChunk` stream replacing monolithic `Resume` payloads.
/// v6: the elastic membership plane (`Join`, `Retire`, `DrainAck`).
/// v7: the failover plane (`Reattach` — a parked worker re-admitting
/// itself to a restarted coordinator). v8: the on-the-wire aggregation
/// batch (`DataBatch` — several same-link physical messages coalesced
/// under the adaptive DyMA window into one frame).
pub const PROTO_VERSION: u16 = 8;

/// Default upper bound on a frame body. Protects the decoder from
/// allocating gigabytes off a corrupt or malicious length prefix.
/// [`FrameDecoder::with_limit`] can lower (or raise) the bound per link.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Connection handshake; must be the first frame both ways.
    Hello {
        /// Sender's [`PROTO_VERSION`].
        version: u16,
        /// Sender's process id in the mesh (0 = coordinator).
        proc_id: u32,
        /// Total process count the sender was configured with.
        n_procs: u32,
        /// Mesh session epoch (0 on a fresh run; incremented by each
        /// recovery re-establishment). Both sides must agree.
        session: u32,
    },
    /// Application events between two LPs.
    Data {
        /// Per-link monotone sequence number, assigned by the sending
        /// link writer. Lets the receiver deduplicate, restore send
        /// order, and detect frame loss.
        seq: u64,
        /// Sender's Mattern epoch at transmission time.
        epoch: u32,
        /// The physical message (src/dst LPs + events).
        msg: PhysMsg,
    },
    /// Several physical messages for the same link, coalesced under the
    /// on-the-wire aggregation window (v8). Semantically identical to a
    /// run of [`Frame::Data`] frames in entry order: the batch consumes
    /// exactly one link sequence number, so the receiver's
    /// dedup/reorder/gap machinery treats it as a single unit, then
    /// fans the entries out to LPs in order. Each entry keeps its own
    /// Mattern epoch — entries staged on either side of an epoch bump
    /// may share a batch.
    DataBatch {
        /// Per-link monotone sequence number for the whole batch.
        seq: u64,
        /// `(epoch, msg)` pairs in original send order.
        entries: Vec<(u32, PhysMsg)>,
    },
    /// The circulating GVT token, addressed to a specific LP.
    Token {
        /// Global LP the token is bound for.
        dst_lp: u32,
        /// The token itself.
        token: GvtToken,
    },
    /// A freshly computed GVT, addressed to a specific LP (∞ = shut down).
    GvtNews {
        /// Global LP the news is bound for.
        dst_lp: u32,
        /// The new commit horizon.
        gvt: VirtualTime,
    },
    /// Idle-link liveness probe.
    Heartbeat,
    /// A worker's end-of-run summary (opaque to the transport).
    Report(Vec<u8>),
    /// Graceful end-of-stream announcement.
    Bye,
    /// Worker → coordinator: a freshly announced commit horizon.
    Progress {
        /// The GVT the worker's controller LP just announced.
        gvt: VirtualTime,
    },
    /// Coordinator → workers: take a checkpoint of everything committed
    /// below `gvt`.
    SnapshotReq {
        /// Checkpoint id, monotone within a session.
        ckpt: u32,
        /// The checkpoint horizon (an announced GVT).
        gvt: VirtualTime,
    },
    /// Worker → coordinator: this worker's committed delta for one
    /// checkpoint (opaque `warp_core::wire` bytes; `warp-exec` owns the
    /// schema).
    Snapshot {
        /// Checkpoint id being answered.
        ckpt: u32,
        /// Echo of the checkpoint horizon.
        gvt: VirtualTime,
        /// Wire-encoded per-LP committed windows.
        payload: Vec<u8>,
    },
    /// Coordinator → workers: checkpoint `ckpt` is persisted everywhere;
    /// history below `gvt` may be fossil-collected.
    SnapshotAck {
        /// Checkpoint id now stable.
        ckpt: u32,
        /// The persisted horizon.
        gvt: VirtualTime,
    },
    /// Coordinator → worker at the start of a recovery session: rebuild
    /// from the accumulated checkpoint payload and resume from `gvt`.
    Resume {
        /// The session epoch this resume belongs to.
        session: u32,
        /// The restore horizon (the last persisted checkpoint GVT).
        gvt: VirtualTime,
        /// Concatenated checkpoint deltas (schema owned by `warp-exec`).
        payload: Vec<u8>,
    },
    /// Coordinator → worker: one slice of a streamed resume payload
    /// (protocol v5). The coordinator splits the encoded checkpoint
    /// chain at a configurable chunk size and sends the pieces in `seq`
    /// order over the same FIFO link; the worker concatenates payloads
    /// until `last` and then decodes exactly as it would a monolithic
    /// [`Frame::Resume`]. This keeps individual frames far below the
    /// frame-size cap no matter how long the delta chain has grown.
    ResumeChunk {
        /// The session epoch this resume belongs to.
        session: u32,
        /// The restore horizon (the last persisted checkpoint GVT).
        gvt: VirtualTime,
        /// Zero-based chunk index; must arrive contiguously.
        seq: u32,
        /// True on the final chunk of the stream.
        last: bool,
        /// This chunk's slice of the concatenated checkpoint deltas.
        payload: Vec<u8>,
    },
    /// Worker → coordinator: a streamed observability batch (opaque to
    /// the transport; `warp-exec` owns the JSON schema). Purely advisory:
    /// loss or reordering never affects simulation correctness.
    Telemetry(Vec<u8>),
    /// Worker → coordinator: one LP's cumulative load counters at a GVT
    /// round — the sampled output `O` of the cluster-level balance
    /// controller. Advisory like `Telemetry`: loss only delays a
    /// migration decision, never affects correctness.
    LoadReport {
        /// The GVT round the sample belongs to.
        gvt: VirtualTime,
        /// The reporting LP (global id).
        lp: u32,
        /// Events executed so far, including ones later rolled back.
        executed: u64,
        /// Events undone by rollback so far.
        rolled_back: u64,
        /// Retained history items (input queue + output log + state
        /// snapshots) at the sample instant.
        retained: u64,
        /// `lvt_front - gvt` in ticks: the LP's speculation lead over
        /// the committed horizon.
        lvt_lead: u64,
    },
    /// Coordinator → workers: end this session cleanly at the checkpoint
    /// barrier so the cluster can regroup under a new LP assignment.
    /// Workers treat it like a planned recovery: abort local LP threads,
    /// re-announce, and await the next session's `Resume`.
    Rebalance {
        /// The checkpoint horizon the new session will resume from.
        gvt: VirtualTime,
    },
    /// Joiner → coordinator: first (and only) frame on an admission
    /// connection (v6). A fresh `warp-worker --join ADDR` process dials
    /// the coordinator's admission endpoint, sends `Join`, and then
    /// speaks the coordinator's newline control protocol over the same
    /// stream until it is admitted into a session's successor. A
    /// version mismatch drops the connection before any control
    /// traffic.
    Join {
        /// Joiner's [`PROTO_VERSION`].
        version: u16,
    },
    /// Coordinator → retiree at the scale-in checkpoint barrier (v6):
    /// everything this worker owns is persisted below `gvt` and
    /// re-homed on the survivors; abort local LP threads, acknowledge
    /// with [`Frame::DrainAck`], and exit cleanly.
    Retire {
        /// The checkpoint horizon the shrunk cluster resumes from.
        gvt: VirtualTime,
    },
    /// Retiree → coordinator (v6): the drain is complete; this is the
    /// retiree's last frame before a graceful shutdown.
    DrainAck {
        /// Echo of the drain horizon.
        gvt: VirtualTime,
    },
    /// Parked worker → restarted coordinator: first (and only) frame on
    /// a re-admission connection (v7). A worker that lost its
    /// coordinator but holds a rejoin grace dials the admission
    /// endpoint, announces which session it last ran, which mesh slot
    /// it occupied, and the checkpoint horizon its retained runtimes
    /// can rewind to; the coordinator reconciles that horizon against
    /// its journal and either re-adopts the worker in place
    /// (rollback-in-place, zero replay) or treats it as fresh. After
    /// `Reattach` the stream switches to the coordinator's newline
    /// control protocol, exactly like [`Frame::Join`].
    Reattach {
        /// The last session epoch the worker participated in.
        session: u32,
        /// The worker's mesh process id in that session (1-based;
        /// 0 is the coordinator and never reattaches).
        worker_id: u32,
        /// The fossil-pinned horizon the worker's retained runtimes can
        /// roll back to (its last `SnapshotAck` GVT).
        horizon: VirtualTime,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_DATA: u8 = 2;
const TAG_TOKEN: u8 = 3;
const TAG_GVT_NEWS: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_REPORT: u8 = 6;
const TAG_BYE: u8 = 7;
const TAG_PROGRESS: u8 = 8;
const TAG_SNAPSHOT_REQ: u8 = 9;
const TAG_SNAPSHOT: u8 = 10;
const TAG_SNAPSHOT_ACK: u8 = 11;
const TAG_RESUME: u8 = 12;
const TAG_TELEMETRY: u8 = 13;
const TAG_LOAD_REPORT: u8 = 14;
const TAG_REBALANCE: u8 = 15;
const TAG_RESUME_CHUNK: u8 = 16;
const TAG_JOIN: u8 = 17;
const TAG_RETIRE: u8 = 18;
const TAG_DRAIN_ACK: u8 = 19;
const TAG_REATTACH: u8 = 20;
const TAG_DATA_BATCH: u8 = 21;

/// Why a byte stream failed to decode as frames.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// Unknown frame tag — desynchronized stream or version skew.
    BadTag(u8),
    /// Declared frame length exceeds the decoder's frame-body cap
    /// ([`MAX_FRAME_BYTES`] unless lowered via
    /// [`FrameDecoder::with_limit`]).
    TooLarge(usize),
    /// The body did not decode as the tag's schema.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t:#x}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the receiver's frame cap")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame body: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Encode as a complete length-prefixed frame, appended to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = PayloadWriter::new();
        match self {
            Frame::Hello {
                version,
                proc_id,
                n_procs,
                session,
            } => {
                w.u8(TAG_HELLO)
                    .u16(*version)
                    .u32(*proc_id)
                    .u32(*n_procs)
                    .u32(*session);
            }
            Frame::Data { seq, epoch, msg } => {
                w.reserve(
                    25 + msg
                        .events
                        .iter()
                        .map(warp_core::wire::encoded_event_len)
                        .sum::<usize>(),
                );
                w.u8(TAG_DATA)
                    .u64(*seq)
                    .u32(*epoch)
                    .u32(msg.src.0)
                    .u32(msg.dst.0)
                    .u32(msg.events.len() as u32);
                for e in &msg.events {
                    encode_event(&mut w, e);
                }
            }
            Frame::DataBatch { seq, entries } => {
                w.u8(TAG_DATA_BATCH).u64(*seq).u32(entries.len() as u32);
                for (epoch, msg) in entries {
                    w.u32(*epoch)
                        .u32(msg.src.0)
                        .u32(msg.dst.0)
                        .u32(msg.events.len() as u32);
                    for e in &msg.events {
                        encode_event(&mut w, e);
                    }
                }
            }
            Frame::Token { dst_lp, token } => {
                w.u8(TAG_TOKEN).u32(*dst_lp).u32(token.round);
                write_vt(&mut w, token.min);
                w.i64(token.count);
            }
            Frame::GvtNews { dst_lp, gvt } => {
                w.u8(TAG_GVT_NEWS).u32(*dst_lp);
                write_vt(&mut w, *gvt);
            }
            Frame::Heartbeat => {
                w.u8(TAG_HEARTBEAT);
            }
            Frame::Report(bytes) => {
                w.u8(TAG_REPORT).bytes(bytes);
            }
            Frame::Bye => {
                w.u8(TAG_BYE);
            }
            Frame::Progress { gvt } => {
                w.u8(TAG_PROGRESS);
                write_vt(&mut w, *gvt);
            }
            Frame::SnapshotReq { ckpt, gvt } => {
                w.u8(TAG_SNAPSHOT_REQ).u32(*ckpt);
                write_vt(&mut w, *gvt);
            }
            Frame::Snapshot { ckpt, gvt, payload } => {
                w.u8(TAG_SNAPSHOT).u32(*ckpt);
                write_vt(&mut w, *gvt);
                w.bytes(payload);
            }
            Frame::SnapshotAck { ckpt, gvt } => {
                w.u8(TAG_SNAPSHOT_ACK).u32(*ckpt);
                write_vt(&mut w, *gvt);
            }
            Frame::Resume {
                session,
                gvt,
                payload,
            } => {
                w.u8(TAG_RESUME).u32(*session);
                write_vt(&mut w, *gvt);
                w.bytes(payload);
            }
            Frame::ResumeChunk {
                session,
                gvt,
                seq,
                last,
                payload,
            } => {
                w.u8(TAG_RESUME_CHUNK).u32(*session);
                write_vt(&mut w, *gvt);
                w.u32(*seq).u8(u8::from(*last)).bytes(payload);
            }
            Frame::Telemetry(bytes) => {
                w.u8(TAG_TELEMETRY).bytes(bytes);
            }
            Frame::LoadReport {
                gvt,
                lp,
                executed,
                rolled_back,
                retained,
                lvt_lead,
            } => {
                w.u8(TAG_LOAD_REPORT);
                write_vt(&mut w, *gvt);
                w.u32(*lp)
                    .u64(*executed)
                    .u64(*rolled_back)
                    .u64(*retained)
                    .u64(*lvt_lead);
            }
            Frame::Rebalance { gvt } => {
                w.u8(TAG_REBALANCE);
                write_vt(&mut w, *gvt);
            }
            Frame::Join { version } => {
                w.u8(TAG_JOIN).u16(*version);
            }
            Frame::Retire { gvt } => {
                w.u8(TAG_RETIRE);
                write_vt(&mut w, *gvt);
            }
            Frame::DrainAck { gvt } => {
                w.u8(TAG_DRAIN_ACK);
                write_vt(&mut w, *gvt);
            }
            Frame::Reattach {
                session,
                worker_id,
                horizon,
            } => {
                w.u8(TAG_REATTACH).u32(*session).u32(*worker_id);
                write_vt(&mut w, *horizon);
            }
        }
        let body = w.finish();
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }

    /// Encode as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let mal = |e: warp_core::KernelError| FrameError::Malformed(e.to_string());
        let mut r = PayloadReader::new(body);
        let tag = r.u8().map_err(mal)?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                version: r.u16().map_err(mal)?,
                proc_id: r.u32().map_err(mal)?,
                n_procs: r.u32().map_err(mal)?,
                session: r.u32().map_err(mal)?,
            },
            TAG_DATA => {
                let seq = r.u64().map_err(mal)?;
                let epoch = r.u32().map_err(mal)?;
                let src = LpId(r.u32().map_err(mal)?);
                let dst = LpId(r.u32().map_err(mal)?);
                let n = r.u32().map_err(mal)? as usize;
                if n > body.len() {
                    // Each event needs ≥ 1 byte; an impossible count is
                    // corruption, not a huge allocation request.
                    return Err(FrameError::Malformed(format!(
                        "event count {n} exceeds body size {}",
                        body.len()
                    )));
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(decode_event(&mut r).map_err(mal)?);
                }
                Frame::Data {
                    seq,
                    epoch,
                    msg: PhysMsg { src, dst, events },
                }
            }
            TAG_DATA_BATCH => {
                let seq = r.u64().map_err(mal)?;
                let n_entries = r.u32().map_err(mal)? as usize;
                if n_entries > body.len() {
                    // Each entry needs ≥ 1 byte; an impossible count is
                    // corruption, not a huge allocation request.
                    return Err(FrameError::Malformed(format!(
                        "batch entry count {n_entries} exceeds body size {}",
                        body.len()
                    )));
                }
                let mut entries = Vec::with_capacity(n_entries);
                for _ in 0..n_entries {
                    let epoch = r.u32().map_err(mal)?;
                    let src = LpId(r.u32().map_err(mal)?);
                    let dst = LpId(r.u32().map_err(mal)?);
                    let n = r.u32().map_err(mal)? as usize;
                    if n > body.len() {
                        return Err(FrameError::Malformed(format!(
                            "event count {n} exceeds body size {}",
                            body.len()
                        )));
                    }
                    let mut events = Vec::with_capacity(n);
                    for _ in 0..n {
                        events.push(decode_event(&mut r).map_err(mal)?);
                    }
                    entries.push((epoch, PhysMsg { src, dst, events }));
                }
                Frame::DataBatch { seq, entries }
            }
            TAG_TOKEN => Frame::Token {
                dst_lp: r.u32().map_err(mal)?,
                token: GvtToken {
                    round: r.u32().map_err(mal)?,
                    min: read_vt(&mut r).map_err(mal)?,
                    count: r.i64().map_err(mal)?,
                },
            },
            TAG_GVT_NEWS => Frame::GvtNews {
                dst_lp: r.u32().map_err(mal)?,
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat,
            TAG_REPORT => Frame::Report(r.bytes().map_err(mal)?.to_vec()),
            TAG_BYE => Frame::Bye,
            TAG_PROGRESS => Frame::Progress {
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_SNAPSHOT_REQ => Frame::SnapshotReq {
                ckpt: r.u32().map_err(mal)?,
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_SNAPSHOT => Frame::Snapshot {
                ckpt: r.u32().map_err(mal)?,
                gvt: read_vt(&mut r).map_err(mal)?,
                payload: r.bytes().map_err(mal)?.to_vec(),
            },
            TAG_SNAPSHOT_ACK => Frame::SnapshotAck {
                ckpt: r.u32().map_err(mal)?,
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_RESUME => Frame::Resume {
                session: r.u32().map_err(mal)?,
                gvt: read_vt(&mut r).map_err(mal)?,
                payload: r.bytes().map_err(mal)?.to_vec(),
            },
            TAG_RESUME_CHUNK => {
                let session = r.u32().map_err(mal)?;
                let gvt = read_vt(&mut r).map_err(mal)?;
                let seq = r.u32().map_err(mal)?;
                let last = match r.u8().map_err(mal)? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(FrameError::Malformed(format!(
                            "ResumeChunk `last` flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                Frame::ResumeChunk {
                    session,
                    gvt,
                    seq,
                    last,
                    payload: r.bytes().map_err(mal)?.to_vec(),
                }
            }
            TAG_TELEMETRY => Frame::Telemetry(r.bytes().map_err(mal)?.to_vec()),
            TAG_LOAD_REPORT => Frame::LoadReport {
                gvt: read_vt(&mut r).map_err(mal)?,
                lp: r.u32().map_err(mal)?,
                executed: r.u64().map_err(mal)?,
                rolled_back: r.u64().map_err(mal)?,
                retained: r.u64().map_err(mal)?,
                lvt_lead: r.u64().map_err(mal)?,
            },
            TAG_REBALANCE => Frame::Rebalance {
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_JOIN => Frame::Join {
                version: r.u16().map_err(mal)?,
            },
            TAG_RETIRE => Frame::Retire {
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_DRAIN_ACK => Frame::DrainAck {
                gvt: read_vt(&mut r).map_err(mal)?,
            },
            TAG_REATTACH => Frame::Reattach {
                session: r.u32().map_err(mal)?,
                worker_id: r.u32().map_err(mal)?,
                horizon: read_vt(&mut r).map_err(mal)?,
            },
            other => return Err(FrameError::BadTag(other)),
        };
        if r.remaining() != 0 {
            return Err(FrameError::Malformed(format!(
                "{} trailing bytes after frame body",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Incremental frame decoder over an arbitrarily-chunked byte stream.
///
/// Feed bytes with [`push`](FrameDecoder::push) as they arrive, then
/// drain complete frames with [`next`](FrameDecoder::next). Partial
/// frames stay buffered until their remaining bytes arrive; decode
/// errors are sticky (a desynchronized stream cannot be resynchronized).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
    limit: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::with_limit(MAX_FRAME_BYTES)
    }
}

impl FrameDecoder {
    /// Fresh decoder with an empty buffer and the default
    /// [`MAX_FRAME_BYTES`] body cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh decoder enforcing a custom frame-body cap. Tests and
    /// memory-constrained deployments lower it; the sender must keep
    /// its frames (chunked resume payloads in particular) under the
    /// receiver's cap or the link is declared corrupt.
    pub fn with_limit(limit: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            poisoned: false,
            limit,
        }
    }

    /// Append received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow the buffer forever.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 << 10) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (diagnostics).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, `Ok(None)` if more bytes are
    /// needed. After an error every subsequent call errors too.
    // Not `Iterator`: `Ok(None)` means "need more bytes", not "done".
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Malformed("stream already failed".into()));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len > self.limit {
            self.poisoned = true;
            return Err(FrameError::TooLarge(len));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        match Frame::decode_body(body) {
            Ok(frame) => {
                self.pos += 4 + len;
                Ok(Some(frame))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::event::EventId;
    use warp_core::{Event, ObjectId};

    fn ev(serial: u64, rt: u64) -> Event {
        Event::new(
            EventId {
                sender: ObjectId(2),
                serial,
            },
            ObjectId(5),
            VirtualTime::new(1),
            VirtualTime::new(rt),
            3,
            vec![serial as u8; 4],
        )
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTO_VERSION,
                proc_id: 2,
                n_procs: 3,
                session: 7,
            },
            Frame::Data {
                seq: 41,
                epoch: 4,
                msg: PhysMsg {
                    src: LpId(1),
                    dst: LpId(0),
                    events: vec![ev(1, 10), ev(2, 11).to_anti()],
                },
            },
            Frame::DataBatch {
                seq: 42,
                entries: vec![
                    (
                        4,
                        PhysMsg {
                            src: LpId(1),
                            dst: LpId(0),
                            events: vec![ev(3, 12)],
                        },
                    ),
                    (
                        5,
                        PhysMsg {
                            src: LpId(2),
                            dst: LpId(0),
                            events: vec![ev(4, 13), ev(5, 14).to_anti()],
                        },
                    ),
                ],
            },
            Frame::Token {
                dst_lp: 2,
                token: GvtToken {
                    round: 9,
                    min: VirtualTime::new(44),
                    count: -2,
                },
            },
            Frame::GvtNews {
                dst_lp: 1,
                gvt: VirtualTime::INFINITY,
            },
            Frame::Heartbeat,
            Frame::Report(b"{\"lp\":0}".to_vec()),
            Frame::Bye,
            Frame::Progress {
                gvt: VirtualTime::new(17),
            },
            Frame::SnapshotReq {
                ckpt: 3,
                gvt: VirtualTime::new(17),
            },
            Frame::Snapshot {
                ckpt: 3,
                gvt: VirtualTime::new(17),
                payload: vec![0xAA; 9],
            },
            Frame::SnapshotAck {
                ckpt: 3,
                gvt: VirtualTime::new(17),
            },
            Frame::Resume {
                session: 2,
                gvt: VirtualTime::new(17),
                payload: vec![],
            },
            Frame::ResumeChunk {
                session: 2,
                gvt: VirtualTime::new(17),
                seq: 3,
                last: true,
                payload: vec![0x5C; 7],
            },
            Frame::Telemetry(b"{\"samples\":[]}".to_vec()),
            Frame::LoadReport {
                gvt: VirtualTime::new(17),
                lp: 5,
                executed: 420,
                rolled_back: 12,
                retained: 96,
                lvt_lead: 33,
            },
            Frame::Rebalance {
                gvt: VirtualTime::new(17),
            },
            Frame::Join {
                version: PROTO_VERSION,
            },
            Frame::Retire {
                gvt: VirtualTime::new(17),
            },
            Frame::DrainAck {
                gvt: VirtualTime::new(17),
            },
            Frame::Reattach {
                session: 3,
                worker_id: 2,
                horizon: VirtualTime::new(17),
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let mut d = FrameDecoder::new();
            d.push(&bytes);
            assert_eq!(d.next().unwrap(), Some(frame));
            assert_eq!(d.next().unwrap(), None);
            assert_eq!(d.pending(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut stream = Vec::new();
        for f in sample_frames() {
            f.encode_into(&mut stream);
        }
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            d.push(&[b]);
            while let Some(f) = d.next().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, sample_frames());
    }

    #[test]
    fn custom_decoder_limit_rejects_frames_the_default_allows() {
        let big = Frame::Telemetry(vec![0u8; 4096]);
        let bytes = big.encode();
        let mut strict = FrameDecoder::with_limit(1024);
        strict.push(&bytes);
        assert!(matches!(strict.next(), Err(FrameError::TooLarge(_))));
        let mut lax = FrameDecoder::new();
        lax.push(&bytes);
        assert_eq!(lax.next().unwrap(), Some(big));
    }

    #[test]
    fn resume_chunk_bad_last_flag_is_malformed() {
        let f = Frame::ResumeChunk {
            session: 1,
            gvt: VirtualTime::new(5),
            seq: 0,
            last: false,
            payload: vec![1, 2, 3],
        };
        let mut raw = f.encode();
        // The `last` flag is the byte just before the length-prefixed
        // payload (u32 len + 3 payload bytes) at the end of the frame.
        let flag_pos = raw.len() - 3 - 4 - 1;
        assert_eq!(raw[flag_pos], 0, "expected the cleared `last` flag here");
        raw[flag_pos] = 7;
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert!(matches!(d.next(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_and_sticky() {
        let mut d = FrameDecoder::new();
        d.push(&(u32::MAX).to_le_bytes());
        assert!(matches!(d.next(), Err(FrameError::TooLarge(_))));
        d.push(&Frame::Heartbeat.encode());
        assert!(d.next().is_err(), "poisoned decoder must stay failed");
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut raw = Frame::Heartbeat.encode();
        raw[4] = 0xEE; // the tag byte
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert_eq!(d.next(), Err(FrameError::BadTag(0xEE)));
    }

    #[test]
    fn trailing_garbage_in_body_is_an_error() {
        let mut raw = Frame::Bye.encode();
        raw[0] += 1; // claim one extra body byte...
        raw.push(0xAB); // ...and provide it
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert!(matches!(d.next(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn impossible_event_count_is_rejected_without_allocation() {
        let mut w = warp_core::wire::PayloadWriter::new();
        w.u8(2).u64(0).u32(0).u32(0).u32(1).u32(u32::MAX);
        let body = w.finish();
        let mut raw = (body.len() as u32).to_le_bytes().to_vec();
        raw.extend_from_slice(&body);
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert!(matches!(d.next(), Err(FrameError::Malformed(_))));
    }
}
