//! Deterministic fault injection for the process mesh.
//!
//! Recovery code that is only exercised by real crashes is recovery code
//! that has never run. This module makes every failure mode the
//! transport can suffer *reproducible*: a [`FaultPlan`] is a list of
//! seeded, declarative rules — drop, duplicate, or delay specific data
//! frames, partition a link, crash a process — that the TCP mesh applies
//! on the *sending* side of each link, keyed on the per-link [`Frame::Data`]
//! sequence number rather than wall-clock time, so the same plan perturbs
//! the same frames on every run.
//!
//! Rules carry a [`FaultScope`]. The default, [`FaultScope::Data`],
//! perturbs the application channel: `Data` frames, counted by their
//! per-link sequence number. [`FaultScope::Control`] instead targets the
//! GVT plane — `Token` and `GvtNews` frames, counted by their own
//! per-link ordinal — which is how a *wedged-but-connected* worker is
//! manufactured: data and heartbeats keep flowing, the Mattern ring goes
//! silent, and only a GVT-progress watchdog can tell anything is wrong.
//! Control scope deliberately honours only the loss-shaped kinds
//! (`Drop`, `Partition`, `Crash`); `Duplicate` and `Delay` degrade to
//! plain delivery, because a duplicated Mattern token corrupts the GVT
//! computation itself — a fault no transport-level recovery could
//! repair — and a reordered `GvtNews` could announce horizons backwards.
//! Heartbeats and the checkpoint frames are exempt in every scope:
//! dropping heartbeats is expressed more honestly as a
//! [`FaultKind::Partition`]. What the plan models is an unreliable
//! channel; what recovery must guarantee is that the committed trace
//! survives it anyway.
//!
//! Plans are plain serde values so they can ride inside `ClusterJob`
//! specs and `WorkerInit` lines; each rule can be pinned to a session
//! epoch (usually 0) so a fault fires in the original run but not again
//! in the recovered one — a crash rule without a session filter would
//! re-kill the respawned worker forever.
//!
//! [`Frame::Data`]: crate::frame::Frame::Data

use serde::{Deserialize, Serialize};

/// Which data frames (by per-link sequence number) a rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selector {
    /// Exactly the frame with this sequence number.
    At(u64),
    /// Every `every`-th frame, offset by `phase`: fires when
    /// `seq % every == phase`. `every == 0` never fires.
    Every {
        /// Period in frames (0 disables the rule).
        every: u64,
        /// Offset within the period.
        phase: u64,
    },
    /// A deterministic pseudo-random `per_mille`/1000 of frames, keyed on
    /// `(seed, link, seq)` — the same plan picks the same frames on every
    /// run, but different links and seeds decorrelate.
    Random {
        /// Mixes into the hash so distinct rules pick distinct frames.
        seed: u64,
        /// Fire probability in thousandths (1000 = every frame).
        per_mille: u16,
    },
    /// Every frame from this sequence number onward. `Drop(From(n))` is
    /// an *asymmetric partition*: the directed link swallows all its
    /// data while the reverse direction — and this direction's
    /// heartbeats — keep flowing. Because nothing later ever arrives,
    /// the receiver sees no sequence gap and liveness stays green; only
    /// the GVT plane betrays the fault (the Mattern counts never
    /// reconcile), so the stall watchdog is the detector.
    From(u64),
}

impl Selector {
    /// Does this selector pick the data frame with sequence `seq` on the
    /// link identified by `salt`?
    pub fn matches(&self, salt: u64, seq: u64) -> bool {
        match *self {
            Selector::At(n) => seq == n,
            Selector::Every { every, phase } => every != 0 && seq % every == phase % every,
            Selector::Random { seed, per_mille } => {
                (splitmix(seed ^ salt ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1000)
                    < per_mille as u64
            }
            Selector::From(n) => seq >= n,
        }
    }
}

/// One kind of injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Silently discard matching data frames (the receiver sees a
    /// sequence gap and, after a timeout, an unclean link failure).
    Drop(Selector),
    /// Send matching data frames twice (the receiver's dedup must absorb
    /// the copy).
    Duplicate(Selector),
    /// Hold matching data frames back until `hold` further data frames
    /// have been sent on the link — a bounded reorder (the receiver's
    /// sequence buffer must restore send order).
    Delay {
        /// Which frames to hold back.
        sel: Selector,
        /// How many subsequent data frames overtake a held one.
        hold: u64,
    },
    /// From data frame `after` onward, the link goes completely silent —
    /// including heartbeats — until the session ends. The peer's liveness
    /// timeout fires and recovery takes over.
    Partition {
        /// First sequence number swallowed by the partition.
        after: u64,
    },
    /// Abort the whole sending process the moment it would send data
    /// frame `after` on this link (`std::process::abort`, no cleanup —
    /// the hardest failure the coordinator must survive).
    Crash {
        /// Sequence number that triggers the abort.
        after: u64,
    },
}

/// Which frame class a rule perturbs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// `Data` frames, keyed on the per-link data sequence number.
    #[default]
    Data,
    /// `Token` / `GvtNews` frames, keyed on their own per-link ordinal.
    /// Only `Drop`, `Partition` and `Crash` act in this scope; the
    /// reordering kinds degrade to delivery (see the module docs).
    Control,
}

/// A fault rule: a failure kind scoped to one directed link, optionally
/// pinned to a session epoch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Sending process id.
    pub from: u32,
    /// Receiving process id.
    pub to: u32,
    /// Restrict the rule to one session epoch (`None` = every session).
    /// Crash/partition rules should pin session 0, or recovery livelocks
    /// re-triggering the same fault.
    #[serde(default)]
    pub session: Option<u32>,
    /// Which frame class the rule perturbs (default: data).
    #[serde(default)]
    pub scope: FaultScope,
    /// What to do to the matching frames.
    pub kind: FaultKind,
}

/// A complete, seeded fault schedule for a run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The rules; order is irrelevant except for [`LinkChaos::fate`]'s
    /// severity precedence.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when no rule exists at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Convenience: crash `from` when it sends its `after`-th data frame
    /// to `to`, in session `session` only.
    pub fn crash(mut self, from: u32, to: u32, after: u64, session: u32) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            session: Some(session),
            scope: FaultScope::Data,
            kind: FaultKind::Crash { after },
        });
        self
    }

    /// Convenience: abort the *coordinator* after it has completed
    /// `after` checkpoint barriers (persisted snapshots, `SnapshotAck`
    /// broadcast and journal record included — the crash lands *between*
    /// barriers, the exact window fail-over must survive). Encoded as a
    /// `Crash` rule on the self-link `0 → 0`, a link that carries no
    /// data frames, so the rule is inert for the ordinary sender-side
    /// chaos machinery; the coordinator scans for it at startup via
    /// [`FaultPlan::coordinator_crash_after`]. Unpinned to a session on
    /// purpose — the barrier counter, not the session epoch, is what
    /// arms it — but a *resumed* coordinator starts a fresh counter, so
    /// pair this with a resume-side guard (the executive clears the
    /// plan's self-rule on `--resume`) when re-triggering is unwanted.
    pub fn crash_coordinator_after(mut self, after: u64) -> Self {
        self.rules.push(FaultRule {
            from: 0,
            to: 0,
            session: None,
            scope: FaultScope::Data,
            kind: FaultKind::Crash { after },
        });
        self
    }

    /// The barrier count armed by [`FaultPlan::crash_coordinator_after`],
    /// if any rule carries one (the smallest wins when several do).
    pub fn coordinator_crash_after(&self) -> Option<u64> {
        self.rules
            .iter()
            .filter_map(|r| match (r.from, r.to, r.kind) {
                (0, 0, FaultKind::Crash { after }) => Some(after),
                _ => None,
            })
            .min()
    }

    /// Convenience: partition the directed link `from → to` starting at
    /// data frame `after`, in session `session` only.
    pub fn partition(mut self, from: u32, to: u32, after: u64, session: u32) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            session: Some(session),
            scope: FaultScope::Data,
            kind: FaultKind::Partition { after },
        });
        self
    }

    /// Convenience: an *asymmetric* partition — from data frame `after`
    /// onward the directed link `from → to` silently discards every data
    /// frame, while `to → from` and this link's heartbeats keep flowing,
    /// in session `session` only. Unlike [`FaultPlan::partition`] no
    /// liveness timeout ever fires (the link looks healthy end to end)
    /// and no sequence gap is ever observed (no later frame arrives to
    /// reveal one); the run wedges with every connection green until the
    /// GVT-progress watchdog declares a stall.
    pub fn asym_partition(mut self, from: u32, to: u32, after: u64, session: u32) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            session: Some(session),
            scope: FaultScope::Data,
            kind: FaultKind::Drop(Selector::From(after)),
        });
        self
    }

    /// Convenience: silence the GVT plane of `from → to` (tokens and
    /// GVT news only — data and heartbeats keep flowing) from control
    /// frame `after` onward, in session `session` only. This wedges the
    /// Mattern ring while every liveness signal stays green: the fault
    /// the GVT-progress watchdog exists to catch.
    pub fn control_partition(mut self, from: u32, to: u32, after: u64, session: u32) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            session: Some(session),
            scope: FaultScope::Control,
            kind: FaultKind::Partition { after },
        });
        self
    }

    /// Convenience: add an unpinned data-scope rule on `from → to`.
    pub fn with(mut self, from: u32, to: u32, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            session: None,
            scope: FaultScope::Data,
            kind,
        });
        self
    }

    /// Convenience: add an unpinned rule on `from → to` in an explicit
    /// scope.
    pub fn with_scoped(mut self, from: u32, to: u32, scope: FaultScope, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            session: None,
            scope,
            kind,
        });
        self
    }

    /// Compile the plan's data-scope rules for one directed link in one
    /// session: the rules that apply, ready for the link writer to
    /// consult per data frame. `None` when no rule touches the link (the
    /// common case — zero overhead on healthy links).
    pub fn link(&self, from: u32, to: u32, session: u32) -> Option<LinkChaos> {
        self.compile(from, to, session, FaultScope::Data, 0)
    }

    /// Compile the plan's control-scope rules (tokens + GVT news) for
    /// one directed link in one session. A separate chaos stream with
    /// its own ordinal counter and a decorrelated salt, so the same
    /// `Random` selector picks independently in each scope.
    pub fn link_control(&self, from: u32, to: u32, session: u32) -> Option<LinkChaos> {
        self.compile(from, to, session, FaultScope::Control, 0x5CAF_F01D)
    }

    fn compile(
        &self,
        from: u32,
        to: u32,
        session: u32,
        scope: FaultScope,
        salt_tweak: u64,
    ) -> Option<LinkChaos> {
        let rules: Vec<FaultKind> = self
            .rules
            .iter()
            .filter(|r| {
                r.from == from
                    && r.to == to
                    && r.scope == scope
                    && r.session.is_none_or(|s| s == session)
            })
            .map(|r| r.kind)
            .collect();
        if rules.is_empty() {
            None
        } else {
            Some(LinkChaos {
                rules,
                salt: splitmix(
                    ((from as u64) << 40) ^ ((to as u64) << 16) ^ session as u64 ^ salt_tweak,
                ),
            })
        }
    }
}

/// What the link writer should do with one outgoing data frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataFate {
    /// Send normally.
    Deliver,
    /// Discard without sending.
    Drop,
    /// Send two copies back to back.
    Duplicate,
    /// Buffer; release after the data frame with sequence `release_after`
    /// has been sent.
    Hold {
        /// Sequence number whose transmission releases the held frame.
        release_after: u64,
    },
    /// Go silent on this link for the rest of the session.
    Partition,
    /// Abort the process.
    Crash,
}

/// A [`FaultPlan`] compiled for one directed link in one session.
#[derive(Clone, Debug)]
pub struct LinkChaos {
    rules: Vec<FaultKind>,
    salt: u64,
}

impl LinkChaos {
    /// Decide the fate of the outgoing data frame with sequence `seq`.
    /// When several rules match, the most severe wins:
    /// crash > partition > drop > delay > duplicate.
    pub fn fate(&self, seq: u64) -> DataFate {
        let mut fate = DataFate::Deliver;
        for rule in &self.rules {
            let candidate = match *rule {
                FaultKind::Crash { after } if seq >= after => DataFate::Crash,
                FaultKind::Partition { after } if seq >= after => DataFate::Partition,
                FaultKind::Drop(sel) if sel.matches(self.salt, seq) => DataFate::Drop,
                FaultKind::Delay { sel, hold } if sel.matches(self.salt, seq) => DataFate::Hold {
                    release_after: seq.saturating_add(hold.max(1)),
                },
                FaultKind::Duplicate(sel) if sel.matches(self.salt, seq) => DataFate::Duplicate,
                _ => DataFate::Deliver,
            };
            if severity(candidate) > severity(fate) {
                fate = candidate;
            }
        }
        fate
    }
}

fn severity(f: DataFate) -> u8 {
    match f {
        DataFate::Deliver => 0,
        DataFate::Duplicate => 1,
        DataFate::Hold { .. } => 2,
        DataFate::Drop => 3,
        DataFate::Partition => 4,
        DataFate::Crash => 5,
    }
}

/// SplitMix64 finalizer — a tiny, well-mixed hash for the `Random`
/// selector (and the transport's deterministic dial jitter). Quality
/// matters less than determinism and independence.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_pick_the_expected_frames() {
        let salt = 99;
        assert!(Selector::At(5).matches(salt, 5));
        assert!(!Selector::At(5).matches(salt, 6));
        let every = Selector::Every { every: 3, phase: 1 };
        let picked: Vec<u64> = (0..10).filter(|&s| every.matches(salt, s)).collect();
        assert_eq!(picked, vec![1, 4, 7]);
        assert!(!Selector::Every { every: 0, phase: 0 }.matches(salt, 0));
    }

    #[test]
    fn random_selector_is_deterministic_and_roughly_calibrated() {
        let sel = Selector::Random {
            seed: 42,
            per_mille: 250,
        };
        let a: Vec<bool> = (0..4000).map(|s| sel.matches(7, s)).collect();
        let b: Vec<bool> = (0..4000).map(|s| sel.matches(7, s)).collect();
        assert_eq!(a, b, "same link, same picks");
        let hits = a.iter().filter(|&&h| h).count();
        assert!(
            (700..1300).contains(&hits),
            "~25% of 4000 expected, got {hits}"
        );
        let other: Vec<bool> = (0..4000).map(|s| sel.matches(8, s)).collect();
        assert_ne!(a, other, "different links decorrelate");
    }

    #[test]
    fn link_compilation_filters_by_endpoint_and_session() {
        let plan = FaultPlan::new().crash(2, 1, 10, 0).with(
            1,
            2,
            FaultKind::Duplicate(Selector::Every { every: 1, phase: 0 }),
        );
        assert!(plan.link(2, 1, 0).is_some());
        assert!(plan.link(2, 1, 1).is_none(), "crash pinned to session 0");
        assert!(plan.link(1, 2, 3).is_some(), "unpinned rule spans sessions");
        assert!(plan.link(0, 1, 0).is_none());
    }

    #[test]
    fn severity_precedence_resolves_overlapping_rules() {
        let plan = FaultPlan::new()
            .with(1, 2, FaultKind::Duplicate(Selector::At(4)))
            .with(1, 2, FaultKind::Drop(Selector::At(4)))
            .with(
                1,
                2,
                FaultKind::Delay {
                    sel: Selector::At(6),
                    hold: 2,
                },
            );
        let chaos = plan.link(1, 2, 0).unwrap();
        assert_eq!(chaos.fate(4), DataFate::Drop, "drop beats duplicate");
        assert_eq!(chaos.fate(5), DataFate::Deliver);
        assert_eq!(chaos.fate(6), DataFate::Hold { release_after: 8 });
    }

    #[test]
    fn partition_and_crash_latch_from_their_threshold() {
        let chaos = FaultPlan::new()
            .partition(1, 2, 3, 0)
            .link(1, 2, 0)
            .unwrap();
        assert_eq!(chaos.fate(2), DataFate::Deliver);
        assert_eq!(chaos.fate(3), DataFate::Partition);
        assert_eq!(chaos.fate(100), DataFate::Partition);
        let chaos = FaultPlan::new().crash(1, 2, 3, 0).link(1, 2, 0).unwrap();
        assert_eq!(chaos.fate(7), DataFate::Crash);
    }

    #[test]
    fn asym_partition_drops_one_direction_only() {
        let plan = FaultPlan::new().asym_partition(2, 1, 5, 0);
        let forward = plan.link(2, 1, 0).expect("forward link is shaped");
        assert_eq!(forward.fate(4), DataFate::Deliver, "pre-threshold flows");
        assert_eq!(forward.fate(5), DataFate::Drop, "threshold frame dropped");
        assert_eq!(forward.fate(5000), DataFate::Drop, "latched forever");
        assert!(
            plan.link(1, 2, 0).is_none(),
            "reverse direction is untouched"
        );
        assert!(
            plan.link_control(2, 1, 0).is_none(),
            "tokens and GVT news still flow forward — the ring wedges on \
             the data counts, not on a silenced control plane"
        );
        assert!(plan.link(2, 1, 1).is_none(), "pinned to session 0");
    }

    #[test]
    fn from_selector_matches_a_latched_suffix() {
        assert!(!Selector::From(3).matches(0, 2));
        assert!(Selector::From(3).matches(0, 3));
        assert!(Selector::From(3).matches(0, u64::MAX));
        assert!(Selector::From(0).matches(7, 0), "zero threshold = all");
        let json = serde_json::to_string(&Selector::From(3)).unwrap();
        let back: Selector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Selector::From(3));
    }

    #[test]
    fn scopes_compile_to_independent_chaos_streams() {
        let plan = FaultPlan::new().control_partition(2, 1, 5, 0).with(
            2,
            1,
            FaultKind::Drop(Selector::At(3)),
        );
        let data = plan.link(2, 1, 0).expect("data rule present");
        let ctl = plan.link_control(2, 1, 0).expect("control rule present");
        assert_eq!(data.fate(3), DataFate::Drop);
        assert_eq!(data.fate(5), DataFate::Deliver, "partition is control-only");
        assert_eq!(ctl.fate(3), DataFate::Deliver, "drop is data-only");
        assert_eq!(ctl.fate(5), DataFate::Partition);
        assert!(
            plan.link_control(2, 1, 1).is_none(),
            "control partition pinned to session 0"
        );
        let data_only = FaultPlan::new().crash(2, 1, 0, 0);
        assert!(data_only.link_control(2, 1, 0).is_none());
    }

    #[test]
    fn scope_salts_decorrelate_random_selectors() {
        let sel = Selector::Random {
            seed: 9,
            per_mille: 500,
        };
        let plan = FaultPlan::new()
            .with(1, 2, FaultKind::Drop(sel))
            .with_scoped(1, 2, FaultScope::Control, FaultKind::Drop(sel));
        let data = plan.link(1, 2, 0).unwrap();
        let ctl = plan.link_control(1, 2, 0).unwrap();
        let d: Vec<DataFate> = (0..256).map(|s| data.fate(s)).collect();
        let c: Vec<DataFate> = (0..256).map(|s| ctl.fate(s)).collect();
        assert_ne!(d, c, "same selector must pick differently per scope");
    }

    #[test]
    fn coordinator_crash_rule_is_inert_on_real_links_but_scannable() {
        let plan = FaultPlan::new()
            .crash_coordinator_after(3)
            .crash_coordinator_after(7)
            .crash(2, 1, 10, 0);
        assert_eq!(plan.coordinator_crash_after(), Some(3), "smallest wins");
        assert!(
            plan.link(0, 1, 0).is_none() && plan.link(1, 0, 0).is_none(),
            "the self-link rule must not shape any real link"
        );
        assert!(FaultPlan::new().coordinator_crash_after().is_none());
        let ordinary = FaultPlan::new().crash(2, 0, 40, 0);
        assert!(
            ordinary.coordinator_crash_after().is_none(),
            "a worker-side crash rule is not a coordinator crash"
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.coordinator_crash_after(), Some(3));
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::new()
            .crash(2, 0, 40, 0)
            .partition(1, 2, 10, 0)
            .control_partition(2, 1, 4, 0)
            .with(
                1,
                2,
                FaultKind::Delay {
                    sel: Selector::Random {
                        seed: 1,
                        per_mille: 100,
                    },
                    hold: 3,
                },
            );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Pre-scope plans (no `scope` field) must still parse, as data
        // scope — old job files stay valid.
        let legacy = r#"{"rules":[{"from":1,"to":2,"kind":{"Drop":{"At":5}}}]}"#;
        let plan: FaultPlan = serde_json::from_str(legacy).unwrap();
        assert_eq!(plan.rules[0].scope, FaultScope::Data);
    }
}
