//! In-process transport: a full mesh of unbounded channels between LPs.
//!
//! This is the threaded executive's "network": each LP runs on its own OS
//! thread and owns one [`Endpoint`]; sends are crossbeam channel pushes
//! (FIFO per sender-receiver pair, like a TCP stream per pair). The mesh
//! is generic over the packet type so the executive can multiplex data
//! and control traffic (GVT tokens, shutdown) over one channel set.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// One LP's view of the mesh.
pub struct Endpoint<T> {
    id: usize,
    senders: Vec<Sender<T>>,
    receiver: Receiver<T>,
}

/// Build a full mesh between `n` endpoints.
pub fn mesh<T: Send>(n: usize) -> Vec<Endpoint<T>> {
    assert!(n > 0, "mesh needs at least one endpoint");
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(id, receiver)| Endpoint {
            id,
            senders: txs.clone(),
            receiver,
        })
        .collect()
}

impl<T> Endpoint<T> {
    /// This endpoint's index in the mesh.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of endpoints in the mesh.
    pub fn n_peers(&self) -> usize {
        self.senders.len()
    }

    /// Send a packet to endpoint `to` (sending to oneself is allowed and
    /// delivered through the same queue).
    ///
    /// Sending to a peer whose endpoint has already been dropped is a
    /// no-op: during teardown the GVT-∞ news and late anti-messages race
    /// with LP threads exiting, and a message to a finished LP is by
    /// definition ignorable — it can only concern already-committed
    /// history.
    pub fn send(&self, to: usize, packet: T) {
        let _ = self.senders[to].send(packet);
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.receiver.try_recv().ok()
    }

    /// Blocking receive with a timeout; `None` on timeout. Panics if the
    /// mesh has been torn down while senders are expected alive.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        match self.receiver.recv_timeout(timeout) {
            Ok(p) => Some(p),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                panic!("mesh disconnected while endpoint {} was receiving", self.id)
            }
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut v = Vec::new();
        while let Some(p) = self.try_recv() {
            v.push(p);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_point_to_point() {
        let eps = mesh::<u32>(3);
        eps[0].send(2, 42);
        eps[1].send(2, 43);
        eps[2].send(0, 1);
        let mut got = eps[2].drain();
        got.sort_unstable();
        assert_eq!(got, vec![42, 43]);
        assert_eq!(eps[0].try_recv(), Some(1));
        assert_eq!(eps[1].try_recv(), None);
    }

    #[test]
    fn fifo_per_pair() {
        let eps = mesh::<u32>(2);
        for i in 0..100 {
            eps[0].send(1, i);
        }
        let got = eps[1].drain();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn self_send_works() {
        let eps = mesh::<&'static str>(1);
        eps[0].send(0, "loop");
        assert_eq!(eps[0].try_recv(), Some("loop"));
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = mesh::<u64>(2);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..10 {
                sum += ep1
                    .recv_timeout(Duration::from_secs(5))
                    .expect("timely delivery");
            }
            sum
        });
        for i in 1..=10u64 {
            ep0.send(1, i);
        }
        assert_eq!(h.join().unwrap(), 55);
    }

    #[test]
    fn recv_timeout_expires() {
        let eps = mesh::<u8>(2);
        assert_eq!(eps[0].recv_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn send_to_dropped_peer_is_a_noop() {
        let mut eps = mesh::<u8>(2);
        drop(eps.pop().unwrap()); // endpoint 1 has shut down
        let ep0 = eps.pop().unwrap();
        ep0.send(1, 42); // must not panic
        ep0.send(1, 43);
        // The survivor's own queue still works.
        ep0.send(0, 7);
        assert_eq!(ep0.try_recv(), Some(7));
    }
}
