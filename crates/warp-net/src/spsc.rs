//! Preallocated SPSC ring-buffer lanes for the threaded executive.
//!
//! The in-process channel mesh ([`crate::inproc`]) funnels every sender
//! into one MPSC queue per receiver: each send is an allocation plus
//! contended queue push. This module replaces it on the hot path with a
//! dedicated single-producer/single-consumer ring per ordered LP pair —
//! a slot write and two atomic stores per message, no allocation, no
//! lock — while keeping the same mesh surface (`id` / `send` /
//! `try_recv` / `recv_timeout`) so [`lane_mesh`] is a drop-in for
//! [`crate::inproc::mesh`]. See `docs/hot-path.md`.
//!
//! Semantics preserved from the channel mesh:
//!
//! * FIFO per ordered sender→receiver pair (a ring is a FIFO; when it
//!   fills, messages spill into an unbounded overflow queue that drains
//!   *after* the ring and captures new sends until empty, so order
//!   never inverts).
//! * Sends never block and never fail: a full ring spills, a
//!   dropped-peer send parks harmlessly in the shared lane (the
//!   allocation lives as long as any endpoint).
//! * `recv_timeout` parks the thread on a per-endpoint eventcount
//!   (futex-style: senders only touch the mutex when the receiver has
//!   advertised that it is sleeping), so the idle path stays cheap and
//!   the hot path lock-free.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Ring capacity per lane (messages). Lanes preallocate this many slots
/// up front; sustained bursts beyond it degrade gracefully into the
/// overflow queue instead of blocking or dropping.
pub const LANE_CAP: usize = 512;

/// Pad to a cache line so the producer and consumer cursors of a lane
/// do not false-share.
#[repr(align(64))]
struct Pad<T>(T);

/// One single-producer/single-consumer lane: a fixed ring plus an
/// unbounded spill queue for bursts beyond [`LANE_CAP`].
struct Lane<T> {
    /// `cap` slots, `cap` a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Monotonic, wraps via `mask`.
    head: Pad<AtomicUsize>,
    /// Next slot the producer will write.
    tail: Pad<AtomicUsize>,
    /// Spill queue, used only while the ring is full; `spill_len`
    /// mirrors its length so the fast paths can skip the lock.
    spill: Mutex<VecDeque<T>>,
    spill_len: AtomicUsize,
}

// SAFETY: the ring hands each value from exactly one producer thread to
// exactly one consumer thread; slots are published/consumed under
// release/acquire cursor updates, so `&Lane` can cross threads whenever
// the payload itself can.
unsafe impl<T: Send> Sync for Lane<T> {}
unsafe impl<T: Send> Send for Lane<T> {}

impl<T> Lane<T> {
    fn new(cap: usize) -> Self {
        assert!(cap.is_power_of_two());
        Lane {
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap - 1,
            head: Pad(AtomicUsize::new(0)),
            tail: Pad(AtomicUsize::new(0)),
            spill: Mutex::new(VecDeque::new()),
            spill_len: AtomicUsize::new(0),
        }
    }

    /// Producer side. Must only be called by the lane's unique producer.
    fn push(&self, v: T) {
        // While the spill queue is non-empty every new message must go
        // behind it, or FIFO order would invert as the consumer drains
        // ring-first. Only the producer adds to the spill, so reading 0
        // here is conclusive.
        if self.spill_len.load(Ordering::Acquire) != 0 {
            return self.push_spill(v);
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return self.push_spill(v); // ring full
        }
        // SAFETY: `head <= tail - cap` is excluded above, so the slot at
        // `tail` is not concurrently read; only this producer writes it.
        unsafe { (*self.slots[tail & self.mask].get()).write(v) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
    }

    #[cold]
    fn push_spill(&self, v: T) {
        let mut q = self.spill.lock().unwrap();
        q.push_back(v);
        self.spill_len.store(q.len(), Ordering::Release);
    }

    /// Consumer side. Must only be called by the lane's unique consumer.
    fn pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head != tail {
            // SAFETY: the producer published the slot with the release
            // store of `tail`; only this consumer reads/frees it.
            let v = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
            self.head.0.store(head.wrapping_add(1), Ordering::Release);
            return Some(v);
        }
        if self.spill_len.load(Ordering::Acquire) != 0 {
            let mut q = self.spill.lock().unwrap();
            let v = q.pop_front();
            self.spill_len.store(q.len(), Ordering::Release);
            return v;
        }
        None
    }
}

impl<T> Drop for Lane<T> {
    fn drop(&mut self) {
        let mut i = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while i != tail {
            // SAFETY: `[head, tail)` slots hold initialized, unconsumed
            // values; we have `&mut self`, so no concurrent access.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Per-endpoint sleep/wake primitive: an eventcount reduced to one
/// boolean. Senders check `parked` (a single atomic load on the hot
/// path) and take the mutex only when the receiver advertised that it
/// is about to sleep.
struct Doorbell {
    parked: AtomicBool,
    state: Mutex<bool>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Self {
        Doorbell {
            parked: AtomicBool::new(false),
            state: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Sender side: wake the receiver if (and only if) it is parked.
    fn ring(&self) {
        // Pairs with the SeqCst fence in `wait`: either we observe
        // `parked` and notify, or the receiver's re-check observes our
        // message. A missed wake is additionally bounded by the
        // receiver's timeout, never lost forever.
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) {
            let mut rung = self.state.lock().unwrap();
            *rung = true;
            self.cv.notify_one();
        }
    }

    /// Receiver side: sleep until rung or `timeout`. `recheck` is
    /// polled once after advertising the park, closing the race with a
    /// sender that rang just before.
    fn wait(&self, timeout: Duration, recheck: impl Fn() -> bool) {
        self.parked.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if recheck() {
            self.parked.store(false, Ordering::Relaxed);
            return;
        }
        let deadline = Instant::now() + timeout;
        let mut rung = self.state.lock().unwrap();
        while !*rung {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _) = self.cv.wait_timeout(rung, deadline - now).unwrap();
            rung = g;
        }
        *rung = false;
        drop(rung);
        self.parked.store(false, Ordering::Relaxed);
    }
}

/// One LP's view of the lane mesh: the producer ends of its outgoing
/// lanes and the consumer ends of its incoming ones. API-compatible
/// with [`crate::inproc::Endpoint`].
pub struct LaneEndpoint<T> {
    id: usize,
    /// `tx[to]`: this endpoint is the unique producer.
    tx: Vec<Arc<Lane<T>>>,
    /// `rx[from]`: this endpoint is the unique consumer.
    rx: Vec<Arc<Lane<T>>>,
    /// `bells[peer]`: peer's doorbell; `bells[id]` is our own.
    bells: Vec<Arc<Doorbell>>,
    /// Round-robin scan start, for fairness across senders.
    cursor: Cell<usize>,
}

/// Build a full mesh of SPSC lanes between `n` endpoints.
pub fn lane_mesh<T: Send>(n: usize) -> Vec<LaneEndpoint<T>> {
    assert!(n > 0, "mesh needs at least one endpoint");
    // lanes[from][to]
    let lanes: Vec<Vec<Arc<Lane<T>>>> = (0..n)
        .map(|_| (0..n).map(|_| Arc::new(Lane::new(LANE_CAP))).collect())
        .collect();
    let bells: Vec<Arc<Doorbell>> = (0..n).map(|_| Arc::new(Doorbell::new())).collect();
    (0..n)
        .map(|id| LaneEndpoint {
            id,
            tx: lanes[id].clone(),
            rx: (0..n).map(|from| lanes[from][id].clone()).collect(),
            bells: bells.clone(),
            cursor: Cell::new(0),
        })
        .collect()
}

impl<T> LaneEndpoint<T> {
    /// This endpoint's index in the mesh.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of endpoints in the mesh.
    pub fn n_peers(&self) -> usize {
        self.tx.len()
    }

    /// Send a packet to endpoint `to` (self-sends allowed). Never
    /// blocks; a peer that already shut down just never drains its lane.
    pub fn send(&self, to: usize, packet: T) {
        self.tx[to].push(packet);
        self.bells[to].ring();
    }

    /// Non-blocking receive: scan incoming lanes round-robin.
    pub fn try_recv(&self) -> Option<T> {
        let n = self.rx.len();
        let start = self.cursor.get();
        for i in 0..n {
            let lane = (start + i) % n;
            if let Some(p) = self.rx[lane].pop() {
                // Resume after this lane next time so one chatty peer
                // cannot starve the others.
                self.cursor.set((lane + 1) % n);
                return Some(p);
            }
        }
        None
    }

    /// Blocking receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        if let Some(p) = self.try_recv() {
            return Some(p);
        }
        self.bells[self.id].wait(timeout, || {
            self.rx.iter().any(|l| {
                let head = l.head.0.load(Ordering::Relaxed);
                l.tail.0.load(Ordering::Acquire) != head || l.spill_len.load(Ordering::Acquire) != 0
            })
        });
        self.try_recv()
    }

    /// Drain everything currently queued (test helper).
    pub fn drain(&self) -> Vec<T> {
        let mut v = Vec::new();
        while let Some(p) = self.try_recv() {
            v.push(p);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_point_to_point() {
        let eps = lane_mesh::<u32>(3);
        eps[0].send(2, 42);
        eps[1].send(2, 43);
        eps[2].send(0, 1);
        let mut got = eps[2].drain();
        got.sort_unstable();
        assert_eq!(got, vec![42, 43]);
        assert_eq!(eps[0].try_recv(), Some(1));
        assert_eq!(eps[1].try_recv(), None);
    }

    #[test]
    fn fifo_per_pair_through_spill() {
        // 10× the ring capacity forces the spill path; order must hold.
        let eps = lane_mesh::<u32>(2);
        let n = (LANE_CAP * 10) as u32;
        for i in 0..n {
            eps[0].send(1, i);
        }
        let got = eps[1].drain();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_spill_keeps_order() {
        let eps = lane_mesh::<u32>(2);
        let mut want = Vec::new();
        let mut got = Vec::new();
        let mut next = 0u32;
        // Alternate overfilling and partial drains so the spill queue
        // activates and empties repeatedly.
        for round in 0..6 {
            let burst = LANE_CAP as u32 + 37 * round;
            for _ in 0..burst {
                eps[0].send(1, next);
                want.push(next);
                next += 1;
            }
            for _ in 0..(burst / 2) {
                got.push(eps[1].try_recv().unwrap());
            }
        }
        got.extend(eps[1].drain());
        assert_eq!(got, want);
    }

    #[test]
    fn self_send_works() {
        let eps = lane_mesh::<&'static str>(1);
        eps[0].send(0, "loop");
        assert_eq!(eps[0].try_recv(), Some("loop"));
    }

    #[test]
    fn cross_thread_delivery_with_parking() {
        let mut eps = lane_mesh::<u64>(2);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            let mut sum = 0;
            let mut n = 0;
            while n < 10_000 {
                if let Some(v) = ep1.recv_timeout(Duration::from_secs(5)) {
                    sum += v;
                    n += 1;
                }
            }
            sum
        });
        for i in 1..=10_000u64 {
            ep0.send(1, i);
            if i % 1000 == 0 {
                std::thread::sleep(Duration::from_millis(1)); // let it park
            }
        }
        assert_eq!(h.join().unwrap(), 10_000 * 10_001 / 2);
    }

    #[test]
    fn recv_timeout_expires() {
        let eps = lane_mesh::<u8>(2);
        let t0 = Instant::now();
        assert_eq!(eps[0].recv_timeout(Duration::from_millis(10)), None);
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn send_to_dropped_peer_is_a_noop() {
        let mut eps = lane_mesh::<u8>(2);
        drop(eps.pop().unwrap()); // endpoint 1 has shut down
        let ep0 = eps.pop().unwrap();
        ep0.send(1, 42); // must not panic
        ep0.send(1, 43);
        ep0.send(0, 7);
        assert_eq!(ep0.try_recv(), Some(7));
    }

    #[test]
    fn drop_releases_undelivered_payloads() {
        // Heap payloads left in rings and spill queues must drop cleanly.
        let eps = lane_mesh::<Vec<u8>>(2);
        for i in 0..(LANE_CAP * 2) {
            eps[0].send(1, vec![i as u8; 64]);
        }
        drop(eps);
    }
}
