//! Transport selection: one mesh surface, two engines.
//!
//! The distributed executive talks to a [`Mesh`], which is either the
//! thread-per-link [`TcpMesh`] or the single-threaded
//! readiness-driven [`PollMesh`]. Both speak the same
//! wire protocol, share the handshake/session/fault/aggregation
//! machinery, and expose identical semantics — [`Transport`] only picks
//! how the bytes are moved (blocking threads vs one poll loop), never
//! what they mean. Mixed clusters are fine: a threaded worker and a
//! poll worker interoperate on the wire.

use crate::frame::Frame;
use crate::poll::PollMesh;
use crate::tcp::{MeshEvent, MeshSender, TcpMesh, TcpMeshConfig};
use crate::wire_agg::LinkAggStats;
use serde::{Deserialize, Serialize};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// Which engine moves the mesh's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Transport {
    /// Two blocking threads (reader + writer) per link — the original
    /// mesh. Simple, and fine at small fan-out.
    #[default]
    Threaded,
    /// One readiness-driven event loop per process over nonblocking
    /// sockets — O(1) threads regardless of cluster size.
    Poll,
}

impl Transport {
    /// Parse a CLI spelling (`threaded` / `poll`).
    pub fn parse(s: &str) -> Result<Transport, String> {
        match s {
            "threaded" => Ok(Transport::Threaded),
            "poll" => Ok(Transport::Poll),
            other => Err(format!(
                "unknown transport {other:?} (expected threaded|poll)"
            )),
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Transport::Threaded => "threaded",
            Transport::Poll => "poll",
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A mesh of either engine. Method-for-method the [`TcpMesh`] surface;
/// see there for semantics.
pub enum Mesh {
    /// Thread-per-link engine.
    Threaded(TcpMesh),
    /// Single event-loop engine.
    Poll(PollMesh),
}

impl Mesh {
    /// Establish the full mesh with the chosen engine. Contract and
    /// choreography are identical either way (shared implementation).
    pub fn establish(
        transport: Transport,
        cfg: TcpMeshConfig,
        listener: TcpListener,
        peer_addrs: &[(u32, SocketAddr)],
    ) -> io::Result<Mesh> {
        match transport {
            Transport::Threaded => {
                TcpMesh::establish(cfg, listener, peer_addrs).map(Mesh::Threaded)
            }
            Transport::Poll => PollMesh::establish(cfg, listener, peer_addrs).map(Mesh::Poll),
        }
    }

    /// This process's id.
    pub fn proc_id(&self) -> u32 {
        match self {
            Mesh::Threaded(m) => m.proc_id(),
            Mesh::Poll(m) => m.proc_id(),
        }
    }

    /// Total process count.
    pub fn n_procs(&self) -> u32 {
        match self {
            Mesh::Threaded(m) => m.n_procs(),
            Mesh::Poll(m) => m.n_procs(),
        }
    }

    /// A cloneable sender over the same links.
    pub fn sender(&self) -> MeshSender {
        match self {
            Mesh::Threaded(m) => m.sender(),
            Mesh::Poll(m) => m.sender(),
        }
    }

    /// Queue a frame for `to`.
    pub fn send(&self, to: u32, frame: Frame) {
        match self {
            Mesh::Threaded(m) => m.send(to, frame),
            Mesh::Poll(m) => m.send(to, frame),
        }
    }

    /// Next event if one is already queued.
    pub fn try_recv(&self) -> Option<MeshEvent> {
        match self {
            Mesh::Threaded(m) => m.try_recv(),
            Mesh::Poll(m) => m.try_recv(),
        }
    }

    /// Block up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<MeshEvent> {
        match self {
            Mesh::Threaded(m) => m.recv_timeout(timeout),
            Mesh::Poll(m) => m.recv_timeout(timeout),
        }
    }

    /// Per-link on-the-wire aggregation gauges (empty when aggregation
    /// is off).
    pub fn agg_stats(&self) -> Vec<LinkAggStats> {
        match self {
            Mesh::Threaded(m) => m.agg_stats(),
            Mesh::Poll(m) => m.agg_stats(),
        }
    }

    /// Graceful drain-then-close shutdown.
    pub fn shutdown(self) {
        match self {
            Mesh::Threaded(m) => m.shutdown(),
            Mesh::Poll(m) => m.shutdown(),
        }
    }

    /// Abrupt teardown with no `Bye`.
    pub fn abort(self) {
        match self {
            Mesh::Threaded(m) => m.abort(),
            Mesh::Poll(m) => m.abort(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_parses_both_spellings_and_rejects_junk() {
        assert_eq!(Transport::parse("threaded").unwrap(), Transport::Threaded);
        assert_eq!(Transport::parse("poll").unwrap(), Transport::Poll);
        assert!(Transport::parse("epoll").is_err());
        assert_eq!(Transport::default(), Transport::Threaded);
    }

    #[test]
    fn transport_serde_round_trips() {
        let j = serde_json::to_string(&Transport::Poll).unwrap();
        let t: Transport = serde_json::from_str(&j).unwrap();
        assert_eq!(t, Transport::Poll);
    }
}
