//! The production data plane: a readiness-driven mesh event loop.
//!
//! [`PollMesh`] carries exactly the traffic [`TcpMesh`](crate::TcpMesh)
//! does — same handshake, same frames, same fault hooks, same
//! sequencing, same shutdown choreography — but runs **every link of
//! the process on one event-loop thread** over nonblocking sockets,
//! instead of a reader + writer thread per link. At Warped2-scale
//! fan-out (dozens of peers per host) the threaded mesh burns
//! `2·(n_procs−1)` OS threads per process on blocking I/O; the poll
//! mesh burns one, regardless of cluster size, and the saved context
//! switches go to the simulation kernel.
//!
//! ## The poll shim
//!
//! `std` exposes no `poll(2)`/`select(2)`, and the build environment is
//! std-only, so readiness is approximated portably:
//!
//! * every peer socket is `set_nonblocking(true)`; reads and writes
//!   drain until `WouldBlock`, so one loop iteration moves every byte
//!   that is currently movable;
//! * the loop's single blocking point is `recv_timeout` on the shared
//!   command channel — the channel doubles as the wakeup pipe, so an
//!   outbound frame (or shutdown) interrupts the sleep instantly;
//! * the sleep is adaptive: an iteration that moved bytes loops again
//!   immediately; consecutive idle iterations back off 500 µs → 5 ms,
//!   capped by the next timer deadline (heartbeat due, aggregation
//!   window expiry, liveness check). Idle latency is therefore bounded
//!   by single-digit milliseconds while a streaming link keeps the loop
//!   hot with zero sleeps.
//!
//! ## Backpressure
//!
//! Each link owns a ring-buffered write queue (`OutBuf`: a compacting
//! `Vec` with a send cursor). When any link's pending bytes exceed the
//! high-water mark the loop stops draining the command channel — the
//! unbounded channel then absorbs the burst exactly as the threaded
//! mesh's per-writer queues do, and draining resumes once the slow
//! socket catches up.
//!
//! On-the-wire aggregation ([`crate::wire_agg`]) plugs into the staging
//! path here exactly as it does in the threaded writer, and the shared
//! `LinkRx` sequencing (dedup / reorder / gap detection / `DataBatch`
//! fan-out) is byte-for-byte the same code — the two transports cannot
//! diverge behaviorally.

use crate::frame::{Frame, FrameDecoder};
use crate::tcp::{
    establish_links, LinkRx, LinkTx, MeshEvent, MeshSender, RxStatus, SenderInner, TcpMeshConfig,
    WriterCmd,
};
use crate::wire_agg::{LinkAggStats, LinkAggregator};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-link pending-write ceiling before the loop stops accepting new
/// commands (the command channel absorbs the excess).
const HIGH_WATER: usize = 4 << 20;

/// Idle-sleep ramp: first pause after a quiet iteration, and the cap.
const IDLE_MIN: Duration = Duration::from_micros(500);
const IDLE_MAX: Duration = Duration::from_millis(5);

/// A fully-established mesh run by a single poll-style event loop.
/// Method-for-method interchangeable with [`crate::TcpMesh`].
pub struct PollMesh {
    cfg: TcpMeshConfig,
    cmd_tx: Sender<(u32, WriterCmd)>,
    event_tx: Sender<MeshEvent>,
    event_rx: Receiver<MeshEvent>,
    /// Socket clones so `abort` can slam connections shut.
    streams: Vec<Option<TcpStream>>,
    closing: Arc<AtomicBool>,
    aborting: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
    agg_stats: Vec<Option<Arc<Mutex<LinkAggStats>>>>,
}

/// Ring-buffered write queue: staged bytes ahead of `sent` are already
/// on the wire; the tail still waits for socket readiness. Compacts
/// lazily like `FrameDecoder`.
struct OutBuf {
    buf: Vec<u8>,
    sent: usize,
}

impl OutBuf {
    fn new() -> Self {
        OutBuf {
            buf: Vec::with_capacity(4096),
            sent: 0,
        }
    }

    fn pending(&self) -> usize {
        self.buf.len() - self.sent
    }

    fn tail(&self) -> &[u8] {
        &self.buf[self.sent..]
    }

    fn advance(&mut self, n: usize) {
        self.sent += n;
        if self.sent >= self.buf.len() || self.sent > 64 << 10 {
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
    }
}

/// One live connection inside the event loop.
struct PollLink {
    peer: u32,
    stream: TcpStream,
    tx: LinkTx,
    agg: Option<LinkAggregator>,
    out: OutBuf,
    dec: FrameDecoder,
    rx: LinkRx,
    last_byte: Instant,
    last_write: Instant,
    /// The write half failed or was closed; stop staging and writing.
    write_dead: bool,
    /// `Bye` has been queued (shutdown path).
    bye_sent: bool,
    /// The link's story is over (peer down reported, or drained); all
    /// I/O on it stops.
    done: bool,
}

impl PollLink {
    /// Stage one frame through aggregation + fault machinery into the
    /// write queue.
    fn stage(&mut self, frame: Frame, now: Instant) {
        if self.write_dead || self.done {
            return;
        }
        match self.agg.as_mut() {
            Some(a) => {
                for departed in a.offer(frame, now) {
                    self.tx.stage(departed, &mut self.out.buf);
                }
            }
            None => self.tx.stage(frame, &mut self.out.buf),
        }
    }

    /// Queue the shutdown residue: open aggregate, held frames, `Bye`.
    fn stage_bye(&mut self, now: Instant) {
        if self.bye_sent || self.write_dead || self.done {
            return;
        }
        self.bye_sent = true;
        if self.tx.partitioned {
            return;
        }
        if let Some(a) = self.agg.as_mut() {
            for departed in a.close(now) {
                self.tx.stage(departed, &mut self.out.buf);
            }
        }
        self.tx.flush_held(&mut self.out.buf);
        Frame::Bye.encode_into(&mut self.out.buf);
    }
}

impl PollMesh {
    /// This process's id.
    pub fn proc_id(&self) -> u32 {
        self.cfg.proc_id
    }

    /// Total process count.
    pub fn n_procs(&self) -> u32 {
        self.cfg.n_procs
    }

    /// A cloneable sender over the same links.
    pub fn sender(&self) -> MeshSender {
        MeshSender {
            proc_id: self.cfg.proc_id,
            inner: SenderInner::Shared(self.cmd_tx.clone()),
            loopback: self.event_tx.clone(),
        }
    }

    /// Queue a frame for `to` (see [`MeshSender::send`]).
    pub fn send(&self, to: u32, frame: Frame) {
        if to == self.cfg.proc_id {
            let _ = self.event_tx.send(MeshEvent::Frame {
                from: self.cfg.proc_id,
                frame,
            });
            return;
        }
        let _ = self.cmd_tx.send((to, WriterCmd::Frame(frame)));
    }

    /// Next event if one is already queued.
    pub fn try_recv(&self) -> Option<MeshEvent> {
        self.event_rx.try_recv().ok()
    }

    /// Block up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<MeshEvent> {
        match self.event_rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Per-link aggregation gauges (links with aggregation off are
    /// absent). A live snapshot: callers may read it mid-run.
    pub fn agg_stats(&self) -> Vec<LinkAggStats> {
        self.agg_stats
            .iter()
            .filter_map(|s| s.as_ref().map(|s| s.lock().unwrap().clone()))
            .collect()
    }

    /// Establish the full mesh and start its event loop. Identical
    /// contract to [`crate::TcpMesh::establish`] — same dial/accept
    /// choreography, handshake, and session pinning (they share the
    /// implementation).
    pub fn establish(
        cfg: TcpMeshConfig,
        listener: TcpListener,
        peer_addrs: &[(u32, SocketAddr)],
    ) -> io::Result<PollMesh> {
        let links = establish_links(&cfg, listener, peer_addrs)?;
        let n = cfg.n_procs as usize;
        let (event_tx, event_rx) = mpsc::channel();
        let (cmd_tx, cmd_rx) = mpsc::channel::<(u32, WriterCmd)>();
        let closing = Arc::new(AtomicBool::new(false));
        let aborting = Arc::new(AtomicBool::new(false));
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut agg_stats: Vec<Option<Arc<Mutex<LinkAggStats>>>> = (0..n).map(|_| None).collect();
        let now = Instant::now();
        let mut poll_links: Vec<Option<PollLink>> = (0..n).map(|_| None).collect();
        for (peer_id, slot) in links.into_iter().enumerate() {
            let Some((stream, dec)) = slot else { continue };
            stream.set_nonblocking(true)?;
            streams[peer_id] = Some(stream.try_clone()?);
            let chaos = cfg
                .faults
                .as_ref()
                .and_then(|p| p.link(cfg.proc_id, peer_id as u32, cfg.session));
            let ctl_chaos = cfg
                .faults
                .as_ref()
                .and_then(|p| p.link_control(cfg.proc_id, peer_id as u32, cfg.session));
            let agg = cfg
                .link_agg_tuning()
                .map(|t| LinkAggregator::new(peer_id as u32, t));
            agg_stats[peer_id] = agg.as_ref().map(|a| a.stats());
            poll_links[peer_id] = Some(PollLink {
                peer: peer_id as u32,
                stream,
                tx: LinkTx::new(chaos, ctl_chaos),
                agg,
                out: OutBuf::new(),
                dec,
                rx: LinkRx::new(),
                last_byte: now,
                last_write: now,
                write_dead: false,
                bye_sent: false,
                done: false,
            });
        }

        let loop_cfg = cfg.clone();
        let loop_events = event_tx.clone();
        let loop_closing = Arc::clone(&closing);
        let loop_aborting = Arc::clone(&aborting);
        let driver = thread::Builder::new()
            .name(format!("mesh-poll{}", cfg.proc_id))
            .spawn(move || {
                poll_loop(
                    loop_cfg,
                    poll_links,
                    cmd_rx,
                    loop_events,
                    loop_closing,
                    loop_aborting,
                )
            })?;

        Ok(PollMesh {
            cfg,
            cmd_tx,
            event_tx,
            event_rx,
            streams,
            closing,
            aborting,
            driver: Some(driver),
            agg_stats,
        })
    }

    /// Graceful shutdown: flush open aggregates, held frames, and
    /// queued traffic, announce `Bye` on every link, close the write
    /// halves, and drain reads until every peer's own `Bye` — or for at
    /// most the liveness budget. Exactly the threaded mesh's contract.
    pub fn shutdown(mut self) {
        self.closing.store(true, Ordering::Relaxed);
        // Wakeup token so the loop notices immediately.
        let _ = self.cmd_tx.send((u32::MAX, WriterCmd::Shutdown));
        if let Some(d) = self.driver.take() {
            let _ = d.join();
        }
    }

    /// Abrupt teardown for tests and fatal-error paths: slam every
    /// socket shut with no `Bye`. Peers observe an unclean close.
    pub fn abort(mut self) {
        self.aborting.store(true, Ordering::Relaxed);
        self.closing.store(true, Ordering::Relaxed);
        for s in self.streams.iter().flatten() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let _ = self.cmd_tx.send((u32::MAX, WriterCmd::Shutdown));
        if let Some(d) = self.driver.take() {
            let _ = d.join();
        }
    }
}

/// The single event loop: drains commands, runs timers, writes and
/// reads every link until `WouldBlock`, then sleeps adaptively.
fn poll_loop(
    cfg: TcpMeshConfig,
    mut links: Vec<Option<PollLink>>,
    cmd_rx: Receiver<(u32, WriterCmd)>,
    events: Sender<MeshEvent>,
    closing: Arc<AtomicBool>,
    aborting: Arc<AtomicBool>,
) {
    let heartbeat = cfg.heartbeat_interval;
    let liveness = cfg.liveness_timeout;
    let mut buf = [0u8; 64 * 1024];
    let mut closing_since: Option<Instant> = None;
    let mut idle = IDLE_MIN;
    let down = |link: &mut PollLink, clean: bool, detail: String| {
        link.done = true;
        let _ = events.send(MeshEvent::PeerDown {
            peer: link.peer,
            clean,
            detail,
        });
    };
    loop {
        if aborting.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        let mut progress = false;

        // -- Shutdown transition: queue the goodbye residue once.
        if closing.load(Ordering::Relaxed) && closing_since.is_none() {
            closing_since = Some(now);
            // Everything already queued departs ahead of the goodbye —
            // the threaded writer gets this ordering for free from its
            // per-link channel FIFO; here the flag races the queue, so
            // drain explicitly first.
            while let Ok((to, cmd)) = cmd_rx.try_recv() {
                if let WriterCmd::Frame(frame) = cmd {
                    if let Some(Some(link)) = links.get_mut(to as usize) {
                        link.stage(frame, now);
                    }
                }
            }
            for link in links.iter_mut().flatten() {
                link.stage_bye(now);
            }
            progress = true;
        }

        // -- Drain commands, unless a slow link is over high water (the
        // unbounded channel then absorbs the burst: backpressure).
        let over_water = links
            .iter()
            .flatten()
            .any(|l| !l.done && l.out.pending() > HIGH_WATER);
        if !over_water && closing_since.is_none() {
            while let Ok((to, cmd)) = cmd_rx.try_recv() {
                if let WriterCmd::Frame(frame) = cmd {
                    if let Some(Some(link)) = links.get_mut(to as usize) {
                        link.stage(frame, now);
                        progress = true;
                        if link.out.pending() > HIGH_WATER {
                            break;
                        }
                    }
                }
            }
        }

        // -- Timers: aggregation-window expiry and idle heartbeats.
        for link in links.iter_mut().flatten() {
            if link.done || link.write_dead {
                continue;
            }
            if let Some(a) = link.agg.as_mut() {
                for departed in a.poll_expired(now) {
                    link.tx.stage(departed, &mut link.out.buf);
                }
            }
            if closing_since.is_none()
                && !link.tx.partitioned
                && now.duration_since(link.last_write) >= heartbeat
            {
                link.tx.flush_held(&mut link.out.buf);
                Frame::Heartbeat.encode_into(&mut link.out.buf);
                // Stamp now: a blocked socket must not trigger a
                // heartbeat per iteration.
                link.last_write = now;
            }
        }

        // -- Write every link until its socket pushes back.
        for link in links.iter_mut().flatten() {
            if link.done || link.write_dead {
                continue;
            }
            while link.out.pending() > 0 {
                match link.stream.write(link.out.tail()) {
                    Ok(0) => {
                        link.write_dead = true;
                        break;
                    }
                    Ok(n) => {
                        link.out.advance(n);
                        link.last_write = Instant::now();
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // The read path owns failure reporting.
                        link.write_dead = true;
                        break;
                    }
                }
            }
            // Shutdown: once the goodbye has fully left, close the
            // write half so the peer's reader sees a clean EOF after
            // its Bye, mirroring the threaded writer.
            if link.bye_sent && !link.write_dead && link.out.pending() == 0 {
                let _ = link.stream.shutdown(std::net::Shutdown::Write);
                link.write_dead = true;
            }
        }

        // -- Read every link until its socket runs dry.
        'links: for link in links.iter_mut().flatten() {
            if link.done {
                continue;
            }
            loop {
                match link.stream.read(&mut buf) {
                    Ok(0) => {
                        down(link, false, "connection closed without Bye".into());
                        continue 'links;
                    }
                    Ok(n) => {
                        link.last_byte = Instant::now();
                        link.dec.push(&buf[..n]);
                        progress = true;
                        loop {
                            match link.dec.next() {
                                Ok(Some(frame)) => {
                                    match link.rx.on_frame(frame, link.peer, &events) {
                                        RxStatus::Open => {}
                                        RxStatus::Closed { clean, detail } => {
                                            down(link, clean, detail);
                                            continue 'links;
                                        }
                                        RxStatus::OwnerGone => {
                                            link.done = true;
                                            continue 'links;
                                        }
                                    }
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    down(link, false, format!("stream corrupt: {e}"));
                                    continue 'links;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        down(link, false, format!("read failed: {e}"));
                        continue 'links;
                    }
                }
            }
            // Liveness: sequence gaps and half-open silence.
            if let Some(lost) = link.rx.gap_expired(liveness) {
                down(
                    link,
                    false,
                    format!("data frame {lost} lost (gap persisted past {liveness:?})"),
                );
                continue;
            }
            if link.last_byte.elapsed() > liveness {
                down(
                    link,
                    false,
                    format!("half-open link: silent for {liveness:?}"),
                );
            }
        }

        // -- Exit: shutdown completes when every link's story ended, or
        // when the drain budget (the liveness timeout, as in the
        // threaded reader) runs out on peers that never say Bye.
        if let Some(since) = closing_since {
            let all_done = links.iter().flatten().all(|l| l.done);
            if all_done || since.elapsed() > liveness {
                return;
            }
        }

        if progress {
            idle = IDLE_MIN;
            continue;
        }

        // -- Sleep until the next command or timer deadline, with the
        // adaptive idle ramp bounding added latency.
        let mut wake = now + idle;
        for link in links.iter().flatten() {
            if link.done {
                continue;
            }
            if let Some(d) = link.agg.as_ref().and_then(|a| a.next_deadline()) {
                wake = wake.min(d);
            }
        }
        let timeout = wake
            .saturating_duration_since(Instant::now())
            .max(Duration::from_micros(100));
        match cmd_rx.recv_timeout(timeout) {
            Ok((to, WriterCmd::Frame(frame))) => {
                let now = Instant::now();
                if closing_since.is_none() {
                    if let Some(Some(link)) = links.get_mut(to as usize) {
                        link.stage(frame, now);
                    }
                }
                idle = IDLE_MIN;
            }
            Ok((_, WriterCmd::Shutdown)) => {
                // Pure wakeup token; the closing/aborting flags carry
                // the actual intent.
                idle = IDLE_MIN;
            }
            Err(RecvTimeoutError::Timeout) => {
                idle = (idle * 2).min(IDLE_MAX);
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Every sender (the mesh handle included) is gone
                // without a shutdown: treat it as one.
                closing.store(true, Ordering::Relaxed);
                idle = (idle * 2).min(IDLE_MAX);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, Selector};
    use crate::wire_agg::AggTuning;
    use warp_core::gvt::GvtToken;
    use warp_core::VirtualTime;

    fn fast_cfg(proc_id: u32, n_procs: u32) -> TcpMeshConfig {
        TcpMeshConfig {
            heartbeat_interval: Duration::from_millis(40),
            liveness_timeout: Duration::from_millis(400),
            connect_timeout: Duration::from_secs(10),
            ..TcpMeshConfig::new(proc_id, n_procs)
        }
    }

    fn pair_with(cfg0: TcpMeshConfig, cfg1: TcpMeshConfig) -> (PollMesh, PollMesh) {
        let l0 = crate::bind_loopback().unwrap();
        let l1 = crate::bind_loopback().unwrap();
        let a0 = l0.local_addr().unwrap();
        let t = thread::spawn(move || PollMesh::establish(cfg1, l1, &[(0, a0)]).unwrap());
        let m0 = PollMesh::establish(cfg0, l0, &[]).unwrap();
        (m0, t.join().unwrap())
    }

    fn pair() -> (PollMesh, PollMesh) {
        pair_with(fast_cfg(0, 2), fast_cfg(1, 2))
    }

    fn data(epoch: u32) -> Frame {
        Frame::Data {
            seq: 0,
            epoch,
            msg: crate::aggregate::PhysMsg {
                src: warp_core::LpId(0),
                dst: warp_core::LpId(1),
                events: vec![],
            },
        }
    }

    fn token(round: u32) -> Frame {
        Frame::Token {
            dst_lp: 0,
            token: GvtToken {
                round,
                min: VirtualTime::new(5),
                count: 0,
            },
        }
    }

    fn expect_frame(m: &PollMesh) -> (u32, Frame) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match m.recv_timeout(Duration::from_millis(100)) {
                Some(MeshEvent::Frame { from, frame }) => return (from, frame),
                Some(MeshEvent::PeerDown { peer, detail, .. }) => {
                    panic!("peer {peer} went down while a frame was expected: {detail}")
                }
                None => {}
            }
        }
        panic!("no frame within 5s");
    }

    fn expect_down(m: &PollMesh) -> (u32, bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Some(MeshEvent::PeerDown { peer, clean, .. }) =
                m.recv_timeout(Duration::from_millis(100))
            {
                return (peer, clean);
            }
        }
        panic!("no PeerDown within 5s");
    }

    fn recv_data_epochs(m: &PollMesh, n: usize) -> Vec<u32> {
        let mut got = Vec::new();
        while got.len() < n {
            match expect_frame(m) {
                (_, Frame::Data { epoch, .. }) => got.push(epoch),
                (_, other) => panic!("expected Data, got {other:?}"),
            }
        }
        got
    }

    #[test]
    fn two_procs_exchange_and_shut_down_cleanly() {
        let (m0, m1) = pair();
        m0.send(1, token(1));
        m1.send(0, token(2));
        assert_eq!(expect_frame(&m1), (0, token(1)));
        assert_eq!(expect_frame(&m0), (1, token(2)));
        let t = thread::spawn(move || {
            assert_eq!(expect_down(&m1), (0, true));
            m1.shutdown();
        });
        m0.shutdown();
        t.join().unwrap();
    }

    #[test]
    fn self_send_loops_back_locally() {
        let (m0, m1) = pair();
        m0.send(0, token(9));
        assert_eq!(expect_frame(&m0), (0, token(9)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn three_proc_mesh_routes_every_pair() {
        let ls: Vec<_> = (0..3).map(|_| crate::bind_loopback().unwrap()).collect();
        let addrs: Vec<_> = ls.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (i, l) in ls.into_iter().enumerate().rev() {
            let peers: Vec<_> = (0..i as u32).map(|j| (j, addrs[j as usize])).collect();
            handles.push(thread::spawn(move || {
                PollMesh::establish(fast_cfg(i as u32, 3), l, &peers).unwrap()
            }));
        }
        let mut meshes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        meshes.sort_by_key(|m| m.proc_id());
        for src in 0..3u32 {
            for dst in 0..3u32 {
                if src == dst {
                    continue;
                }
                meshes[src as usize].send(dst, token(src * 10 + dst));
                assert_eq!(
                    expect_frame(&meshes[dst as usize]),
                    (src, token(src * 10 + dst))
                );
            }
        }
        for m in meshes {
            thread::spawn(move || m.shutdown());
        }
    }

    #[test]
    fn killed_peer_is_reported_unclean() {
        let (m0, m1) = pair();
        m1.abort();
        let (peer, clean) = expect_down(&m0);
        assert_eq!(peer, 1);
        assert!(!clean, "abrupt close must not look like a graceful Bye");
        m0.abort();
    }

    #[test]
    fn idle_link_stays_alive_on_heartbeats() {
        let (m0, m1) = pair();
        thread::sleep(Duration::from_millis(900));
        assert!(m0.try_recv().is_none(), "heartbeats must not surface");
        m0.send(1, token(4));
        assert_eq!(expect_frame(&m1), (0, token(4)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn mixed_transports_interoperate_on_the_same_wire_protocol() {
        // One side threaded, one side poll: the wire admits no
        // difference, so they must talk.
        let l0 = crate::bind_loopback().unwrap();
        let l1 = crate::bind_loopback().unwrap();
        let a0 = l0.local_addr().unwrap();
        let t = thread::spawn(move || PollMesh::establish(fast_cfg(1, 2), l1, &[(0, a0)]).unwrap());
        let m0 = crate::TcpMesh::establish(fast_cfg(0, 2), l0, &[]).unwrap();
        let m1 = t.join().unwrap();
        m0.send(1, token(1));
        assert_eq!(expect_frame(&m1), (0, token(1)));
        m1.send(0, data(7));
        loop {
            if let Some(MeshEvent::Frame {
                frame: Frame::Data { epoch, .. },
                ..
            }) = m0.recv_timeout(Duration::from_secs(5))
            {
                assert_eq!(epoch, 7);
                break;
            }
        }
        let t = thread::spawn(move || m1.shutdown());
        m0.shutdown();
        t.join().unwrap();
    }

    #[test]
    fn duplicated_data_frames_are_deduplicated_in_order() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().with(
            0,
            1,
            FaultKind::Duplicate(Selector::Every { every: 1, phase: 0 }),
        ));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..4 {
            m0.send(1, data(epoch));
        }
        m0.send(1, token(77));
        assert_eq!(recv_data_epochs(&m1, 4), vec![0, 1, 2, 3]);
        assert_eq!(expect_frame(&m1), (0, token(77)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn delayed_data_frames_are_reordered_back() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().with(
            0,
            1,
            FaultKind::Delay {
                sel: Selector::At(0),
                hold: 2,
            },
        ));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..4 {
            m0.send(1, data(epoch));
        }
        assert_eq!(recv_data_epochs(&m1, 4), vec![0, 1, 2, 3]);
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn dropped_data_frame_surfaces_as_unclean_loss() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().with(0, 1, FaultKind::Drop(Selector::At(1))));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..3 {
            m0.send(1, data(epoch));
        }
        assert_eq!(recv_data_epochs(&m1, 1), vec![0]);
        let (peer, clean) = expect_down(&m1);
        assert_eq!(peer, 0);
        assert!(!clean, "a lost frame is an unclean link failure");
        m0.abort();
        m1.abort();
    }

    #[test]
    fn partitioned_link_goes_silent_and_trips_liveness() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().partition(0, 1, 0, 0));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        m0.send(1, data(0)); // swallowed by the partition
        let (peer, clean) = expect_down(&m1);
        assert_eq!(peer, 0);
        assert!(!clean);
        m0.abort();
        m1.abort();
    }

    #[test]
    fn aggregated_stream_arrives_in_order_with_fewer_frames() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.agg = Some(AggTuning {
            window_us: 2_000,
            min_window_us: 100,
            max_window_us: 20_000,
            adapt: true,
            max_batch: 64,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
        });
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..50 {
            m0.send(1, data(epoch));
        }
        assert_eq!(recv_data_epochs(&m1, 50), (0..50).collect::<Vec<_>>());
        let stats = m0.agg_stats();
        assert_eq!(stats.len(), 1);
        assert!(
            stats[0].frames_saved > 0,
            "50 rapid sends never coalesced: {stats:?}"
        );
        // A GVT-critical frame behind the data stream keeps FIFO order.
        m0.send(1, token(99));
        assert_eq!(expect_frame(&m1), (0, token(99)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn shutdown_flushes_the_open_aggregate() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.agg = Some(AggTuning {
            // A window far beyond the test's patience: only the
            // shutdown drain can deliver these frames.
            window_us: 5_000_000,
            min_window_us: 100,
            max_window_us: 10_000_000,
            adapt: false,
            max_batch: 64,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
        });
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..5 {
            m0.send(1, data(epoch));
        }
        m0.shutdown();
        assert_eq!(recv_data_epochs(&m1, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(expect_down(&m1), (0, true));
        m1.shutdown();
    }
}
