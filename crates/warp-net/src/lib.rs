//! # warp-net — communication substrate for the Time Warp kernel
//!
//! Three pieces:
//!
//! * [`aggregate`] — Dynamic Message Aggregation (DyMA): per-LP buffers
//!   that coalesce events to the same destination LP into physical
//!   messages, under the policies of [`policy`] (unaggregated / FAW /
//!   SAAW).
//! * [`policy`] — the aggregation policy configurations, with the SAAW
//!   adaptation law imported from `warp-control`.
//! * [`spsc`] — the threaded executive's transport: a full mesh of
//!   preallocated single-producer/single-consumer ring-buffer lanes
//!   between LP threads (see `docs/hot-path.md`).
//! * [`inproc`] — the channel-based predecessor of [`spsc`], kept as a
//!   reference mesh with the same surface.
//! * [`frame`] + [`tcp`] — the distributed executive's transport: a
//!   length-prefixed, versioned frame codec over the canonical
//!   `warp_core::wire` encoding, and a full TCP mesh of processes with
//!   handshakes, heartbeats, and drain-then-close shutdown.
//! * [`poll`] — the production data plane: the same mesh surface run by
//!   a single readiness-driven event loop (nonblocking sockets, O(1)
//!   threads per process) instead of two threads per link. Selected via
//!   [`Transport::Poll`]; see `docs/data-plane.md`.
//! * [`wire_agg`] — on-the-wire DyMA (protocol v8): per-link
//!   aggregation of outbound `Data` frames into `DataBatch` under a
//!   SAAW-adapted window, shared by both transports.
//! * [`fault`] — deterministic, seeded fault injection (drop / duplicate
//!   / delay / partition / crash) applied at the sending side of each TCP
//!   link, so every recovery path is exercised reproducibly.
//!
//! The *network itself* — the 10 Mb Ethernet of the paper's testbed — is
//! modeled by `warp_core::CostModel` (per-message CPU overheads, wire
//! latency, bandwidth) and realized by the executives: the virtual
//! cluster charges modeled time, the threaded executive moves real bytes.

#![warn(missing_docs)]

pub mod aggregate;
pub mod fault;
pub mod frame;
pub mod inproc;
pub mod mesh_select;
pub mod policy;
pub mod poll;
pub mod spsc;
pub mod tcp;
pub mod wire_agg;

pub use aggregate::{Aggregator, PhysMsg};
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultScope, Selector};
pub use frame::{Frame, FrameDecoder, FrameError, PROTO_VERSION};
pub use inproc::{mesh, Endpoint};
pub use mesh_select::{Mesh, Transport};
pub use policy::AggregationConfig;
pub use poll::PollMesh;
pub use spsc::{lane_mesh, LaneEndpoint};
pub use tcp::{bind_loopback, MeshEvent, MeshSender, TcpMesh, TcpMeshConfig};
pub use wire_agg::{AggTuning, LinkAggStats, LinkAggregator};
