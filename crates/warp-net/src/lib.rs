//! # warp-net — communication substrate for the Time Warp kernel
//!
//! Three pieces:
//!
//! * [`aggregate`] — Dynamic Message Aggregation (DyMA): per-LP buffers
//!   that coalesce events to the same destination LP into physical
//!   messages, under the policies of [`policy`] (unaggregated / FAW /
//!   SAAW).
//! * [`policy`] — the aggregation policy configurations, with the SAAW
//!   adaptation law imported from `warp-control`.
//! * [`inproc`] — the threaded executive's transport: a full mesh of
//!   FIFO channels between LP threads.
//!
//! The *network itself* — the 10 Mb Ethernet of the paper's testbed — is
//! modeled by `warp_core::CostModel` (per-message CPU overheads, wire
//! latency, bandwidth) and realized by the executives: the virtual
//! cluster charges modeled time, the threaded executive moves real bytes.

#![warn(missing_docs)]

pub mod aggregate;
pub mod inproc;
pub mod policy;

pub use aggregate::{Aggregator, PhysMsg};
pub use inproc::{mesh, Endpoint};
pub use policy::AggregationConfig;
