//! # warp-net — communication substrate for the Time Warp kernel
//!
//! Three pieces:
//!
//! * [`aggregate`] — Dynamic Message Aggregation (DyMA): per-LP buffers
//!   that coalesce events to the same destination LP into physical
//!   messages, under the policies of [`policy`] (unaggregated / FAW /
//!   SAAW).
//! * [`policy`] — the aggregation policy configurations, with the SAAW
//!   adaptation law imported from `warp-control`.
//! * [`inproc`] — the threaded executive's transport: a full mesh of
//!   FIFO channels between LP threads.
//! * [`frame`] + [`tcp`] — the distributed executive's transport: a
//!   length-prefixed, versioned frame codec over the canonical
//!   `warp_core::wire` encoding, and a full TCP mesh of processes with
//!   handshakes, heartbeats, and drain-then-close shutdown.
//! * [`fault`] — deterministic, seeded fault injection (drop / duplicate
//!   / delay / partition / crash) applied at the sending side of each TCP
//!   link, so every recovery path is exercised reproducibly.
//!
//! The *network itself* — the 10 Mb Ethernet of the paper's testbed — is
//! modeled by `warp_core::CostModel` (per-message CPU overheads, wire
//! latency, bandwidth) and realized by the executives: the virtual
//! cluster charges modeled time, the threaded executive moves real bytes.

#![warn(missing_docs)]

pub mod aggregate;
pub mod fault;
pub mod frame;
pub mod inproc;
pub mod policy;
pub mod tcp;

pub use aggregate::{Aggregator, PhysMsg};
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultScope, Selector};
pub use frame::{Frame, FrameDecoder, FrameError, PROTO_VERSION};
pub use inproc::{mesh, Endpoint};
pub use policy::AggregationConfig;
pub use tcp::{bind_loopback, MeshEvent, MeshSender, TcpMesh, TcpMeshConfig};
