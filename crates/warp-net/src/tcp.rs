//! TCP process mesh for the distributed executive.
//!
//! A [`TcpMesh`] is the multi-process analogue of [`inproc::mesh`]: a
//! full mesh of loopback-or-LAN TCP connections between `n_procs`
//! processes, carrying [`Frame`]s instead of in-memory packets. The
//! surface mirrors `inproc::Endpoint` — `send`, `try_recv`,
//! `recv_timeout` — so the executive layer can route over either.
//!
//! Establishment is deterministic: process `i` *dials* every peer with a
//! lower id (with retry + exponential backoff, so start-up order does not
//! matter) and *accepts* from every peer with a higher id. Both sides of
//! a fresh connection immediately exchange [`Frame::Hello`]; a protocol
//! version or topology mismatch aborts establishment with an error
//! rather than letting two incompatible builds exchange garbage. The
//! `Hello` also carries the mesh *session epoch*: recovery tears the mesh
//! down and re-establishes it under an incremented session, and an
//! accepted connection claiming a different session (a zombie dial from
//! the dead session) is simply dropped — the listener keeps accepting.
//!
//! Reliability: each link writer stamps outgoing [`Frame::Data`] frames
//! with a per-link sequence number; the reader deduplicates, buffers
//! ahead-of-order frames until the gap fills, and declares the link
//! uncleanly down if a gap persists past the liveness timeout (a lost
//! frame cannot be retransmitted — recovery restarts from a checkpoint
//! instead). A [`FaultPlan`] in the config arms deterministic fault
//! injection on the sending side of each link (see [`crate::fault`]).
//!
//! Liveness: each connection runs a writer thread (sends queued frames,
//! injects [`Frame::Heartbeat`] when idle) and a reader thread (decodes
//! frames, tracks time-since-last-byte). A link silent for longer than
//! the liveness timeout is declared half-open and reported as
//! [`MeshEvent::PeerDown`] with `clean: false` — the same event an
//! abrupt EOF (peer killed) produces. Graceful shutdown sends
//! [`Frame::Bye`], flushes, closes the write half, and keeps draining
//! the read half until the peer's own `Bye` arrives, so no in-flight
//! frame is lost to teardown.
//!
//! [`inproc::mesh`]: crate::inproc::mesh

use crate::fault::{DataFate, FaultPlan, LinkChaos};
use crate::frame::{Frame, FrameDecoder, PROTO_VERSION};
use crate::wire_agg::{AggTuning, LinkAggStats, LinkAggregator};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`TcpMesh`].
#[derive(Clone, Debug)]
pub struct TcpMeshConfig {
    /// This process's id in the mesh (0 = coordinator).
    pub proc_id: u32,
    /// Total number of processes in the mesh.
    pub n_procs: u32,
    /// Mesh session epoch; both ends of every connection must agree
    /// (0 on a fresh run, incremented on each recovery re-establishment).
    pub session: u32,
    /// Idle interval after which the writer injects a heartbeat.
    pub heartbeat_interval: Duration,
    /// Silence threshold after which a link is declared half-open. Also
    /// bounds how long a data-frame sequence gap may persist before the
    /// link is declared lossy (unclean).
    pub liveness_timeout: Duration,
    /// Total budget for establishing the full mesh (dial retries and
    /// accepts included).
    pub connect_timeout: Duration,
    /// First dial-retry backoff.
    pub dial_backoff_start: Duration,
    /// Backoff ceiling (doubles from `dial_backoff_start` up to this).
    pub dial_backoff_max: Duration,
    /// Deterministic fault injection applied on the sending side of each
    /// link (`None` = healthy links).
    pub faults: Option<FaultPlan>,
    /// Frame-body cap enforced by this process's decoders
    /// ([`crate::frame::MAX_FRAME_BYTES`] by default). Lowering it bounds
    /// per-link memory and forces senders — the chunked resume stream in
    /// particular — to keep individual frames small.
    pub max_frame_bytes: usize,
    /// On-the-wire DyMA aggregation (`None` = every `Data` frame departs
    /// immediately, the pre-v8 behavior). The tuning's own byte cap is
    /// overridden by `max_frame_bytes` so a flushed batch can never
    /// exceed what the peer's decoder accepts.
    pub agg: Option<AggTuning>,
}

impl TcpMeshConfig {
    /// Defaults tuned for loopback clusters: 500 ms heartbeats, 5 s
    /// liveness, 30 s establishment budget, 20 ms → 500 ms dial backoff,
    /// session 0, no fault injection.
    pub fn new(proc_id: u32, n_procs: u32) -> Self {
        TcpMeshConfig {
            proc_id,
            n_procs,
            session: 0,
            heartbeat_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(30),
            dial_backoff_start: Duration::from_millis(20),
            dial_backoff_max: Duration::from_millis(500),
            faults: None,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
            agg: None,
        }
    }

    /// The aggregation tuning a link of this mesh should run, with the
    /// byte cap pinned to the mesh frame cap.
    pub(crate) fn link_agg_tuning(&self) -> Option<AggTuning> {
        self.agg.as_ref().filter(|a| a.enabled()).map(|a| {
            let mut t = a.clone();
            t.max_frame_bytes = self.max_frame_bytes;
            t
        })
    }

    /// Check the knobs for internal consistency. [`TcpMesh::establish`]
    /// calls this; executives validate earlier to fail before spawning
    /// processes.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_procs == 0 {
            return Err("n_procs must be at least 1".into());
        }
        if self.proc_id >= self.n_procs {
            return Err(format!(
                "proc_id {} out of range for {} procs",
                self.proc_id, self.n_procs
            ));
        }
        if self.heartbeat_interval.is_zero() {
            return Err("heartbeat_interval must be positive".into());
        }
        if self.liveness_timeout <= self.heartbeat_interval {
            return Err(format!(
                "liveness_timeout ({:?}) must exceed heartbeat_interval ({:?}) \
                 or every idle link is declared dead",
                self.liveness_timeout, self.heartbeat_interval
            ));
        }
        if self.connect_timeout.is_zero() {
            return Err("connect_timeout must be positive".into());
        }
        if self.dial_backoff_start.is_zero() {
            return Err("dial_backoff_start must be positive".into());
        }
        if self.dial_backoff_max < self.dial_backoff_start {
            return Err(format!(
                "dial_backoff_max ({:?}) below dial_backoff_start ({:?})",
                self.dial_backoff_max, self.dial_backoff_start
            ));
        }
        // Control frames (Hello, tokens, acks) must always fit; 1 KiB
        // is far above any of them and far below a useful data cap.
        if self.max_frame_bytes < 1024 {
            return Err(format!(
                "max_frame_bytes ({}) below the 1024-byte floor control frames need",
                self.max_frame_bytes
            ));
        }
        if let Some(agg) = self.agg.as_ref().filter(|a| a.enabled()) {
            if agg.min_window_us == 0 {
                return Err("agg.min_window_us must be positive".into());
            }
            if agg.max_window_us < agg.min_window_us {
                return Err(format!(
                    "agg.max_window_us ({}) below agg.min_window_us ({})",
                    agg.max_window_us, agg.min_window_us
                ));
            }
            if agg.max_batch == 0 {
                return Err("agg.max_batch must be at least 1".into());
            }
        }
        Ok(())
    }
}

/// What the mesh delivers to its owner.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshEvent {
    /// A frame arrived from a peer (or from a loopback self-send).
    Frame {
        /// Sending process id.
        from: u32,
        /// The decoded frame.
        frame: Frame,
    },
    /// A peer's connection ended. `clean` distinguishes a graceful
    /// `Bye` from a crash, half-open link, or protocol violation.
    PeerDown {
        /// The peer process id.
        peer: u32,
        /// True iff the peer announced shutdown with `Bye`.
        clean: bool,
        /// Human-readable cause for diagnostics.
        detail: String,
    },
}

pub(crate) enum WriterCmd {
    Frame(Frame),
    Shutdown,
}

struct Peer {
    cmd_tx: Sender<WriterCmd>,
    /// Clone of the connection, kept so `abort` can slam it shut.
    stream: TcpStream,
    /// Set when we start shutting down: bounds the reader's final drain
    /// so joining it cannot block on a peer that never says `Bye`.
    closing: Arc<AtomicBool>,
    /// Set by `abort` only: tells the writer to exit at its next wakeup
    /// even if it would otherwise write nothing — a *partitioned* link's
    /// writer is deliberately silent, so a dead socket alone would never
    /// make it return, and joining it would hang.
    aborting: Arc<AtomicBool>,
    writer: JoinHandle<()>,
    reader: JoinHandle<()>,
}

/// How a [`MeshSender`] reaches the link machinery: the threaded mesh
/// owns one command channel per link writer; the poll mesh multiplexes
/// every link through its single event loop.
#[derive(Clone)]
pub(crate) enum SenderInner {
    PerLink(Vec<Option<Sender<WriterCmd>>>),
    Shared(Sender<(u32, WriterCmd)>),
}

/// A cloneable sending half of the mesh, for threads that only transmit.
#[derive(Clone)]
pub struct MeshSender {
    pub(crate) proc_id: u32,
    pub(crate) inner: SenderInner,
    pub(crate) loopback: Sender<MeshEvent>,
}

impl MeshSender {
    /// Queue a frame for `to`. Self-sends loop back locally. Sending to
    /// a peer whose link already died is a silent no-op — the owner has
    /// (or will) see the `PeerDown` event and must react there.
    pub fn send(&self, to: u32, frame: Frame) {
        if to == self.proc_id {
            let _ = self.loopback.send(MeshEvent::Frame {
                from: self.proc_id,
                frame,
            });
            return;
        }
        match &self.inner {
            SenderInner::PerLink(cmd_txs) => {
                if let Some(Some(tx)) = cmd_txs.get(to as usize) {
                    let _ = tx.send(WriterCmd::Frame(frame));
                }
            }
            SenderInner::Shared(tx) => {
                let _ = tx.send((to, WriterCmd::Frame(frame)));
            }
        }
    }
}

/// A fully-established process mesh. See the module docs for protocol
/// details.
pub struct TcpMesh {
    cfg: TcpMeshConfig,
    peers: Vec<Option<Peer>>,
    event_tx: Sender<MeshEvent>,
    event_rx: Receiver<MeshEvent>,
    agg_stats: Vec<Option<Arc<Mutex<LinkAggStats>>>>,
}

/// Bind a listener on an ephemeral loopback port.
pub fn bind_loopback() -> io::Result<TcpListener> {
    TcpListener::bind(("127.0.0.1", 0))
}

impl TcpMesh {
    /// This process's id.
    pub fn proc_id(&self) -> u32 {
        self.cfg.proc_id
    }

    /// Total process count.
    pub fn n_procs(&self) -> u32 {
        self.cfg.n_procs
    }

    /// A cloneable sender over the same links.
    pub fn sender(&self) -> MeshSender {
        MeshSender {
            proc_id: self.cfg.proc_id,
            inner: SenderInner::PerLink(
                self.peers
                    .iter()
                    .map(|p| p.as_ref().map(|p| p.cmd_tx.clone()))
                    .collect(),
            ),
            loopback: self.event_tx.clone(),
        }
    }

    /// Per-link aggregation gauges (links with aggregation off are
    /// absent). A live snapshot: callers may read it mid-run.
    pub fn agg_stats(&self) -> Vec<LinkAggStats> {
        self.agg_stats
            .iter()
            .filter_map(|s| s.as_ref().map(|s| s.lock().unwrap().clone()))
            .collect()
    }

    /// Queue a frame for `to` (see [`MeshSender::send`]).
    pub fn send(&self, to: u32, frame: Frame) {
        if to == self.cfg.proc_id {
            let _ = self.event_tx.send(MeshEvent::Frame {
                from: self.cfg.proc_id,
                frame,
            });
            return;
        }
        if let Some(Some(peer)) = self.peers.get(to as usize) {
            let _ = peer.cmd_tx.send(WriterCmd::Frame(frame));
        }
    }

    /// Next event if one is already queued.
    pub fn try_recv(&self) -> Option<MeshEvent> {
        self.event_rx.try_recv().ok()
    }

    /// Block up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<MeshEvent> {
        match self.event_rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Establish the full mesh. `listener` must already be bound;
    /// `peer_addrs` must contain an address for every peer with an id
    /// lower than `cfg.proc_id` (higher ids dial us and extra entries
    /// are ignored). Blocks until every link is up and handshaken, or
    /// fails within `cfg.connect_timeout`.
    pub fn establish(
        cfg: TcpMeshConfig,
        listener: TcpListener,
        peer_addrs: &[(u32, SocketAddr)],
    ) -> io::Result<TcpMesh> {
        let links = establish_links(&cfg, listener, peer_addrs)?;

        // All links are up: spawn the per-connection reader/writer pairs.
        let n = cfg.n_procs as usize;
        let (event_tx, event_rx) = mpsc::channel();
        let mut peers: Vec<Option<Peer>> = (0..n).map(|_| None).collect();
        let mut agg_stats: Vec<Option<Arc<Mutex<LinkAggStats>>>> = (0..n).map(|_| None).collect();
        for (peer_id, slot) in links.into_iter().enumerate() {
            let Some((stream, dec)) = slot else { continue };
            let (cmd_tx, cmd_rx) = mpsc::channel();
            let wr = stream.try_clone()?;
            let hb = cfg.heartbeat_interval;
            let chaos = cfg
                .faults
                .as_ref()
                .and_then(|p| p.link(cfg.proc_id, peer_id as u32, cfg.session));
            let ctl_chaos = cfg
                .faults
                .as_ref()
                .and_then(|p| p.link_control(cfg.proc_id, peer_id as u32, cfg.session));
            let agg = cfg
                .link_agg_tuning()
                .map(|t| LinkAggregator::new(peer_id as u32, t));
            agg_stats[peer_id] = agg.as_ref().map(|a| a.stats());
            let aborting = Arc::new(AtomicBool::new(false));
            let aborting_w = Arc::clone(&aborting);
            let writer = thread::Builder::new()
                .name(format!("mesh-w{}-{peer_id}", cfg.proc_id))
                .spawn(move || writer_loop(wr, cmd_rx, hb, chaos, ctl_chaos, agg, aborting_w))?;
            let rd = stream.try_clone()?;
            let tx = event_tx.clone();
            let live = cfg.liveness_timeout;
            let pid = peer_id as u32;
            let closing = Arc::new(AtomicBool::new(false));
            let closing_r = Arc::clone(&closing);
            let reader = thread::Builder::new()
                .name(format!("mesh-r{}-{peer_id}", cfg.proc_id))
                .spawn(move || reader_loop(rd, dec, tx, pid, live, closing_r))?;
            peers[peer_id] = Some(Peer {
                cmd_tx,
                stream,
                closing,
                aborting,
                writer,
                reader,
            });
        }

        Ok(TcpMesh {
            cfg,
            peers,
            event_tx,
            event_rx,
            agg_stats,
        })
    }

    /// Graceful shutdown: announce `Bye` on every link, flush, close
    /// the write halves, then drain each read half until the peer's own
    /// `Bye` — or for at most the liveness timeout if the peer keeps the
    /// link open (it may not be shutting down yet). Frames already
    /// queued are sent before the `Bye`.
    pub fn shutdown(mut self) {
        for peer in self.peers.iter().flatten() {
            peer.closing.store(true, Ordering::Relaxed);
            let _ = peer.cmd_tx.send(WriterCmd::Shutdown);
        }
        for peer in self.peers.iter_mut().filter_map(Option::take) {
            let _ = peer.writer.join();
            let _ = peer.reader.join();
        }
    }

    /// Abrupt teardown for tests and fatal-error paths: slam every
    /// socket shut with no `Bye`. Peers observe an unclean close.
    pub fn abort(mut self) {
        for peer in self.peers.iter().flatten() {
            peer.closing.store(true, Ordering::Relaxed);
            peer.aborting.store(true, Ordering::Relaxed);
            let _ = peer.stream.shutdown(std::net::Shutdown::Both);
        }
        for peer in self.peers.iter_mut().filter_map(Option::take) {
            drop(peer.cmd_tx);
            let _ = peer.writer.join();
            let _ = peer.reader.join();
        }
    }
}

/// Floor on the per-connection handshake budget in the accept loop, so
/// sub-second liveness settings (tests) don't reject slow genuine peers.
const ACCEPT_HS_FLOOR: Duration = Duration::from_secs(2);

/// Dial every lower-id peer and accept every higher-id one, handshakes
/// included: the transport-independent half of mesh establishment,
/// shared by the threaded mesh and the poll mesh. Returns one
/// `(connected stream, decoder-with-residue)` per peer slot (`None` at
/// our own id). Streams are left in *blocking* mode; the caller picks
/// its I/O discipline.
pub(crate) fn establish_links(
    cfg: &TcpMeshConfig,
    listener: TcpListener,
    peer_addrs: &[(u32, SocketAddr)],
) -> io::Result<Vec<Option<(TcpStream, FrameDecoder)>>> {
    cfg.validate()
        .map_err(|m| io::Error::new(io::ErrorKind::InvalidInput, m))?;
    let deadline = Instant::now() + cfg.connect_timeout;
    let n = cfg.n_procs as usize;
    let mut links: Vec<Option<(TcpStream, FrameDecoder)>> = (0..n).map(|_| None).collect();

    // Dial every lower-id peer concurrently; each dialer retries
    // with exponential backoff so it tolerates peers that have not
    // bound their listener yet.
    let mut dialers = Vec::new();
    for &(peer, addr) in peer_addrs {
        if peer >= cfg.proc_id {
            continue;
        }
        let cfg = cfg.clone();
        dialers.push(thread::spawn(
            move || -> io::Result<(u32, TcpStream, FrameDecoder)> {
                let stream = dial_with_backoff(&cfg, addr, deadline)?;
                let (id, session, dec) = handshake(&stream, &cfg, deadline)?;
                if id != peer {
                    return Err(proto_err(format!(
                        "dialed proc {peer} at {addr} but it identified as proc {id}"
                    )));
                }
                if session != cfg.session {
                    return Err(proto_err(format!(
                        "session mismatch dialing proc {peer}: ours {}, peer {session}",
                        cfg.session
                    )));
                }
                Ok((peer, stream, dec))
            },
        ));
    }
    let expected_dials = dialers.len();
    if expected_dials != cfg.proc_id as usize {
        return Err(proto_err(format!(
            "proc {} needs addresses for all {} lower-id peers, got {}",
            cfg.proc_id, cfg.proc_id, expected_dials
        )));
    }

    // Accept every higher-id peer on the listener meanwhile.
    let mut accepted = 0usize;
    let expect_accepts = n - cfg.proc_id as usize - 1;
    listener.set_nonblocking(true)?;
    while accepted < expect_accepts {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "proc {}: only {accepted}/{expect_accepts} peers connected in time",
                    cfg.proc_id
                ),
            ));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                // Bound each accepted handshake separately: a zombie
                // connection from a dead session that never writes
                // must not pin the whole establishment.
                let hs_deadline =
                    deadline.min(Instant::now() + cfg.liveness_timeout.max(ACCEPT_HS_FLOOR));
                let (id, session, dec) = match handshake(&stream, cfg, hs_deadline) {
                    Ok(hs) => hs,
                    // Version/topology mismatches and garbage are a
                    // fatal build-skew signal...
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                    // ...but a connection that stalls or dies mid-
                    // handshake is just a stale dialer: keep accepting.
                    Err(_) => continue,
                };
                if session != cfg.session {
                    // A dial left over from a dead session; reject the
                    // connection, not the establishment.
                    continue;
                }
                if id <= cfg.proc_id || id as usize >= n {
                    return Err(proto_err(format!(
                        "accepted a connection claiming proc id {id}, expected one of {}..{}",
                        cfg.proc_id + 1,
                        n
                    )));
                }
                if links[id as usize].is_some() {
                    return Err(proto_err(format!("proc {id} connected twice")));
                }
                links[id as usize] = Some((stream, dec));
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }

    for d in dialers {
        let (peer, stream, dec) = d
            .join()
            .map_err(|_| proto_err("dialer thread panicked".into()))??;
        links[peer as usize] = Some((stream, dec));
    }
    Ok(links)
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Deterministic "equal jitter" dial backoff: attempt `n` sleeps
/// somewhere in `[exp/2, exp]`, where `exp = start·2ⁿ` capped at `max`.
/// The point within the band is a pure hash of `(seed, attempt)`, so a
/// given dialer backs off identically on every run (reproducible
/// tests), while distinct dialers — distinct seeds — spread out across
/// the band instead of retrying in lock-step. That spread is what keeps
/// a mass rejoin after a coordinator restart from thundering-herding
/// the freshly re-bound admission listener.
pub fn jittered_backoff(start: Duration, max: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = start.saturating_mul(1u32 << attempt.min(16)).min(max);
    let half = exp / 2;
    let span = exp.saturating_sub(half).as_nanos() as u64;
    let jitter = if span == 0 {
        0
    } else {
        crate::fault::splitmix(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            % (span + 1)
    };
    half + Duration::from_nanos(jitter)
}

/// Per-dialer jitter seed: decorrelates processes retrying against the
/// same listener without any shared state (deterministic per identity).
fn dial_seed(proc_id: u32, addr: &SocketAddr) -> u64 {
    crate::fault::splitmix(((proc_id as u64) << 32) ^ ((addr.port() as u64) << 8) ^ 0xD1A1)
}

fn dial_with_backoff(
    cfg: &TcpMeshConfig,
    addr: SocketAddr,
    deadline: Instant,
) -> io::Result<TcpStream> {
    let seed = dial_seed(cfg.proc_id, &addr);
    let mut attempt = 0u32;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("gave up dialing {addr}"),
            ));
        }
        let attempt_budget = (deadline - now).min(Duration::from_secs(1));
        match TcpStream::connect_timeout(&addr, attempt_budget) {
            Ok(s) => return Ok(s),
            Err(_) => {
                let pause =
                    jittered_backoff(cfg.dial_backoff_start, cfg.dial_backoff_max, attempt, seed);
                thread::sleep(pause.min(deadline.saturating_duration_since(Instant::now())));
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

/// Exchange `Hello`s on a fresh connection. Returns the peer's claimed
/// proc id and session epoch, plus a decoder holding any bytes the peer
/// pipelined after its `Hello` — those must seed the reader, not be
/// dropped. The caller decides what a session mismatch means (fatal for
/// a dialer, skip-the-connection for the accept loop).
fn handshake(
    stream: &TcpStream,
    cfg: &TcpMeshConfig,
    deadline: Instant,
) -> io::Result<(u32, u32, FrameDecoder)> {
    stream.set_nodelay(true)?;
    let ours = Frame::Hello {
        version: PROTO_VERSION,
        proc_id: cfg.proc_id,
        n_procs: cfg.n_procs,
        session: cfg.session,
    };
    (&*stream).write_all(&ours.encode())?;

    let mut dec = FrameDecoder::with_limit(cfg.max_frame_bytes);
    let mut buf = [0u8; 4096];
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let frame = loop {
        if let Some(f) = dec.next().map_err(|e| proto_err(e.to_string()))? {
            break f;
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "peer never completed the handshake",
            ));
        }
        match (&*stream).read(&mut buf) {
            Ok(0) => {
                // Not `InvalidData`: a vanished dialer is a liveness
                // accident, not build skew, and the accept loop survives
                // it.
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                ));
            }
            Ok(n) => dec.push(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    };
    match frame {
        Frame::Hello {
            version,
            proc_id,
            n_procs,
            session,
        } => {
            if version != PROTO_VERSION {
                return Err(proto_err(format!(
                    "protocol version mismatch: ours {PROTO_VERSION}, peer {version}"
                )));
            }
            if n_procs != cfg.n_procs {
                return Err(proto_err(format!(
                    "topology mismatch: we expect {} procs, peer expects {n_procs}",
                    cfg.n_procs
                )));
            }
            Ok((proc_id, session, dec))
        }
        other => Err(proto_err(format!(
            "expected Hello as the first frame, got {other:?}"
        ))),
    }
}

/// Per-link outbound state: data-frame sequence stamping, fault
/// injection, and the buffer of frames a `Delay` rule is holding back.
/// Shared by the threaded writer and the poll loop.
pub(crate) struct LinkTx {
    next_seq: u64,
    chaos: Option<LinkChaos>,
    /// Control-plane (`Token`/`GvtNews`) chaos: its own rule stream with
    /// its own ordinal counter, so a control partition silences the GVT
    /// ring while data and heartbeats keep flowing.
    ctl_chaos: Option<LinkChaos>,
    ctl_next_seq: u64,
    /// A control-scope `Partition` fired: GVT frames vanish, all else
    /// flows — the wedged-but-connected failure mode.
    ctl_partitioned: bool,
    /// Held-back (delayed) encoded frames, keyed by the sequence number
    /// whose transmission releases them.
    held: Vec<(u64, Vec<u8>)>,
    /// A `Partition` rule fired: the link is silent for the session.
    pub(crate) partitioned: bool,
}

impl LinkTx {
    pub(crate) fn new(chaos: Option<LinkChaos>, ctl_chaos: Option<LinkChaos>) -> Self {
        LinkTx {
            next_seq: 0,
            chaos,
            ctl_chaos,
            ctl_next_seq: 0,
            ctl_partitioned: false,
            held: Vec::new(),
            partitioned: false,
        }
    }

    /// Stamp and encode one outgoing frame into `out`, applying any
    /// fault rules. Data frames consume a sequence number even when a
    /// fault swallows them — that is exactly what makes the loss visible
    /// to the receiver as a gap.
    pub(crate) fn stage(&mut self, mut frame: Frame, out: &mut Vec<u8>) {
        if self.partitioned {
            return;
        }
        if matches!(frame, Frame::Token { .. } | Frame::GvtNews { .. }) {
            if self.ctl_partitioned {
                return;
            }
            let Some(c) = &self.ctl_chaos else {
                frame.encode_into(out);
                return;
            };
            let s = self.ctl_next_seq;
            self.ctl_next_seq += 1;
            match c.fate(s) {
                DataFate::Drop => {}
                DataFate::Partition => self.ctl_partitioned = true,
                DataFate::Crash => std::process::abort(),
                // Duplicate/Hold degrade to delivery: a duplicated
                // Mattern token or a reordered GvtNews corrupts the GVT
                // computation itself (see the fault module docs).
                DataFate::Deliver | DataFate::Duplicate | DataFate::Hold { .. } => {
                    frame.encode_into(out)
                }
            }
            return;
        }
        // A `DataBatch` is one sequenced unit, exactly like `Data`: one
        // chaos fate, one receiver-side dedup/reorder slot per batch.
        let seq_slot = match &mut frame {
            Frame::Data { seq, .. } | Frame::DataBatch { seq, .. } => seq,
            _ => {
                frame.encode_into(out);
                return;
            }
        };
        let s = self.next_seq;
        self.next_seq += 1;
        *seq_slot = s;
        let fate = self.chaos.as_ref().map_or(DataFate::Deliver, |c| c.fate(s));
        match fate {
            DataFate::Deliver => frame.encode_into(out),
            DataFate::Duplicate => {
                frame.encode_into(out);
                frame.encode_into(out);
            }
            DataFate::Drop => {}
            DataFate::Hold { release_after } => {
                let mut bytes = Vec::new();
                frame.encode_into(&mut bytes);
                self.held.push((release_after, bytes));
            }
            DataFate::Partition => {
                // Frames staged earlier in this batch still go out (they
                // precede the partition point); everything from here on
                // is swallowed, heartbeats included.
                self.partitioned = true;
                self.held.clear();
                return;
            }
            DataFate::Crash => std::process::abort(),
        }
        // Frames the current one has now overtaken go out (reordered).
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= s {
                let (_, bytes) = self.held.remove(i);
                out.extend_from_slice(&bytes);
            } else {
                i += 1;
            }
        }
    }

    /// Release everything still held — on idle and before `Bye`, so a
    /// delayed frame is never lost to quiescence or shutdown.
    pub(crate) fn flush_held(&mut self, out: &mut Vec<u8>) {
        if self.partitioned {
            return;
        }
        self.held.sort_by_key(|(release, _)| *release);
        for (_, bytes) in self.held.drain(..) {
            out.extend_from_slice(&bytes);
        }
    }
}

fn writer_loop(
    stream: TcpStream,
    cmd_rx: Receiver<WriterCmd>,
    heartbeat: Duration,
    chaos: Option<LinkChaos>,
    ctl_chaos: Option<LinkChaos>,
    mut agg: Option<LinkAggregator>,
    aborting: Arc<AtomicBool>,
) {
    let mut w = &stream;
    let mut out = Vec::with_capacity(4096);
    let mut tx = LinkTx::new(chaos, ctl_chaos);
    let say_bye = |mut w: &TcpStream| {
        let _ = w.write_all(&Frame::Bye.encode());
        let _ = w.flush();
        let _ = stream.shutdown(std::net::Shutdown::Write);
    };
    // Stage one application frame, routing `Data` through the
    // aggregation window when one is configured.
    let stage = |tx: &mut LinkTx, agg: &mut Option<LinkAggregator>, f: Frame, out: &mut Vec<u8>| {
        match agg {
            Some(a) => {
                for departed in a.offer(f, Instant::now()) {
                    tx.stage(departed, out);
                }
            }
            None => tx.stage(f, out),
        }
    };
    // Residue on shutdown: the open aggregate departs before Bye.
    let drain_agg = |tx: &mut LinkTx, agg: &mut Option<LinkAggregator>, out: &mut Vec<u8>| {
        if let Some(a) = agg {
            for departed in a.close(Instant::now()) {
                tx.stage(departed, out);
            }
        }
    };
    // The last instant anything hit the wire: heartbeats key off it so
    // the shorter aggregation wakeups don't triple the idle probe rate.
    let mut last_write = Instant::now();
    loop {
        // Sleep until a command arrives, the open aggregate must flush,
        // or a heartbeat falls due — whichever is soonest.
        let now = Instant::now();
        let hb_due = last_write + heartbeat;
        let mut wake = hb_due;
        if let Some(d) = agg.as_ref().and_then(|a| a.next_deadline()) {
            wake = wake.min(d);
        }
        let timeout = wake
            .saturating_duration_since(now)
            .max(Duration::from_millis(1));
        match cmd_rx.recv_timeout(timeout) {
            Ok(WriterCmd::Frame(frame)) => {
                out.clear();
                stage(&mut tx, &mut agg, frame, &mut out);
                // Opportunistically coalesce whatever else is queued —
                // without losing a Shutdown hiding behind the frames.
                let mut shutdown_after = false;
                loop {
                    match cmd_rx.try_recv() {
                        Ok(WriterCmd::Frame(f)) => {
                            stage(&mut tx, &mut agg, f, &mut out);
                            if out.len() > 1 << 20 {
                                break;
                            }
                        }
                        Ok(WriterCmd::Shutdown) => {
                            shutdown_after = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
                if shutdown_after {
                    drain_agg(&mut tx, &mut agg, &mut out);
                    tx.flush_held(&mut out);
                }
                if !out.is_empty() {
                    if w.write_all(&out).is_err() {
                        return; // reader reports the dead link
                    }
                    last_write = Instant::now();
                }
                if shutdown_after {
                    if !tx.partitioned {
                        say_bye(w);
                    }
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // An abort slams the socket, but only a *write* would
                // notice — and a partitioned link never writes. The flag
                // is the sole way its writer learns the mesh is gone.
                if aborting.load(Ordering::Relaxed) {
                    return;
                }
                if tx.partitioned {
                    continue; // a partitioned link heartbeats nothing
                }
                out.clear();
                let now = Instant::now();
                if let Some(a) = agg.as_mut() {
                    for departed in a.poll_expired(now) {
                        tx.stage(departed, &mut out);
                    }
                }
                if now >= last_write + heartbeat {
                    tx.flush_held(&mut out);
                    out.extend_from_slice(&Frame::Heartbeat.encode());
                }
                if !out.is_empty() {
                    if w.write_all(&out).is_err() {
                        return;
                    }
                    last_write = Instant::now();
                }
            }
            Ok(WriterCmd::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                if !tx.partitioned {
                    out.clear();
                    drain_agg(&mut tx, &mut agg, &mut out);
                    tx.flush_held(&mut out);
                    if !out.is_empty() && w.write_all(&out).is_err() {
                        return;
                    }
                    say_bye(w);
                }
                return;
            }
        }
    }
}

/// What [`LinkRx::on_frame`] concluded about one decoded frame.
#[derive(Debug)]
pub(crate) enum RxStatus {
    /// Keep reading.
    Open,
    /// The peer ended its stream with `Bye`; unclean when a sequence
    /// gap never filled (those frames are lost for good).
    Closed { clean: bool, detail: String },
    /// The mesh owner dropped its receiver; stop reading silently.
    OwnerGone,
}

/// Per-link inbound state: data-frame deduplication, reorder buffering
/// and gap tracking, plus `DataBatch` fan-out. Shared by the threaded
/// reader and the poll loop so sequencing semantics cannot diverge
/// between transports.
pub(crate) struct LinkRx {
    /// The next expected data-frame sequence number.
    expected_seq: u64,
    /// Frames that arrived ahead of a gap, keyed by sequence.
    ahead: BTreeMap<u64, Frame>,
    /// When the oldest unfilled gap opened.
    gap_since: Option<Instant>,
}

impl LinkRx {
    pub(crate) fn new() -> Self {
        LinkRx {
            expected_seq: 0,
            ahead: BTreeMap::new(),
            gap_since: None,
        }
    }

    /// Deliver one sequenced unit to the owner. A batch fans out as the
    /// run of `Data` frames it replaced — the executive layer never
    /// sees `DataBatch`, so aggregation is invisible above the mesh.
    fn dispatch(events: &Sender<MeshEvent>, peer: u32, frame: Frame) -> bool {
        match frame {
            Frame::DataBatch { entries, .. } => {
                for (epoch, msg) in entries {
                    let frame = Frame::Data { seq: 0, epoch, msg };
                    if events.send(MeshEvent::Frame { from: peer, frame }).is_err() {
                        return false;
                    }
                }
                true
            }
            frame => events.send(MeshEvent::Frame { from: peer, frame }).is_ok(),
        }
    }

    /// Feed one decoded frame through the sequencing machinery,
    /// emitting deliverable frames on `events`.
    pub(crate) fn on_frame(
        &mut self,
        frame: Frame,
        peer: u32,
        events: &Sender<MeshEvent>,
    ) -> RxStatus {
        match frame {
            Frame::Heartbeat => RxStatus::Open,
            Frame::Bye => {
                if self.ahead.is_empty() {
                    RxStatus::Closed {
                        clean: true,
                        detail: "peer said Bye".into(),
                    }
                } else {
                    // The peer finished sending while we still wait for
                    // a gap to fill: those frames are lost.
                    RxStatus::Closed {
                        clean: false,
                        detail: format!(
                            "peer said Bye but data frame {} never arrived \
                             ({} buffered beyond the gap)",
                            self.expected_seq,
                            self.ahead.len()
                        ),
                    }
                }
            }
            frame @ (Frame::Data { .. } | Frame::DataBatch { .. }) => {
                let seq = match &frame {
                    Frame::Data { seq, .. } | Frame::DataBatch { seq, .. } => *seq,
                    _ => unreachable!(),
                };
                if seq < self.expected_seq {
                    // Duplicate of an already-delivered frame.
                    return RxStatus::Open;
                }
                if seq > self.expected_seq {
                    // Ahead of a gap: buffer until the gap fills
                    // (insert dedups ahead-of-order duplicates too).
                    self.ahead.insert(seq, frame);
                    self.gap_since.get_or_insert_with(Instant::now);
                    return RxStatus::Open;
                }
                if !Self::dispatch(events, peer, frame) {
                    return RxStatus::OwnerGone;
                }
                self.expected_seq += 1;
                while let Some(f) = self.ahead.remove(&self.expected_seq) {
                    if !Self::dispatch(events, peer, f) {
                        return RxStatus::OwnerGone;
                    }
                    self.expected_seq += 1;
                }
                self.gap_since = if self.ahead.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                RxStatus::Open
            }
            frame => {
                if events.send(MeshEvent::Frame { from: peer, frame }).is_err() {
                    return RxStatus::OwnerGone;
                }
                RxStatus::Open
            }
        }
    }

    /// A gap that outlives the liveness budget means the frame was
    /// lost, not reordered — there is no retransmission, so the link is
    /// broken for good. Returns the lost sequence number.
    pub(crate) fn gap_expired(&self, liveness: Duration) -> Option<u64> {
        self.gap_since
            .and_then(|t| (t.elapsed() > liveness).then_some(self.expected_seq))
    }
}

fn reader_loop(
    stream: TcpStream,
    mut dec: FrameDecoder,
    events: Sender<MeshEvent>,
    peer: u32,
    liveness: Duration,
    closing: Arc<AtomicBool>,
) {
    let down = |clean: bool, detail: String| {
        let _ = events.send(MeshEvent::PeerDown {
            peer,
            clean,
            detail,
        });
    };
    // Poll in slices so silence is noticed within a fraction of the
    // liveness budget even though `read` itself blocks.
    let poll = (liveness / 4).max(Duration::from_millis(10));
    if stream.set_read_timeout(Some(poll)).is_err() {
        down(false, "could not arm the read timeout".into());
        return;
    }
    let mut last_byte = Instant::now();
    let mut buf = [0u8; 64 * 1024];
    let mut closing_since: Option<Instant> = None;
    let mut rx = LinkRx::new();
    loop {
        // Once our side starts shutting down, drain for at most the
        // liveness budget: a peer that is not shutting down yet keeps
        // heartbeating and would otherwise pin this thread (and the
        // owner's `shutdown` join) forever.
        if closing.load(Ordering::Relaxed) {
            let since = *closing_since.get_or_insert_with(Instant::now);
            if since.elapsed() > liveness {
                return;
            }
        }
        // Drain everything already buffered (handshake residue first).
        loop {
            match dec.next() {
                Ok(Some(frame)) => match rx.on_frame(frame, peer, &events) {
                    RxStatus::Open => {}
                    RxStatus::Closed { clean, detail } => {
                        down(clean, detail);
                        return;
                    }
                    RxStatus::OwnerGone => return,
                },
                Ok(None) => break,
                Err(e) => {
                    down(false, format!("stream corrupt: {e}"));
                    return;
                }
            }
        }
        if let Some(lost) = rx.gap_expired(liveness) {
            down(
                false,
                format!("data frame {lost} lost (gap persisted past {liveness:?})"),
            );
            return;
        }
        match (&stream).read(&mut buf) {
            Ok(0) => {
                down(false, "connection closed without Bye".into());
                return;
            }
            Ok(n) => {
                last_byte = Instant::now();
                dec.push(&buf[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_byte.elapsed() > liveness {
                    down(false, format!("half-open link: silent for {liveness:?}"));
                    return;
                }
            }
            Err(e) => {
                down(false, format!("read failed: {e}"));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::gvt::GvtToken;
    use warp_core::VirtualTime;

    use crate::fault::{FaultKind, Selector};

    #[test]
    fn jittered_backoff_is_deterministic_banded_and_capped() {
        let start = Duration::from_millis(20);
        let max = Duration::from_millis(500);
        for attempt in 0..20 {
            let a = jittered_backoff(start, max, attempt, 42);
            let b = jittered_backoff(start, max, attempt, 42);
            assert_eq!(a, b, "same seed+attempt must sleep identically");
            let exp = start.saturating_mul(1u32 << attempt.min(16)).min(max);
            assert!(a >= exp / 2, "attempt {attempt}: {a:?} below band");
            assert!(a <= exp, "attempt {attempt}: {a:?} above band");
            assert!(a <= max, "attempt {attempt}: {a:?} above cap");
        }
        // Distinct seeds must not retry in lock-step: across a spread of
        // dialers at the same attempt, at least two pick different points.
        let picks: Vec<Duration> = (0..8)
            .map(|seed| jittered_backoff(start, max, 4, seed))
            .collect();
        assert!(
            picks.iter().any(|p| *p != picks[0]),
            "eight seeds all chose {:?} — no jitter spread",
            picks[0]
        );
    }

    fn fast_cfg(proc_id: u32, n_procs: u32) -> TcpMeshConfig {
        TcpMeshConfig {
            heartbeat_interval: Duration::from_millis(40),
            liveness_timeout: Duration::from_millis(400),
            connect_timeout: Duration::from_secs(10),
            ..TcpMeshConfig::new(proc_id, n_procs)
        }
    }

    fn pair() -> (TcpMesh, TcpMesh) {
        pair_with(fast_cfg(0, 2), fast_cfg(1, 2))
    }

    fn pair_with(cfg0: TcpMeshConfig, cfg1: TcpMeshConfig) -> (TcpMesh, TcpMesh) {
        let l0 = bind_loopback().unwrap();
        let l1 = bind_loopback().unwrap();
        let a0 = l0.local_addr().unwrap();
        let t = thread::spawn(move || TcpMesh::establish(cfg1, l1, &[(0, a0)]).unwrap());
        let m0 = TcpMesh::establish(cfg0, l0, &[]).unwrap();
        (m0, t.join().unwrap())
    }

    /// An empty-payload data frame; `epoch` doubles as the test's marker.
    fn data(epoch: u32) -> Frame {
        Frame::Data {
            seq: 0, // stamped by the link writer
            epoch,
            msg: crate::aggregate::PhysMsg {
                src: warp_core::LpId(0),
                dst: warp_core::LpId(1),
                events: vec![],
            },
        }
    }

    fn recv_data_epochs(m: &TcpMesh, n: usize) -> Vec<u32> {
        let mut got = Vec::new();
        while got.len() < n {
            match expect_frame(m) {
                (_, Frame::Data { epoch, .. }) => got.push(epoch),
                (_, other) => panic!("expected Data, got {other:?}"),
            }
        }
        got
    }

    fn token(round: u32) -> Frame {
        Frame::Token {
            dst_lp: 0,
            token: GvtToken {
                round,
                min: VirtualTime::new(5),
                count: 0,
            },
        }
    }

    fn expect_frame(m: &TcpMesh) -> (u32, Frame) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match m.recv_timeout(Duration::from_millis(100)) {
                Some(MeshEvent::Frame { from, frame }) => return (from, frame),
                Some(MeshEvent::PeerDown { peer, detail, .. }) => {
                    panic!("peer {peer} went down while a frame was expected: {detail}")
                }
                None => {}
            }
        }
        panic!("no frame within 5s");
    }

    fn expect_down(m: &TcpMesh) -> (u32, bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Some(MeshEvent::PeerDown { peer, clean, .. }) =
                m.recv_timeout(Duration::from_millis(100))
            {
                return (peer, clean);
            }
        }
        panic!("no PeerDown within 5s");
    }

    #[test]
    fn two_procs_exchange_and_shut_down_cleanly() {
        let (m0, m1) = pair();
        m0.send(1, token(1));
        m1.send(0, token(2));
        assert_eq!(expect_frame(&m1), (0, token(1)));
        assert_eq!(expect_frame(&m0), (1, token(2)));

        let t = thread::spawn(move || {
            assert_eq!(expect_down(&m1), (0, true));
            m1.shutdown();
        });
        m0.send(1, token(3)); // queued before Bye — must still arrive? drained by reader exit
        m0.shutdown();
        t.join().unwrap();
    }

    #[test]
    fn self_send_loops_back_locally() {
        let (m0, m1) = pair();
        m0.send(0, token(9));
        assert_eq!(expect_frame(&m0), (0, token(9)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn three_proc_mesh_routes_every_pair() {
        let ls: Vec<_> = (0..3).map(|_| bind_loopback().unwrap()).collect();
        let addrs: Vec<_> = ls.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (i, l) in ls.into_iter().enumerate().rev() {
            let peers: Vec<_> = (0..i as u32).map(|j| (j, addrs[j as usize])).collect();
            handles.push(thread::spawn(move || {
                TcpMesh::establish(fast_cfg(i as u32, 3), l, &peers).unwrap()
            }));
        }
        let mut meshes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        meshes.sort_by_key(|m| m.proc_id());
        for src in 0..3u32 {
            for dst in 0..3u32 {
                if src == dst {
                    continue;
                }
                meshes[src as usize].send(dst, token(src * 10 + dst));
                assert_eq!(
                    expect_frame(&meshes[dst as usize]),
                    (src, token(src * 10 + dst))
                );
            }
        }
        for m in meshes {
            thread::spawn(move || m.shutdown());
        }
    }

    #[test]
    fn dialer_retries_until_listener_appears() {
        // Learn a free port, release it, and only re-bind it after the
        // dialer has been retrying for a while.
        let probe = bind_loopback().unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let t = thread::spawn(move || {
            TcpMesh::establish(fast_cfg(1, 2), bind_loopback().unwrap(), &[(0, addr)])
        });
        thread::sleep(Duration::from_millis(300));
        let listener = TcpListener::bind(addr).expect("ephemeral port rebind");
        let m0 = TcpMesh::establish(fast_cfg(0, 2), listener, &[]).unwrap();
        let m1 = t.join().unwrap().unwrap();
        m1.send(0, token(7));
        assert_eq!(expect_frame(&m0), (1, token(7)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn killed_peer_is_reported_unclean() {
        let (m0, m1) = pair();
        m1.abort(); // no Bye — simulates a killed worker
        let (peer, clean) = expect_down(&m0);
        assert_eq!(peer, 1);
        assert!(!clean, "abrupt close must not look like a graceful Bye");
        m0.abort();
    }

    #[test]
    fn idle_link_stays_alive_on_heartbeats() {
        let (m0, m1) = pair();
        // Well past the liveness timeout with no application traffic.
        thread::sleep(Duration::from_millis(900));
        assert!(m0.try_recv().is_none(), "heartbeats must not surface");
        m0.send(1, token(4));
        assert_eq!(expect_frame(&m1), (0, token(4)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn version_mismatch_aborts_establishment() {
        let listener = bind_loopback().unwrap();
        let addr = listener.local_addr().unwrap();
        let rogue = thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            let bad = Frame::Hello {
                version: PROTO_VERSION + 1,
                proc_id: 1,
                n_procs: 2,
                session: 0,
            };
            (&s).write_all(&bad.encode()).unwrap();
            // Hold the socket open long enough for the other side to read.
            thread::sleep(Duration::from_millis(500));
        });
        let err = match TcpMesh::establish(fast_cfg(0, 2), listener, &[]) {
            Ok(_) => panic!("establishment must fail on a version mismatch"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
        rogue.join().unwrap();
    }

    #[test]
    fn dribbled_bytes_decode_across_segment_boundaries() {
        // A raw peer that handshakes correctly, then writes a Data-bearing
        // stream one byte at a time — every frame must still decode.
        let listener = bind_loopback().unwrap();
        let addr = listener.local_addr().unwrap();
        let rogue = thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let hello = Frame::Hello {
                version: PROTO_VERSION,
                proc_id: 1,
                n_procs: 2,
                session: 0,
            };
            (&s).write_all(&hello.encode()).unwrap();
            let mut payload = Vec::new();
            token(31).encode_into(&mut payload);
            token(32).encode_into(&mut payload);
            Frame::Bye.encode_into(&mut payload);
            for b in payload {
                (&s).write_all(&[b]).unwrap();
                thread::sleep(Duration::from_micros(200));
            }
            // Drain until the mesh closes so its writer never sees EPIPE
            // mid-test.
            let mut sink = [0u8; 1024];
            while matches!((&s).read(&mut sink), Ok(n) if n > 0) {}
        });
        let m0 = TcpMesh::establish(fast_cfg(0, 2), listener, &[]).unwrap();
        assert_eq!(expect_frame(&m0), (1, token(31)));
        assert_eq!(expect_frame(&m0), (1, token(32)));
        assert_eq!(expect_down(&m0), (1, true));
        m0.shutdown();
        rogue.join().unwrap();
    }

    #[test]
    fn invalid_config_is_rejected_before_any_io() {
        let mut cfg = fast_cfg(0, 2);
        cfg.liveness_timeout = cfg.heartbeat_interval; // not strictly greater
        let err = match TcpMesh::establish(cfg, bind_loopback().unwrap(), &[]) {
            Ok(_) => panic!("invalid config must not establish"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("liveness"), "{err}");
    }

    #[test]
    fn duplicated_data_frames_are_deduplicated_in_order() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().with(
            0,
            1,
            FaultKind::Duplicate(Selector::Every { every: 1, phase: 0 }),
        ));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..4 {
            m0.send(1, data(epoch));
        }
        m0.send(1, token(77));
        assert_eq!(recv_data_epochs(&m1, 4), vec![0, 1, 2, 3]);
        // The token right behind the duplicates proves nothing extra was
        // delivered in between.
        assert_eq!(expect_frame(&m1), (0, token(77)));
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn delayed_data_frames_are_reordered_back() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().with(
            0,
            1,
            FaultKind::Delay {
                sel: Selector::At(0),
                hold: 2,
            },
        ));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        // Frame 0 is held until frame 2 ships: wire order 1,2,0,3.
        for epoch in 0..4 {
            m0.send(1, data(epoch));
        }
        assert_eq!(recv_data_epochs(&m1, 4), vec![0, 1, 2, 3]);
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn dropped_data_frame_surfaces_as_unclean_loss() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().with(0, 1, FaultKind::Drop(Selector::At(1))));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        for epoch in 0..3 {
            m0.send(1, data(epoch));
        }
        assert_eq!(recv_data_epochs(&m1, 1), vec![0]);
        let (peer, clean) = expect_down(&m1);
        assert_eq!(peer, 0);
        assert!(!clean, "a lost frame is an unclean link failure");
        m0.abort();
        m1.abort();
    }

    #[test]
    fn partitioned_link_goes_silent_and_trips_liveness() {
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.faults = Some(FaultPlan::new().partition(0, 1, 0, 0));
        let (m0, m1) = pair_with(cfg0, fast_cfg(1, 2));
        m0.send(1, data(0)); // swallowed by the partition
        let (peer, clean) = expect_down(&m1);
        assert_eq!(peer, 0);
        assert!(!clean);
        m0.abort();
        m1.abort();
    }

    #[test]
    fn stale_session_dial_is_skipped_not_fatal() {
        let listener = bind_loopback().unwrap();
        let addr = listener.local_addr().unwrap();
        let mut cfg0 = fast_cfg(0, 2);
        cfg0.session = 1;
        // A zombie from session 0 dials first; the genuine session-1 peer
        // arrives behind it. Establishment must skip the zombie and
        // complete with the real peer.
        let zombie = thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            let stale = Frame::Hello {
                version: PROTO_VERSION,
                proc_id: 1,
                n_procs: 2,
                session: 0,
            };
            (&s).write_all(&stale.encode()).unwrap();
            thread::sleep(Duration::from_millis(500));
        });
        let real = thread::spawn(move || {
            thread::sleep(Duration::from_millis(150));
            let mut cfg1 = fast_cfg(1, 2);
            cfg1.session = 1;
            TcpMesh::establish(cfg1, bind_loopback().unwrap(), &[(0, addr)]).unwrap()
        });
        let m0 = TcpMesh::establish(cfg0, listener, &[]).unwrap();
        let m1 = real.join().unwrap();
        m1.send(0, token(5));
        assert_eq!(expect_frame(&m0), (1, token(5)));
        m0.shutdown();
        m1.shutdown();
        zombie.join().unwrap();
    }
}
