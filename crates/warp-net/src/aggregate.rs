//! Dynamic Message Aggregation (DyMA): the communication-layer
//! optimization of Section 6.
//!
//! Every application message incurs a large fixed overhead on the
//! paper's 10 Mb Ethernet regardless of size, so the communication module
//! of each LP collects events destined to the same LP that occur in close
//! temporal proximity and ships them as a single *physical message*. The
//! aggregation policy (see [`crate::policy`]) balances the gain from
//! aggregating more events (AOF) against the harm of delaying them (APF).
//!
//! Anti-messages flush their bucket immediately: delaying a cancellation
//! prolongs erroneous computation at the receiver, and flushing the whole
//! bucket (rather than just the anti) preserves per-pair FIFO order.

use crate::policy::{AggregationConfig, BucketPolicy};
use std::collections::BTreeMap;
use warp_core::stats::CommStats;
use warp_core::{CostModel, Event, LpId};

/// A physical message: one or more events between an LP pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysMsg {
    /// Sending logical process.
    pub src: LpId,
    /// Receiving logical process.
    pub dst: LpId,
    /// The aggregated application events, in send order.
    pub events: Vec<Event>,
}

impl PhysMsg {
    /// Total payload bytes (event envelopes + payloads; the transport
    /// header is added by the cost model).
    pub fn payload_bytes(&self) -> usize {
        self.events.iter().map(Event::size_bytes).sum()
    }

    /// Earliest receive timestamp carried — the message's contribution to
    /// GVT while in flight.
    pub fn min_recv_time(&self) -> warp_core::VirtualTime {
        self.events.iter().map(|e| e.recv_time).fold(
            warp_core::VirtualTime::INFINITY,
            warp_core::VirtualTime::min,
        )
    }

    /// Sender-side CPU charge for this message.
    pub fn send_cost(&self, cost: &CostModel) -> f64 {
        cost.phys_send_cost(self.payload_bytes())
    }

    /// Receiver-side CPU charge for this message.
    pub fn recv_cost(&self, cost: &CostModel) -> f64 {
        cost.phys_recv_cost(self.payload_bytes())
    }

    /// Wire transit time for this message, including the deterministic
    /// contention jitter keyed on the first carried event's identity.
    pub fn transit_time(&self, cost: &CostModel) -> f64 {
        let salt = self
            .events
            .first()
            .map(|e| {
                (e.id.sender.0 as u64) << 32
                    ^ e.id.serial.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (e.sign == warp_core::Sign::Anti) as u64
            })
            .unwrap_or(0);
        cost.transit_time_jittered(self.payload_bytes(), salt)
    }
}

#[derive(Debug)]
struct Bucket {
    policy: BucketPolicy,
    events: Vec<Event>,
    /// Real (modeled) time the oldest buffered event entered the bucket.
    opened_at: f64,
}

impl Bucket {
    /// The instant this bucket becomes due. Computed in exactly one place
    /// so the scheduling (`next_deadline`) and flushing (`poll`/`offer`)
    /// decisions can never disagree by a floating-point rounding step —
    /// an executive that wakes *at* the deadline must observe it as due.
    fn deadline(&self) -> f64 {
        self.opened_at + self.policy.window()
    }
}

/// The per-LP aggregation layer: buffers outgoing events per destination
/// LP and emits physical messages per the configured policy.
///
/// Time is the executive's real-time axis (modeled seconds in the virtual
/// cluster, wall-clock seconds in the threaded executive), passed in as
/// `now` — the layer never reads a clock itself, which keeps it
/// deterministic and testable.
#[derive(Debug)]
pub struct Aggregator {
    src: LpId,
    config: AggregationConfig,
    buckets: BTreeMap<LpId, Bucket>,
    stats: CommStats,
    /// Telemetry: `(dst, old window, new window)` per SAAW adjustment
    /// since the last drain. Only filled once recording is switched on;
    /// purely observational either way.
    window_log: Vec<(LpId, f64, f64)>,
    record_windows: bool,
}

impl Aggregator {
    /// Aggregation layer for LP `src` under the given policy.
    pub fn new(src: LpId, config: AggregationConfig) -> Self {
        Aggregator {
            src,
            config,
            buckets: BTreeMap::new(),
            stats: CommStats::default(),
            window_log: Vec::new(),
            record_windows: false,
        }
    }

    /// Switch telemetry recording of window adjustments on or off.
    pub fn set_record_windows(&mut self, on: bool) {
        self.record_windows = on;
    }

    /// Drain the `(dst, old, new)` window adjustments recorded since the
    /// last call.
    pub fn take_window_changes(&mut self) -> Vec<(LpId, f64, f64)> {
        std::mem::take(&mut self.window_log)
    }

    /// The configured policy (for reports).
    pub fn config(&self) -> &AggregationConfig {
        &self.config
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Offer one outgoing event at time `now`; any physical messages that
    /// become due (including by this event's arrival) are appended to
    /// `out`.
    pub fn offer(&mut self, dst: LpId, ev: Event, now: f64, out: &mut Vec<PhysMsg>) {
        self.stats.events_offered += 1;
        let is_anti = ev.is_anti();
        let config = &self.config;
        let bucket = self.buckets.entry(dst).or_insert_with(|| Bucket {
            policy: config.build(),
            events: Vec::new(),
            opened_at: now,
        });
        if bucket.events.is_empty() {
            bucket.opened_at = now;
        }
        bucket.events.push(ev);
        let due = is_anti || now >= bucket.deadline();
        if due {
            self.flush_bucket(dst, now, out);
        }
    }

    /// The earliest future instant at which a bucket becomes due, if any
    /// bucket is non-empty. The executive schedules a poll at this time.
    pub fn next_deadline(&self) -> Option<f64> {
        self.buckets
            .values()
            .filter(|b| !b.events.is_empty())
            .map(Bucket::deadline)
            .min_by(|a, b| a.partial_cmp(b).expect("deadlines are finite"))
    }

    /// Flush every bucket whose deadline has passed at `now`.
    pub fn poll(&mut self, now: f64, out: &mut Vec<PhysMsg>) {
        let due: Vec<LpId> = self
            .buckets
            .iter()
            .filter(|(_, b)| !b.events.is_empty() && now >= b.deadline())
            .map(|(&dst, _)| dst)
            .collect();
        for dst in due {
            self.flush_bucket(dst, now, out);
        }
    }

    /// Flush everything regardless of age (termination, GVT barrier).
    pub fn flush_all(&mut self, now: f64, out: &mut Vec<PhysMsg>) {
        let dsts: Vec<LpId> = self
            .buckets
            .iter()
            .filter(|(_, b)| !b.events.is_empty())
            .map(|(&d, _)| d)
            .collect();
        for dst in dsts {
            self.flush_bucket(dst, now, out);
        }
    }

    /// Buffered events not yet shipped (diagnostics, GVT accounting).
    pub fn buffered(&self) -> usize {
        self.buckets.values().map(|b| b.events.len()).sum()
    }

    /// Earliest receive timestamp among buffered events: buffered events
    /// are "in transit" for GVT purposes and must bound it.
    pub fn buffered_min_time(&self) -> warp_core::VirtualTime {
        self.buckets
            .values()
            .flat_map(|b| b.events.iter())
            .map(|e| e.recv_time)
            .fold(
                warp_core::VirtualTime::INFINITY,
                warp_core::VirtualTime::min,
            )
    }

    /// Record receiver-side statistics for an incoming physical message.
    pub fn note_received(&mut self, msg: &PhysMsg, cost: &CostModel) {
        self.stats.phys_received += 1;
        self.stats.events_received += msg.events.len() as u64;
        self.stats.cost_recv += msg.recv_cost(cost);
    }

    /// Record sender-side protocol-stack CPU for an outgoing message
    /// (the executive charges the node clock; this mirrors it into the
    /// communication statistics).
    pub fn note_send_cost(&mut self, c: f64) {
        self.stats.cost_send += c;
    }

    /// Record an intra-LP delivery that bypassed the wire.
    pub fn note_local_events(&mut self, n: u64) {
        self.stats.local_events += n;
    }

    fn flush_bucket(&mut self, dst: LpId, now: f64, out: &mut Vec<PhysMsg>) {
        let bucket = self
            .buckets
            .get_mut(&dst)
            .expect("flushing a missing bucket");
        if bucket.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut bucket.events);
        let n = events.len();
        let age = (now - bucket.opened_at).max(0.0);
        let before = bucket.policy.window();
        let (after, adjusted) = bucket.policy.on_aggregate_sent(n, age);
        if adjusted {
            self.stats.window_adjustments += 1;
            if self.record_windows {
                self.window_log.push((dst, before, after));
            }
        }
        let msg = PhysMsg {
            src: self.src,
            dst,
            events,
        };
        self.stats.phys_sent += 1;
        self.stats.bytes_sent += msg.payload_bytes() as u64;
        out.push(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::event::EventId;
    use warp_core::{ObjectId, VirtualTime};

    fn ev(serial: u64, rt: u64) -> Event {
        Event::new(
            EventId {
                sender: ObjectId(0),
                serial,
            },
            ObjectId(9),
            VirtualTime::ZERO,
            VirtualTime::new(rt),
            0,
            vec![0; 8],
        )
    }

    const DST: LpId = LpId(1);

    #[test]
    fn unaggregated_ships_every_event() {
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::Unaggregated);
        let mut out = Vec::new();
        for s in 0..5 {
            agg.offer(DST, ev(s, 10), s as f64 * 1e-4, &mut out);
        }
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|m| m.events.len() == 1));
        assert_eq!(agg.stats().phys_sent, 5);
        assert_eq!(agg.stats().events_offered, 5);
        assert_eq!(agg.next_deadline(), None);
    }

    #[test]
    fn faw_holds_until_first_message_ages_out() {
        let w = 1e-3;
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::Faw { window: w });
        let mut out = Vec::new();
        agg.offer(DST, ev(0, 10), 0.0, &mut out);
        agg.offer(DST, ev(1, 11), 0.2e-3, &mut out);
        agg.offer(DST, ev(2, 12), 0.4e-3, &mut out);
        assert!(out.is_empty(), "window not reached");
        assert_eq!(agg.buffered(), 3);
        assert_eq!(agg.next_deadline(), Some(w));
        // An event arriving at/after the deadline flushes the bucket.
        agg.offer(DST, ev(3, 13), 1.1e-3, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events.len(), 4);
        assert_eq!(agg.buffered(), 0);
    }

    #[test]
    fn poll_flushes_due_buckets_without_new_traffic() {
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::Faw { window: 1e-3 });
        let mut out = Vec::new();
        agg.offer(DST, ev(0, 10), 0.0, &mut out);
        agg.offer(LpId(2), ev(1, 20), 0.5e-3, &mut out);
        agg.poll(1.0e-3, &mut out);
        assert_eq!(out.len(), 1, "only the first bucket is due");
        agg.poll(1.5e-3, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn anti_message_flushes_bucket_preserving_order() {
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::Faw { window: 1.0 });
        let mut out = Vec::new();
        agg.offer(DST, ev(0, 10), 0.0, &mut out);
        agg.offer(DST, ev(1, 12), 0.0, &mut out);
        let anti = ev(0, 10).to_anti();
        agg.offer(DST, anti.clone(), 0.0, &mut out);
        assert_eq!(out.len(), 1, "anti flushes immediately");
        assert_eq!(out[0].events.len(), 3);
        assert_eq!(out[0].events[2], anti, "order preserved");
    }

    #[test]
    fn buckets_are_per_destination() {
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::Faw { window: 1e-3 });
        let mut out = Vec::new();
        agg.offer(LpId(1), ev(0, 10), 0.0, &mut out);
        agg.offer(LpId(2), ev(1, 10), 0.0, &mut out);
        assert_eq!(agg.buffered(), 2);
        agg.flush_all(0.1e-3, &mut out);
        assert_eq!(out.len(), 2);
        let dsts: Vec<LpId> = out.iter().map(|m| m.dst).collect();
        assert!(dsts.contains(&LpId(1)) && dsts.contains(&LpId(2)));
    }

    #[test]
    fn saaw_adapts_window_across_aggregates() {
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::saaw(1e-3));
        let mut out = Vec::new();
        // Slow trickle, then a burst: SAAW should register adjustments.
        let mut t = 0.0;
        for round in 0..6 {
            let n = if round % 2 == 0 { 2 } else { 12 };
            for s in 0..n {
                agg.offer(DST, ev(round * 100 + s, 10), t, &mut out);
                t += 1e-4;
            }
            t += 2e-3; // let the bucket age out
            agg.poll(t, &mut out);
        }
        assert!(agg.stats().window_adjustments > 0, "SAAW never adapted");
        assert!(agg.stats().phys_sent > 0);
    }

    #[test]
    fn window_changes_are_logged_only_when_recording() {
        let drive = |record: bool| {
            let mut agg = Aggregator::new(LpId(0), AggregationConfig::saaw(1e-3));
            agg.set_record_windows(record);
            let mut out = Vec::new();
            let mut t = 0.0;
            for round in 0..6 {
                let n = if round % 2 == 0 { 2 } else { 12 };
                for s in 0..n {
                    agg.offer(DST, ev(round * 100 + s, 10), t, &mut out);
                    t += 1e-4;
                }
                t += 2e-3;
                agg.poll(t, &mut out);
            }
            agg
        };
        let mut loud = drive(true);
        let adjustments = loud.stats().window_adjustments;
        let log = loud.take_window_changes();
        assert_eq!(log.len() as u64, adjustments);
        assert!(log.iter().all(|(d, old, new)| *d == DST && old != new));
        assert!(loud.take_window_changes().is_empty(), "drain empties");
        let mut quiet = drive(false);
        assert_eq!(quiet.stats().window_adjustments, adjustments);
        assert!(quiet.take_window_changes().is_empty(), "off by default");
    }

    #[test]
    fn buffered_min_time_bounds_gvt() {
        let mut agg = Aggregator::new(LpId(0), AggregationConfig::Faw { window: 1.0 });
        let mut out = Vec::new();
        assert_eq!(agg.buffered_min_time(), VirtualTime::INFINITY);
        agg.offer(DST, ev(0, 42), 0.0, &mut out);
        agg.offer(DST, ev(1, 17), 0.0, &mut out);
        assert_eq!(agg.buffered_min_time(), VirtualTime::new(17));
    }

    #[test]
    fn phys_msg_costs_scale_with_content() {
        let cost = CostModel::sparc_now_10mbps();
        let small = PhysMsg {
            src: LpId(0),
            dst: DST,
            events: vec![ev(0, 1)],
        };
        let big = PhysMsg {
            src: LpId(0),
            dst: DST,
            events: (0..20).map(|s| ev(s, 1)).collect(),
        };
        assert!(big.payload_bytes() > small.payload_bytes());
        assert!(big.send_cost(&cost) > small.send_cost(&cost));
        assert!(big.transit_time(&cost) > small.transit_time(&cost));
        // But far less than 20× — that is the whole point of DyMA.
        assert!(big.send_cost(&cost) < 3.0 * small.send_cost(&cost));
        assert_eq!(small.min_recv_time(), VirtualTime::new(1));
    }
}
