//! Aggregation policies: when does a bucket of buffered events become a
//! physical message?
//!
//! * **Unaggregated** — every event is its own physical message (the
//!   baseline curve of Figures 8–9).
//! * **FAW** (Fixed Aggregation Window) — the aggregate is sent when the
//!   age of its *first* message reaches a constant window. One compare
//!   per event: the cheapest policy, but statically balanced.
//! * **SAAW** (Simple Adaptive Aggregation Window) — FAW whose window is
//!   retuned by the [`SaawLaw`] as each aggregate departs.

use serde::{Deserialize, Serialize};
use warp_control::SaawLaw;

/// Serializable aggregation configuration chosen per run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AggregationConfig {
    /// No aggregation: flush every event immediately.
    Unaggregated,
    /// Fixed aggregation window, in modeled seconds.
    Faw {
        /// The constant window size.
        window: f64,
    },
    /// Simple adaptive aggregation window.
    Saaw {
        /// Initial window size (the only statically fixed input).
        initial_window: f64,
        /// Lower clamp for the adapted window.
        min_window: f64,
        /// Upper clamp for the adapted window.
        max_window: f64,
    },
}

impl AggregationConfig {
    /// SAAW with the default bounds used in the experiments: the window
    /// may adapt three decades around the initial value.
    pub fn saaw(initial_window: f64) -> Self {
        AggregationConfig::Saaw {
            initial_window,
            min_window: (initial_window * 1e-2).max(1e-6),
            max_window: initial_window * 1e2,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationConfig::Unaggregated => "none",
            AggregationConfig::Faw { .. } => "FAW",
            AggregationConfig::Saaw { .. } => "SAAW",
        }
    }

    /// Instantiate the per-bucket window controller.
    pub(crate) fn build(&self) -> BucketPolicy {
        match *self {
            AggregationConfig::Unaggregated => BucketPolicy::Immediate,
            AggregationConfig::Faw { window } => {
                assert!(
                    window > 0.0 && window.is_finite(),
                    "FAW window must be positive"
                );
                BucketPolicy::Fixed(window)
            }
            AggregationConfig::Saaw {
                initial_window,
                min_window,
                max_window,
            } => BucketPolicy::Adaptive(SaawLaw::new(initial_window, min_window, max_window)),
        }
    }
}

/// Per-destination-bucket window state.
#[derive(Clone, Debug)]
pub(crate) enum BucketPolicy {
    /// Window 0: flush on every event.
    Immediate,
    /// FAW: constant window.
    Fixed(f64),
    /// SAAW: adapting window.
    Adaptive(SaawLaw),
}

impl BucketPolicy {
    /// Current window in modeled seconds (0 = immediate).
    pub(crate) fn window(&self) -> f64 {
        match self {
            BucketPolicy::Immediate => 0.0,
            BucketPolicy::Fixed(w) => *w,
            BucketPolicy::Adaptive(law) => law.window(),
        }
    }

    /// Feedback on aggregate departure; returns (new window, whether the
    /// window changed).
    pub(crate) fn on_aggregate_sent(&mut self, n: usize, age: f64) -> (f64, bool) {
        match self {
            BucketPolicy::Immediate => (0.0, false),
            BucketPolicy::Fixed(w) => (*w, false),
            BucketPolicy::Adaptive(law) => {
                let before = law.window();
                let after = law.on_aggregate_sent(n, age);
                (after, after != before)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names() {
        assert_eq!(AggregationConfig::Unaggregated.name(), "none");
        assert_eq!(AggregationConfig::Faw { window: 1e-3 }.name(), "FAW");
        assert_eq!(AggregationConfig::saaw(1e-3).name(), "SAAW");
    }

    #[test]
    fn immediate_policy_has_zero_window() {
        let p = AggregationConfig::Unaggregated.build();
        assert_eq!(p.window(), 0.0);
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut p = AggregationConfig::Faw { window: 2e-3 }.build();
        assert_eq!(p.window(), 2e-3);
        let (w, changed) = p.on_aggregate_sent(50, 1e-3);
        assert_eq!(w, 2e-3);
        assert!(!changed);
    }

    #[test]
    fn adaptive_policy_moves_with_rate() {
        let mut p = AggregationConfig::saaw(1e-3).build();
        p.on_aggregate_sent(2, 1e-3);
        let (w, changed) = p.on_aggregate_sent(30, 1e-3);
        assert!(changed);
        assert!(w > 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_faw_window_rejected() {
        let _ = AggregationConfig::Faw { window: 0.0 }.build();
    }

    #[test]
    fn saaw_default_bounds_bracket_initial() {
        if let AggregationConfig::Saaw {
            initial_window: _,
            min_window,
            max_window,
        } = AggregationConfig::saaw(5e-3)
        {
            assert!(min_window < 5e-3 && 5e-3 < max_window);
            assert!(min_window > 0.0);
        } else {
            unreachable!()
        }
    }
}
