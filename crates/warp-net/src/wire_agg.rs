//! On-the-wire DyMA: adaptive aggregation of same-link [`Frame::Data`]
//! payloads into [`Frame::DataBatch`] frames (protocol v8).
//!
//! The paper's §DyMA results (~30% execution-time reduction on 10 Mb
//! Ethernet) came from aggregating events into physical messages under
//! a **dynamically configured window**; our reproduction previously
//! exercised the SAAW law only inside the simulated NOW cost model.
//! This module moves it onto the real data plane: each link owns a
//! [`LinkAggregator`] that buffers outbound `Data` frames, flushes them
//! as one `DataBatch` when the window expires (or sooner — see the
//! flush taxonomy below), and feeds the achieved `(size, age)` of every
//! departed aggregate back into [`warp_control::SaawLaw`] so the window
//! itself rides the control trajectory.
//!
//! Flush taxonomy (every flush records its cause in [`LinkAggStats`]):
//!
//! * **Expiry** — the oldest buffered frame reached the window age.
//! * **Critical** — a GVT-critical or control frame (token, snapshot,
//!   bye, …) was staged for the same link. Pending data flushes *first*
//!   so per-link FIFO order is exactly the unaggregated order; batching
//!   therefore never reorders anything the GVT or checkpoint planes
//!   depend on, it only delays data by at most one window.
//! * **Cap** — adding one more entry would push the encoded batch over
//!   the receiver's `max_frame_bytes` cap, or past `max_batch` entries.
//!   The pending batch departs and the new entry opens the next one.
//!   (The cap check uses exact encoded sizes, so a flush can never emit
//!   a frame the peer's [`FrameDecoder`](crate::FrameDecoder) would
//!   reject — the regression the old `ResumeChunk`-only clamping left
//!   open.)
//! * **Close** — the link is shutting down; residue departs unbatched
//!   of its window.
//!
//! Aggregation is transport-independent: the threaded writer loop and
//! the poll event loop both drive the same `offer`/`poll_expired`
//! surface, so behavior (and telemetry) is identical under either
//! transport.

use crate::frame::Frame;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use warp_control::SaawLaw;

/// Fixed per-frame overhead of a `Data` frame on the wire:
/// `[u32 len][u8 tag][u64 seq]` — everything before the epoch field.
const DATA_HEADER: usize = 4 + 1 + 8;

/// Fixed overhead of a `DataBatch` frame before its entries:
/// `[u32 len][u8 tag][u64 seq][u32 entry count]`.
const BATCH_HEADER: usize = 4 + 1 + 8 + 4;

/// Aggregation knobs, resolved per link by the mesh configuration.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AggTuning {
    /// Initial aggregation window in microseconds. `0` disables
    /// aggregation entirely (every `Data` frame departs immediately).
    pub window_us: u64,
    /// Lower window bound for the SAAW walk (µs).
    pub min_window_us: u64,
    /// Upper window bound for the SAAW walk (µs).
    pub max_window_us: u64,
    /// Adapt the window with [`SaawLaw`] (`true`) or hold it fixed at
    /// `window_us` (`false`).
    pub adapt: bool,
    /// Hard ceiling on entries per batch (safety valve independent of
    /// the byte cap).
    pub max_batch: usize,
    /// The mesh frame cap a flushed batch must stay under (encoded
    /// bytes, including the length prefix).
    pub max_frame_bytes: usize,
}

impl AggTuning {
    /// A window/bounds/cap tuning with adaptation on and the default
    /// batch ceiling.
    pub fn new(window_us: u64, min_window_us: u64, max_window_us: u64) -> Self {
        AggTuning {
            window_us,
            min_window_us,
            max_window_us,
            adapt: true,
            max_batch: 512,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
        }
    }

    /// Is aggregation active at all?
    pub fn enabled(&self) -> bool {
        self.window_us > 0
    }
}

impl Default for AggTuning {
    /// Disabled: a zero window short-circuits every frame straight
    /// through.
    fn default() -> Self {
        AggTuning {
            window_us: 0,
            min_window_us: 50,
            max_window_us: 20_000,
            adapt: true,
            max_batch: 512,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
        }
    }
}

/// Why a pending aggregate departed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushCause {
    /// The window aged out.
    Expiry,
    /// A control/GVT-critical frame needed the link (FIFO preservation).
    Critical,
    /// The byte cap or `max_batch` ceiling was reached.
    Cap,
    /// Link shutdown drained the residue.
    Close,
}

/// Per-link aggregation gauges, updated on every flush and readable
/// while the link is live (the mesh publishes them through an
/// `Arc<Mutex<_>>`). Serializable so they ride `WorkerReport` /
/// `RunReport` unchanged.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct LinkAggStats {
    /// Peer process id this link talks to.
    pub peer: u32,
    /// `Data` frames offered to the aggregator (batched or not).
    pub frames_offered: u64,
    /// Frames that physically departed (`Data` + `DataBatch` count).
    pub frames_sent: u64,
    /// Wire frames avoided by coalescing: `frames_offered -
    /// frames_sent` for the aggregated portion.
    pub frames_saved: u64,
    /// Flushes that carried ≥ 2 entries.
    pub batches: u64,
    /// Entries carried by those multi-entry batches.
    pub batched_entries: u64,
    /// Flush-cause counters.
    pub flush_expiry: u64,
    /// See [`FlushCause::Critical`].
    pub flush_critical: u64,
    /// See [`FlushCause::Cap`].
    pub flush_cap: u64,
    /// See [`FlushCause::Close`].
    pub flush_close: u64,
    /// Current aggregation window (µs); 0 when aggregation is off.
    pub window_us: u64,
    /// Every SAAW window move as `(old_us, new_us)`, in order — the
    /// raw material for `Param::AggWindow` control events.
    pub window_moves: Vec<(u64, u64)>,
}

impl LinkAggStats {
    /// Mean entries per multi-entry batch (1.0 when nothing batched).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.batched_entries as f64 / self.batches as f64
        }
    }

    /// Fold another link's gauges into this one (for cluster-level
    /// aggregation in `RunReport`).
    pub fn merge(&mut self, other: &LinkAggStats) {
        self.frames_offered += other.frames_offered;
        self.frames_sent += other.frames_sent;
        self.frames_saved += other.frames_saved;
        self.batches += other.batches;
        self.batched_entries += other.batched_entries;
        self.flush_expiry += other.flush_expiry;
        self.flush_critical += other.flush_critical;
        self.flush_cap += other.flush_cap;
        self.flush_close += other.flush_close;
        self.window_us = self.window_us.max(other.window_us);
        self.window_moves.extend(other.window_moves.iter().copied());
    }
}

/// One buffered outbound `Data` frame.
struct Entry {
    epoch: u32,
    msg: crate::aggregate::PhysMsg,
}

/// The per-link aggregation engine. Owned by whichever loop writes the
/// link (threaded writer thread or the poll loop); publishes gauges
/// through a shared handle so the executive can read them mid-run.
pub struct LinkAggregator {
    tuning: AggTuning,
    law: Option<SaawLaw>,
    window: Duration,
    pending: Vec<Entry>,
    pending_bytes: usize,
    opened_at: Option<Instant>,
    stats: Arc<Mutex<LinkAggStats>>,
}

impl LinkAggregator {
    /// A fresh aggregator for the link to `peer`.
    pub fn new(peer: u32, tuning: AggTuning) -> Self {
        let law = (tuning.enabled() && tuning.adapt).then(|| {
            SaawLaw::new(
                tuning.window_us as f64 * 1e-6,
                tuning.min_window_us.max(1) as f64 * 1e-6,
                tuning.max_window_us.max(tuning.min_window_us.max(1)) as f64 * 1e-6,
            )
        });
        let stats = Arc::new(Mutex::new(LinkAggStats {
            peer,
            window_us: tuning.window_us,
            ..LinkAggStats::default()
        }));
        LinkAggregator {
            window: Duration::from_micros(tuning.window_us),
            tuning,
            law,
            pending: Vec::new(),
            pending_bytes: 0,
            opened_at: None,
            stats,
        }
    }

    /// Shared handle to this link's gauges.
    pub fn stats(&self) -> Arc<Mutex<LinkAggStats>> {
        Arc::clone(&self.stats)
    }

    /// Exact encoded size of `(epoch, msg)` as one `DataBatch` entry:
    /// the fixed 16-byte header (epoch/src/dst/count) plus the events'
    /// canonical wire bytes (computed, not encoded — the Pod envelope
    /// has a fixed size).
    fn entry_size(msg: &crate::aggregate::PhysMsg) -> usize {
        16 + msg
            .events
            .iter()
            .map(warp_core::wire::encoded_event_len)
            .sum::<usize>()
    }

    /// Stage an outbound frame. Returns the frames that must depart
    /// *now*, in order. `Data` frames may be absorbed (empty return);
    /// anything else flushes pending data first and then passes
    /// through, preserving per-link FIFO exactly.
    pub fn offer(&mut self, frame: Frame, now: Instant) -> Vec<Frame> {
        if !self.tuning.enabled() {
            return vec![frame];
        }
        match frame {
            Frame::Data { epoch, msg, .. } => {
                let entry_bytes = Self::entry_size(&msg);
                let mut out = Vec::new();
                // Would this entry push the encoded batch over the
                // receiver's cap? Flush what's pending first. A lone
                // oversized entry departs as a plain `Data` frame —
                // the same bytes the unaggregated path would send.
                let projected = BATCH_HEADER + self.pending_bytes + entry_bytes;
                if !self.pending.is_empty()
                    && (projected > self.tuning.max_frame_bytes
                        || self.pending.len() >= self.tuning.max_batch)
                {
                    out.extend(self.flush(FlushCause::Cap, now));
                }
                self.stats.lock().unwrap().frames_offered += 1;
                if self.pending.is_empty() {
                    self.opened_at = Some(now);
                }
                self.pending_bytes += entry_bytes;
                self.pending.push(Entry { epoch, msg });
                // A single entry already at/over the cap can't wait for
                // a sibling; send it alone immediately.
                if DATA_HEADER + 4 + self.pending_bytes >= self.tuning.max_frame_bytes {
                    out.extend(self.flush(FlushCause::Cap, now));
                }
                out
            }
            // Heartbeats only probe liveness; they neither flush nor
            // get delayed.
            Frame::Heartbeat => vec![frame],
            other => {
                let mut out = self.flush(FlushCause::Critical, now);
                out.push(other);
                out
            }
        }
    }

    /// Flush if the window has aged out. Drive this from the link's
    /// wakeup machinery (writer timeout / poll deadline).
    pub fn poll_expired(&mut self, now: Instant) -> Vec<Frame> {
        match self.opened_at {
            Some(t) if now.duration_since(t) >= self.window => self.flush(FlushCause::Expiry, now),
            _ => Vec::new(),
        }
    }

    /// Drain everything unconditionally (link shutdown).
    pub fn close(&mut self, now: Instant) -> Vec<Frame> {
        self.flush(FlushCause::Close, now)
    }

    /// The instant the current aggregate must depart, if one is open.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.opened_at.map(|t| t + self.window)
    }

    /// Anything buffered?
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    fn flush(&mut self, cause: FlushCause, now: Instant) -> Vec<Frame> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let n = self.pending.len();
        let age = self
            .opened_at
            .map(|t| now.duration_since(t).as_secs_f64())
            .unwrap_or(0.0);
        let entries: Vec<Entry> = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        self.opened_at = None;

        // Feed the achieved (size, age) back into the SAAW law; every
        // window move is recorded for the control trajectory.
        let mut st = self.stats.lock().unwrap();
        if let Some(law) = self.law.as_mut() {
            let next = Duration::from_secs_f64(law.on_aggregate_sent(n, age));
            if next != self.window {
                let old_us = self.window.as_micros() as u64;
                let new_us = next.as_micros() as u64;
                st.window_moves.push((old_us, new_us));
                st.window_us = new_us;
                self.window = next;
            }
        }
        st.frames_sent += 1;
        st.frames_saved += (n as u64).saturating_sub(1);
        match cause {
            FlushCause::Expiry => st.flush_expiry += 1,
            FlushCause::Critical => st.flush_critical += 1,
            FlushCause::Cap => st.flush_cap += 1,
            FlushCause::Close => st.flush_close += 1,
        }
        if n >= 2 {
            st.batches += 1;
            st.batched_entries += n as u64;
        }
        drop(st);

        if n == 1 {
            let e = entries.into_iter().next().unwrap();
            // Seq 0: the link writer stamps the real per-link sequence
            // at staging time, exactly as for un-aggregated sends.
            vec![Frame::Data {
                seq: 0,
                epoch: e.epoch,
                msg: e.msg,
            }]
        } else {
            vec![Frame::DataBatch {
                seq: 0,
                entries: entries.into_iter().map(|e| (e.epoch, e.msg)).collect(),
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::PhysMsg;
    use warp_core::event::EventId;
    use warp_core::{Event, LpId, ObjectId, VirtualTime};

    fn msg(serial: u64, payload: usize) -> PhysMsg {
        PhysMsg {
            src: LpId(1),
            dst: LpId(2),
            events: vec![Event::new(
                EventId {
                    sender: ObjectId(1),
                    serial,
                },
                ObjectId(2),
                VirtualTime::new(1),
                VirtualTime::new(serial + 10),
                0,
                vec![0xAB; payload],
            )],
        }
    }

    fn data(serial: u64, payload: usize) -> Frame {
        Frame::Data {
            seq: 0,
            epoch: 1,
            msg: msg(serial, payload),
        }
    }

    fn tuning(window_us: u64) -> AggTuning {
        AggTuning {
            window_us,
            min_window_us: 50,
            max_window_us: 50_000,
            adapt: false,
            max_batch: 512,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
        }
    }

    #[test]
    fn zero_window_passes_everything_through() {
        let mut agg = LinkAggregator::new(1, AggTuning::default());
        let now = Instant::now();
        assert_eq!(agg.offer(data(1, 4), now), vec![data(1, 4)]);
        assert!(agg.is_idle());
        assert_eq!(agg.next_deadline(), None);
    }

    #[test]
    fn window_expiry_flushes_a_batch() {
        let mut agg = LinkAggregator::new(1, tuning(1_000));
        let t0 = Instant::now();
        assert!(agg.offer(data(1, 4), t0).is_empty());
        assert!(agg.offer(data(2, 4), t0).is_empty());
        assert!(agg.poll_expired(t0).is_empty(), "window not aged yet");
        let out = agg.poll_expired(t0 + Duration::from_micros(1_500));
        assert_eq!(out.len(), 1);
        match &out[0] {
            Frame::DataBatch { entries, .. } => assert_eq!(entries.len(), 2),
            other => panic!("expected DataBatch, got {other:?}"),
        }
        let st = agg.stats();
        let st = st.lock().unwrap();
        assert_eq!(st.flush_expiry, 1);
        assert_eq!(st.frames_saved, 1);
        assert_eq!(st.frames_offered, 2);
        assert_eq!(st.frames_sent, 1);
    }

    #[test]
    fn singleton_flush_degrades_to_plain_data() {
        let mut agg = LinkAggregator::new(1, tuning(1_000));
        let t0 = Instant::now();
        assert!(agg.offer(data(7, 4), t0).is_empty());
        let out = agg.poll_expired(t0 + Duration::from_millis(2));
        assert_eq!(out, vec![data(7, 4)]);
    }

    #[test]
    fn control_frame_flushes_pending_first_preserving_fifo() {
        let mut agg = LinkAggregator::new(1, tuning(1_000_000));
        let t0 = Instant::now();
        assert!(agg.offer(data(1, 4), t0).is_empty());
        let out = agg.offer(Frame::Bye, t0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], data(1, 4), "pending data departs first");
        assert_eq!(out[1], Frame::Bye);
        let st = agg.stats();
        assert_eq!(st.lock().unwrap().flush_critical, 1);
    }

    #[test]
    fn heartbeat_neither_flushes_nor_delays() {
        let mut agg = LinkAggregator::new(1, tuning(1_000_000));
        let t0 = Instant::now();
        assert!(agg.offer(data(1, 4), t0).is_empty());
        assert_eq!(agg.offer(Frame::Heartbeat, t0), vec![Frame::Heartbeat]);
        assert!(!agg.is_idle(), "data still buffered");
    }

    /// Regression (satellite): a flush must never emit a frame the
    /// receiver's cap would reject — batches split at the byte cap.
    #[test]
    fn batches_split_at_the_frame_cap() {
        let mut t = tuning(1_000_000);
        t.max_frame_bytes = 600;
        let mut agg = LinkAggregator::new(1, t);
        let t0 = Instant::now();
        let mut departed = Vec::new();
        for s in 0..40 {
            departed.extend(agg.offer(data(s, 64), t0));
        }
        departed.extend(agg.close(t0));
        assert!(departed.len() >= 2, "cap must have forced splits");
        let mut total_entries = 0;
        for f in &departed {
            let encoded = f.encode();
            assert!(
                encoded.len() <= 600,
                "flush emitted {} bytes over the 600-byte cap",
                encoded.len()
            );
            // And the peer's decoder (limit = cap) really accepts it.
            let mut d = crate::frame::FrameDecoder::with_limit(600);
            d.push(&encoded);
            match d.next().unwrap().unwrap() {
                Frame::DataBatch { entries, .. } => total_entries += entries.len(),
                Frame::Data { .. } => total_entries += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(total_entries, 40, "no entry lost or duplicated");
        let st = agg.stats();
        assert!(st.lock().unwrap().flush_cap >= 1);
    }

    /// An entry that alone busts the cap departs immediately as plain
    /// `Data` — the same bytes the unaggregated path would send (the
    /// decoder's verdict on them is the sender's configuration problem,
    /// not the aggregator's).
    #[test]
    fn oversized_single_entry_departs_alone() {
        let mut t = tuning(1_000_000);
        t.max_frame_bytes = 256;
        let mut agg = LinkAggregator::new(1, t);
        let t0 = Instant::now();
        let out = agg.offer(data(1, 1024), t0);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Frame::Data { .. }));
        assert!(agg.is_idle());
    }

    #[test]
    fn max_batch_ceiling_forces_a_flush() {
        let mut t = tuning(1_000_000);
        t.max_batch = 3;
        let mut agg = LinkAggregator::new(1, t);
        let t0 = Instant::now();
        let mut departed = Vec::new();
        for s in 0..7 {
            departed.extend(agg.offer(data(s, 4), t0));
        }
        departed.extend(agg.close(t0));
        for f in &departed {
            if let Frame::DataBatch { entries, .. } = f {
                assert!(entries.len() <= 3);
            }
        }
        let n: usize = departed
            .iter()
            .map(|f| match f {
                Frame::DataBatch { entries, .. } => entries.len(),
                Frame::Data { .. } => 1,
                _ => 0,
            })
            .sum();
        assert_eq!(n, 7);
    }

    #[test]
    fn saaw_moves_land_in_the_gauges() {
        let mut t = tuning(1_000);
        t.adapt = true;
        let mut agg = LinkAggregator::new(3, t);
        let t0 = Instant::now();
        let mut now = t0;
        for round in 0..20 {
            for s in 0..4 {
                let _ = agg.offer(data(round * 4 + s, 4), now);
            }
            now += Duration::from_micros(2_000);
            let _ = agg.poll_expired(now);
        }
        let st = agg.stats();
        let st = st.lock().unwrap();
        assert!(
            !st.window_moves.is_empty(),
            "SAAW never moved the window: {st:?}"
        );
        assert_eq!(st.peer, 3);
        // The live gauge tracks the last move.
        assert_eq!(st.window_us, st.window_moves.last().unwrap().1);
    }

    #[test]
    fn entry_size_is_exact() {
        // The projected batch size arithmetic must match the encoder
        // byte-for-byte, or cap splitting drifts.
        let msgs = [msg(1, 0), msg(2, 7), msg(3, 333)];
        let entries: Vec<(u32, PhysMsg)> = msgs.iter().map(|m| (9, m.clone())).collect();
        let encoded = Frame::DataBatch {
            seq: 1,
            entries: entries.clone(),
        }
        .encode();
        let predicted = BATCH_HEADER + msgs.iter().map(LinkAggregator::entry_size).sum::<usize>();
        assert_eq!(encoded.len(), predicted);
    }
}
