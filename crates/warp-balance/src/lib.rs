//! Cluster-level load balancing: on-line configuration of the
//! worker↔LP assignment.
//!
//! The paper frames every Time Warp configuration decision as a
//! feedback loop: a sampled output `O`, a configured parameter `I`, a
//! transfer function `T` with a dead zone so the controller ignores
//! noise, and a control period `P`. The per-LP controllers
//! (`warp-control`) apply that model to χ, cancellation mode and the
//! DyMA window; this crate scales the same structure to the cluster.
//!
//! * `O` — per-LP progress counters sampled at every GVT round
//!   ([`LpLoad`]: committed-event counters, rollbacks, retained history
//!   items, and the LP's *LVT lead* over GVT).
//! * `I` — the LP→worker [`Assignment`].
//! * `T` — [`BalanceController::observe`]: an imbalance index over
//!   per-worker mean LVT leads with a dead zone
//!   ([`BalancePolicy::dead_zone`]) and a patience counter
//!   ([`BalancePolicy::patience`]) that only fires after the *same*
//!   worker has been the straggler for `P` consecutive rounds.
//!
//! When the controller fires it proposes a [`Rebalance`]: a greedy move
//! of the hottest LP blocks off the slowest worker onto the worker with
//! the most headroom. The executive applies it by ending the session at
//! a checkpoint barrier and regrouping under the new assignment — this
//! crate is pure policy and owns no transport or state transfer.
//!
//! Why LVT lead rather than raw event rates: under GVT pacing the
//! *committed* rates of all workers converge to the slowest worker's
//! rate (the cluster advances in lock-step at the horizon), so rates
//! carry almost no signal about *which* worker is slow. The optimism
//! front does: a slow host's LPs sit at the horizon (lead ≈ 0) while
//! everyone else speculates far ahead of it.

use serde::{Deserialize, Serialize};

/// An explicit LP→worker map. Worker (process) ids are 1-based — proc 0
/// is the coordinator and never owns LPs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// `owner[lp]` = 1-based worker proc id.
    owner: Vec<u32>,
    n_workers: u32,
}

impl Assignment {
    /// The seed assignment: contiguous blocks, sized as evenly as the
    /// division allows (the first `n_lps % n_workers` workers take one
    /// extra LP), so no worker is ever left idle.
    pub fn contiguous(n_lps: u32, n_workers: u32) -> Result<Self, String> {
        if n_workers == 0 {
            return Err("n_workers must be >= 1".into());
        }
        if n_lps < n_workers {
            return Err(format!(
                "{n_lps} LPs cannot cover {n_workers} workers (need n_lps >= n_workers)"
            ));
        }
        let base = n_lps / n_workers;
        let extra = n_lps % n_workers;
        let mut owner = Vec::with_capacity(n_lps as usize);
        for w in 1..=n_workers {
            let block = base + u32::from(w <= extra);
            owner.extend(std::iter::repeat_n(w, block as usize));
        }
        Self::from_owners(owner, n_workers)
    }

    /// Build from an explicit owner vector, validating that every owner
    /// is a real worker and every worker keeps at least one LP (a
    /// worker process with zero LPs would idle the GVT ring).
    pub fn from_owners(owner: Vec<u32>, n_workers: u32) -> Result<Self, String> {
        if n_workers == 0 {
            return Err("n_workers must be >= 1".into());
        }
        if owner.is_empty() {
            return Err("empty assignment".into());
        }
        let mut counts = vec![0u32; n_workers as usize];
        for (lp, &w) in owner.iter().enumerate() {
            if w == 0 || w > n_workers {
                return Err(format!("lp {lp} assigned to invalid worker {w}"));
            }
            counts[(w - 1) as usize] += 1;
        }
        if let Some(idle) = counts.iter().position(|&c| c == 0) {
            return Err(format!("worker {} owns no LPs", idle + 1));
        }
        Ok(Self { owner, n_workers })
    }

    pub fn n_lps(&self) -> u32 {
        self.owner.len() as u32
    }

    pub fn n_workers(&self) -> u32 {
        self.n_workers
    }

    /// Which worker process hosts `lp`.
    pub fn proc_of(&self, lp: u32) -> u32 {
        self.owner[lp as usize]
    }

    /// The LPs hosted by worker `proc`, in ascending id order.
    pub fn lps_of(&self, proc: u32) -> Vec<u32> {
        (0..self.n_lps())
            .filter(|&lp| self.proc_of(lp) == proc)
            .collect()
    }

    /// The raw owner vector, for the wire (`WorkerInit`/`SessionLine`).
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }
}

/// Knobs for the cluster balance loop. Defaults leave it disabled; the
/// enabled defaults mirror the per-LP controllers: a wide dead zone and
/// several rounds of patience so the assignment never thrashes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BalancePolicy {
    /// Master switch. Off by default: migration needs the checkpoint
    /// machinery, so enabling it also requires recovery to be enabled.
    pub enabled: bool,
    /// Dead zone for the imbalance index in `[0, 1)`: spreads below
    /// this are noise and leave the controller idle.
    pub dead_zone: f64,
    /// Consecutive out-of-dead-zone GVT rounds — blaming the *same*
    /// straggler — required before a migration fires (the `P` of the
    /// paper's control loop).
    pub patience: u32,
    /// Initial GVT rounds of each session to ignore while EWMA state
    /// warms up (leads are transient right after a resume replay).
    pub warmup_rounds: u32,
    /// Maximum LP blocks moved per migration.
    pub max_moves: u32,
    /// Floor on LPs left on the donor worker (a worker must keep at
    /// least one LP to stay in the GVT ring).
    pub min_lps: u32,
    /// Total migrations allowed per run (each costs a checkpoint
    /// barrier plus a session regroup).
    pub max_migrations: u32,
}

impl Default for BalancePolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            dead_zone: 0.5,
            patience: 3,
            warmup_rounds: 2,
            max_moves: 1,
            min_lps: 1,
            max_migrations: 4,
        }
    }
}

impl BalancePolicy {
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.dead_zone) {
            return Err(format!("dead_zone {} outside [0, 1)", self.dead_zone));
        }
        if self.patience == 0 {
            return Err("patience must be >= 1".into());
        }
        if self.max_moves == 0 {
            return Err("max_moves must be >= 1".into());
        }
        if self.min_lps == 0 {
            return Err("min_lps must be >= 1".into());
        }
        Ok(())
    }
}

/// One LP's sampled output `O` at a GVT round. Counters are cumulative
/// over the LP's lifetime (the controller differences them itself).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LpLoad {
    /// Events executed, including ones later rolled back.
    pub executed: u64,
    /// Events undone by rollback.
    pub rolled_back: u64,
    /// Retained history items (input queue + output log + snapshots) —
    /// the memory-pressure gauge.
    pub retained: u64,
    /// `lvt_front - gvt` in ticks: how far ahead of the committed
    /// horizon the LP has speculated. The straggler signal.
    pub lvt_lead: u64,
}

/// One LP block changing owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    pub lp: u32,
    pub from: u32,
    pub to: u32,
}

/// A proposed reconfiguration: the new assignment plus the diff and the
/// imbalance index that triggered it.
#[derive(Clone, Debug)]
pub struct Rebalance {
    pub assignment: Assignment,
    pub moves: Vec<Move>,
    pub imbalance: f64,
}

/// EWMA smoothing factor for per-LP rate/lead estimates. Heavier on the
/// new sample than the per-LP controllers use because GVT rounds are
/// already coarse.
const ALPHA: f64 = 0.5;

/// The cluster-level transfer function `T`.
///
/// Feed it one complete round of per-LP loads per GVT round via
/// [`observe`](Self::observe); it returns `Some(Rebalance)` on the rare
/// round where a migration should fire. The executive recreates the
/// controller whenever a session starts, which doubles as the cooldown
/// after a migration or recovery.
pub struct BalanceController {
    policy: BalancePolicy,
    n_lps: u32,
    n_workers: u32,
    last: Vec<LpLoad>,
    /// EWMA of per-round executed-event deltas — ranks LPs by heat when
    /// choosing which block to move.
    rate: Vec<f64>,
    /// EWMA of the LVT lead — the per-LP straggler signal.
    lead: Vec<f64>,
    rounds: u32,
    suspect: Option<u32>,
    strikes: u32,
    migrations: u32,
}

impl BalanceController {
    pub fn new(policy: BalancePolicy, n_lps: u32, n_workers: u32) -> Self {
        Self {
            policy,
            n_lps,
            n_workers,
            last: vec![LpLoad::default(); n_lps as usize],
            rate: vec![0.0; n_lps as usize],
            lead: vec![0.0; n_lps as usize],
            rounds: 0,
            suspect: None,
            strikes: 0,
            migrations: 0,
        }
    }

    /// Ingest one complete GVT round of loads (`per_lp[lp]` for every
    /// LP) under the current assignment. Returns a proposal when the
    /// imbalance index has sat outside the dead zone, blaming the same
    /// worker, for `patience` consecutive rounds.
    pub fn observe(&mut self, assign: &Assignment, per_lp: &[LpLoad]) -> Option<Rebalance> {
        assert_eq!(per_lp.len(), self.n_lps as usize, "incomplete load round");
        for (lp, load) in per_lp.iter().enumerate() {
            let d_exec = load.executed.saturating_sub(self.last[lp].executed);
            self.rate[lp] = ALPHA * d_exec as f64 + (1.0 - ALPHA) * self.rate[lp];
            self.lead[lp] = ALPHA * load.lvt_lead as f64 + (1.0 - ALPHA) * self.lead[lp];
            self.last[lp] = *load;
        }
        self.rounds += 1;
        if self.rounds <= self.policy.warmup_rounds || self.migrations >= self.policy.max_migrations
        {
            return None;
        }

        let lead = self.worker_leads(assign);
        let max_l = lead.iter().cloned().fold(f64::MIN, f64::max);
        let (slow_idx, min_l) = lead
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one worker");
        let imbalance = (max_l - min_l) / max_l.max(1.0);
        if imbalance <= self.policy.dead_zone {
            self.suspect = None;
            self.strikes = 0;
            return None;
        }
        let slow = slow_idx as u32 + 1;
        if self.suspect == Some(slow) {
            self.strikes += 1;
        } else {
            self.suspect = Some(slow);
            self.strikes = 1;
        }
        if self.strikes < self.policy.patience {
            return None;
        }

        let proposal = self.plan_moves(assign, &lead, slow, imbalance)?;
        self.suspect = None;
        self.strikes = 0;
        self.migrations += 1;
        Some(proposal)
    }

    /// Per-worker mean LVT lead under `assign` (index `w-1`).
    fn worker_leads(&self, assign: &Assignment) -> Vec<f64> {
        let mut sum = vec![0.0; self.n_workers as usize];
        let mut count = vec![0u32; self.n_workers as usize];
        for lp in 0..self.n_lps {
            let w = (assign.proc_of(lp) - 1) as usize;
            sum[w] += self.lead[lp as usize];
            count[w] += 1;
        }
        sum.iter()
            .zip(&count)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Greedy bin-packing step: move up to `max_moves` of the hottest
    /// LPs off the straggler onto the worker with the most headroom.
    fn plan_moves(
        &self,
        assign: &Assignment,
        lead: &[f64],
        slow: u32,
        imbalance: f64,
    ) -> Option<Rebalance> {
        let mut owner = assign.owners().to_vec();
        let mut moves = Vec::new();
        for _ in 0..self.policy.max_moves {
            let donor: Vec<u32> = (0..self.n_lps)
                .filter(|&lp| owner[lp as usize] == slow)
                .collect();
            if donor.len() <= self.policy.min_lps as usize {
                break;
            }
            // Hottest LP on the donor; ties break to the lowest id so
            // the plan is deterministic across runs.
            let lp = donor
                .into_iter()
                .max_by(|&a, &b| {
                    self.rate[a as usize]
                        .total_cmp(&self.rate[b as usize])
                        .then(b.cmp(&a))
                })
                .expect("donor worker owns LPs");
            let to = (0..self.n_workers)
                .filter(|&w| w + 1 != slow)
                .max_by(|&a, &b| {
                    lead[a as usize]
                        .total_cmp(&lead[b as usize])
                        .then(b.cmp(&a))
                })
                .map(|w| w + 1)?;
            owner[lp as usize] = to;
            moves.push(Move { lp, from: slow, to });
        }
        if moves.is_empty() {
            return None;
        }
        let assignment = Assignment::from_owners(owner, self.n_workers).ok()?;
        Some(Rebalance {
            assignment,
            moves,
            imbalance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BalancePolicy {
        BalancePolicy {
            enabled: true,
            dead_zone: 0.5,
            patience: 3,
            warmup_rounds: 1,
            max_moves: 1,
            min_lps: 1,
            max_migrations: 2,
        }
    }

    /// A load round where the LPs of `slow` (1-based) sit at the
    /// horizon while everyone else leads by `lead` ticks.
    fn round(assign: &Assignment, slow: u32, lead: u64, round_no: u64) -> Vec<LpLoad> {
        (0..assign.n_lps())
            .map(|lp| {
                let mine = assign.proc_of(lp) == slow;
                LpLoad {
                    executed: round_no * if mine { 10 } else { 40 },
                    rolled_back: 0,
                    retained: 8,
                    lvt_lead: if mine { 0 } else { lead },
                }
            })
            .collect()
    }

    fn balanced(assign: &Assignment, round_no: u64) -> Vec<LpLoad> {
        (0..assign.n_lps())
            .map(|_| LpLoad {
                executed: round_no * 20,
                rolled_back: 0,
                retained: 8,
                lvt_lead: 100,
            })
            .collect()
    }

    #[test]
    fn contiguous_splits_into_near_even_blocks() {
        let a = Assignment::contiguous(10, 3).unwrap();
        // 10 = 4 + 3 + 3 → blocks [0..4), [4..7), [7..10).
        assert_eq!(a.owners(), &[1, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(a.proc_of(0), 1);
        assert_eq!(a.proc_of(9), 3);
        assert_eq!(a.lps_of(2), vec![4, 5, 6]);
        assert!(
            Assignment::contiguous(2, 3).is_err(),
            "more workers than LPs"
        );
        assert!(Assignment::contiguous(3, 0).is_err());
    }

    #[test]
    fn contiguous_never_leaves_a_worker_idle() {
        for n_workers in 1..=8u32 {
            for n_lps in n_workers..=24 {
                let a = Assignment::contiguous(n_lps, n_workers)
                    .unwrap_or_else(|e| panic!("{n_lps} lps / {n_workers} workers: {e}"));
                for w in 1..=n_workers {
                    assert!(
                        !a.lps_of(w).is_empty(),
                        "{n_lps}/{n_workers}: worker {w} idle"
                    );
                }
            }
        }
    }

    #[test]
    fn from_owners_rejects_bad_maps() {
        assert!(
            Assignment::from_owners(vec![1, 2, 0], 2).is_err(),
            "proc 0 is the coordinator"
        );
        assert!(
            Assignment::from_owners(vec![1, 2, 3], 2).is_err(),
            "unknown worker"
        );
        assert!(
            Assignment::from_owners(vec![1, 1, 1], 2).is_err(),
            "worker 2 idle"
        );
        assert!(Assignment::from_owners(vec![], 1).is_err());
        assert!(Assignment::from_owners(vec![2, 1, 2], 2).is_ok());
    }

    #[test]
    fn balanced_load_stays_inside_the_dead_zone() {
        let assign = Assignment::contiguous(6, 3).unwrap();
        let mut ctl = BalanceController::new(policy(), 6, 3);
        for r in 1..=50 {
            assert!(
                ctl.observe(&assign, &balanced(&assign, r)).is_none(),
                "round {r} fired"
            );
        }
    }

    #[test]
    fn straggler_fires_only_after_patience_rounds() {
        let assign = Assignment::contiguous(6, 3).unwrap();
        let mut ctl = BalanceController::new(policy(), 6, 3);
        // Warmup round + two strikes: nothing fires.
        for r in 1..=3 {
            assert!(
                ctl.observe(&assign, &round(&assign, 3, 500, r)).is_none(),
                "round {r}"
            );
        }
        // Third consecutive strike blaming worker 3 → migration.
        let reb = ctl
            .observe(&assign, &round(&assign, 3, 500, 4))
            .expect("fires on patience");
        assert!(reb.imbalance > 0.5);
        assert_eq!(reb.moves.len(), 1);
        let mv = reb.moves[0];
        assert_eq!(mv.from, 3);
        assert_ne!(mv.to, 3);
        assert_eq!(assign.proc_of(mv.lp), 3, "moved LP came off the straggler");
        assert_eq!(reb.assignment.proc_of(mv.lp), mv.to);
        // Every other LP kept its owner.
        for lp in 0..6 {
            if lp != mv.lp {
                assert_eq!(reb.assignment.proc_of(lp), assign.proc_of(lp));
            }
        }
    }

    #[test]
    fn changing_the_suspect_resets_the_strike_count() {
        let assign = Assignment::contiguous(6, 3).unwrap();
        let mut ctl = BalanceController::new(policy(), 6, 3);
        let mut r = 0;
        let mut next = |ctl: &mut BalanceController, slow| {
            r += 1;
            ctl.observe(&assign, &round(&assign, slow, 500, r))
        };
        assert!(next(&mut ctl, 3).is_none()); // warmup
        assert!(next(&mut ctl, 3).is_none()); // strike 1 on worker 3
        assert!(next(&mut ctl, 3).is_none()); // strike 2 on worker 3
        assert!(next(&mut ctl, 1).is_none()); // blame moves → strike 1 on worker 1
        assert!(next(&mut ctl, 1).is_none()); // strike 2 on worker 1
        let reb = next(&mut ctl, 1).expect("strike 3 on worker 1 fires");
        assert_eq!(reb.moves[0].from, 1);
    }

    #[test]
    fn min_lps_floor_blocks_the_last_block() {
        let assign = Assignment::from_owners(vec![1, 2, 2, 2, 2, 2], 2).unwrap();
        let mut ctl = BalanceController::new(policy(), 6, 2);
        // Worker 1 is the straggler but owns exactly min_lps LPs: the
        // controller must never propose emptying it below the floor.
        for r in 1..=20 {
            assert!(
                ctl.observe(&assign, &round(&assign, 1, 500, r)).is_none(),
                "round {r} proposed a move below the min_lps floor"
            );
        }
    }

    #[test]
    fn max_migrations_caps_the_run() {
        let assign = Assignment::contiguous(6, 3).unwrap();
        let mut ctl = BalanceController::new(policy(), 6, 3);
        let mut fired = 0;
        for r in 1..=60 {
            if ctl.observe(&assign, &round(&assign, 3, 500, r)).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2, "policy allows exactly max_migrations");
    }

    #[test]
    fn moves_the_hottest_lp_off_the_straggler() {
        let assign = Assignment::contiguous(6, 3).unwrap(); // worker 3 owns LPs 4, 5
        let mut ctl = BalanceController::new(policy(), 6, 3);
        let mut reb = None;
        for r in 1..=10u64 {
            let loads: Vec<LpLoad> = (0..6)
                .map(|lp| LpLoad {
                    // LP 5 executes twice as hot as LP 4.
                    executed: r * if lp == 5 { 30 } else { 15 },
                    rolled_back: 0,
                    retained: 8,
                    lvt_lead: if assign.proc_of(lp) == 3 { 0 } else { 400 },
                })
                .collect();
            if let Some(p) = ctl.observe(&assign, &loads) {
                reb = Some(p);
                break;
            }
        }
        assert_eq!(
            reb.expect("fires").moves[0].lp,
            5,
            "hottest block moves first"
        );
    }

    #[test]
    fn policy_validation() {
        assert!(BalancePolicy::default().validate().is_ok());
        assert!(BalancePolicy {
            dead_zone: 1.0,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(BalancePolicy {
            dead_zone: -0.1,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(BalancePolicy {
            patience: 0,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(BalancePolicy {
            max_moves: 0,
            ..policy()
        }
        .validate()
        .is_err());
        assert!(BalancePolicy {
            min_lps: 0,
            ..policy()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn policy_round_trips_through_json_with_defaults() {
        let p = BalancePolicy {
            enabled: true,
            ..BalancePolicy::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: BalancePolicy = serde_json::from_str(&json).unwrap();
        assert!(back.enabled);
        assert_eq!(back.patience, p.patience);
        assert_eq!(back.max_migrations, p.max_migrations);
    }
}
