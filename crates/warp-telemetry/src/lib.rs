//! # warp-telemetry — runtime observability for the Time Warp kernel
//!
//! The paper's whole argument is feedback control: every controller
//! samples an output `O` over a control period and moves a parameter
//! `I`. The kernel's end-of-run counters can say *whether* adaptation
//! helped, but not *what the controllers actually did* — the χ
//! hill-climb, the A2L/L2A flips, the DyMA window walk are invisible.
//! This crate is the observation plane that makes them visible without
//! perturbing the run:
//!
//! * [`Recorder`] — a per-LP, ring-buffered collector. At every control
//!   period boundary (a GVT round) it snapshots kernel gauges (GVT, the
//!   LP's optimism front, retained-history depth) plus *deltas* of the
//!   monotone [`ObjectStats`] counters into a [`Sample`], and drains the
//!   kernel's control-transition log into flat [`ControlEvent`]s.
//! * [`TelemetryReport`] — the mergeable result: cluster-wide series
//!   are built by merging per-LP (and, distributed, per-worker) reports.
//!   Exports as JSONL (one self-describing [`TelemetryLine`] per line)
//!   and CSV for plotting.
//!
//! Observation is strictly passive: recording charges no modeled cost
//! and never touches the event path, so a run's committed trace digest
//! is byte-identical with telemetry on or off. Buffers are bounded
//! rings — when a run outlives the capacity the *oldest* entries fall
//! off and the drop is counted, never silently.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use warp_core::policy::{CancellationMode, ControlChange, ControlTransition};
use warp_core::{LpRuntime, ObjectStats, VirtualTime};

/// Default ring capacity for metric samples, per recorder.
pub const DEFAULT_SAMPLE_CAP: usize = 4096;
/// Default ring capacity for control events, per recorder.
pub const DEFAULT_EVENT_CAP: usize = 16384;

/// `old`/`new` encoding of [`Param::Cancellation`]: aggressive.
pub const MODE_AGGRESSIVE: f64 = 0.0;
/// `old`/`new` encoding of [`Param::Cancellation`]: lazy.
pub const MODE_LAZY: f64 = 1.0;

/// A virtual time as an optional tick count (`None` = ∞), the JSON-safe
/// form used throughout the telemetry schema.
pub fn vt_ticks(t: VirtualTime) -> Option<u64> {
    t.is_finite().then(|| t.ticks())
}

fn mode_code(m: CancellationMode) -> f64 {
    match m {
        CancellationMode::Aggressive => MODE_AGGRESSIVE,
        CancellationMode::Lazy => MODE_LAZY,
    }
}

/// Render a [`Param::Cancellation`] code back as a mode name.
pub fn mode_name(code: f64) -> &'static str {
    if code == MODE_LAZY {
        "Lazy"
    } else {
        "Aggressive"
    }
}

/// Which configured parameter a [`ControlEvent`] moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Param {
    /// Checkpoint interval χ (`old`/`new` are intervals; `sampled_o` is
    /// the cost index `Ec`). Recorded at every tuner invocation, moved
    /// or not, so the trajectory replays gaplessly.
    Chi,
    /// Cancellation strategy (`old`/`new` are [`MODE_AGGRESSIVE`] /
    /// [`MODE_LAZY`]; `sampled_o` is the Hit Ratio, `-1` when the policy
    /// samples nothing). Recorded on actual flips only.
    Cancellation,
    /// DyMA aggregation window in modeled seconds (`object` is the
    /// *destination LP* of the adjusted bucket; `sampled_o` is `-1`).
    Window,
    /// LP→worker assignment: the cluster balancer migrated an LP
    /// (`lp`/`object` are the migrated LP; `old`/`new` are the source
    /// and destination worker ids; `sampled_o` is the imbalance index
    /// that triggered the move). Recorded by the coordinator.
    Assignment,
    /// Cluster worker count: the elastic controller grew or shrank the
    /// worker set (`old`/`new` are worker counts; `lp`/`object` are 0;
    /// `sampled_o` is the pressure index that triggered the scale, `-1`
    /// for a recovery fallback). Recorded by the coordinator.
    ClusterSize,
    /// Coordinator fail-over: a restarted coordinator resumed the run
    /// from its durable journal (`old`/`new` are the session epochs
    /// before and after the outage; `lp`/`object` are 0; `sampled_o` is
    /// the number of parked workers re-adopted via `Reattach`). Recorded
    /// by the resumed coordinator.
    Coordinator,
    /// On-the-wire aggregation window on one mesh link (`lp` is the
    /// sending *process*, `object` the peer process; `old`/`new` are
    /// windows in **microseconds of wall time** — unlike
    /// [`Param::Window`], whose units are modeled seconds; `sampled_o`
    /// is `-1`). Recorded by each worker from its link gauges at
    /// session end.
    AggWindow,
}

/// One controller decision: the paper's `(O, I)` pair caught in the act,
/// stamped with where and when it happened.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlEvent {
    /// GVT at the boundary where the executive drained the event
    /// (`None` = the terminal ∞ round).
    pub gvt: Option<u64>,
    /// LP that hosts the deciding object.
    pub lp: u32,
    /// Object id — or, for [`Param::Window`], the destination LP.
    pub object: u32,
    /// The object's LVT when the decision was applied (`None` = ∞;
    /// absent for window events, which carry the bucket age instead).
    pub lvt: Option<u64>,
    /// Which parameter moved.
    pub param: Param,
    /// Value before (see [`Param`] for encodings).
    pub old: f64,
    /// Value after.
    pub new: f64,
    /// The sampled control output `O` behind the decision; `-1` when
    /// the policy exposes none.
    pub sampled_o: f64,
}

/// One per-LP metric snapshot, taken at a GVT round. Counter fields are
/// *deltas* since the LP's previous sample; gauges are instantaneous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The freshly announced GVT (`None` = ∞, the terminal round).
    pub gvt: Option<u64>,
    /// The sampled LP.
    pub lp: u32,
    /// Gauge: the LP's optimism front (largest LVT among its objects).
    pub lvt_front: Option<u64>,
    /// Gauge: retained history items (input + output + state queues).
    pub retained: u64,
    /// Gauge: mean checkpoint interval χ across the LP's objects.
    pub mean_chi: f64,
    /// Gauge: objects currently running lazy cancellation.
    pub lazy_objects: u32,
    /// Gauge: total objects hosted (the census denominator).
    pub n_objects: u32,
    /// Delta: events executed.
    pub executed: u64,
    /// Delta: events undone by rollback.
    pub rolled_back: u64,
    /// Delta: rollbacks of either cause.
    pub rollbacks: u64,
    /// Delta: events re-executed during coast-forward.
    pub coasted: u64,
    /// Delta: anti-messages sent.
    pub anti_sent: u64,
    /// Mean rollback distance over the period (`rolled_back /
    /// rollbacks`, `0` when no rollback occurred).
    pub rollback_distance: f64,
}

/// One line of the JSONL export: every line is exactly one of these, so
/// a file is schema-checked by parsing each line.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TelemetryLine {
    /// A metric snapshot.
    Sample(Sample),
    /// A controller decision.
    Event(ControlEvent),
}

/// Bounded ring: keeps the newest `cap` entries, counts what fell off.
#[derive(Debug)]
struct Ring<T> {
    buf: Vec<T>,
    start: usize,
    cap: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            start: 0,
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.start] = v;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Remove and return everything, oldest first.
    fn drain_ordered(&mut self) -> Vec<T> {
        let mut out = std::mem::take(&mut self.buf);
        out.rotate_left(self.start);
        self.start = 0;
        out
    }
}

/// Instantaneous kernel gauges for one LP, captured alongside each
/// sample. Usually built by [`gauges_of`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LpGauges {
    /// Largest LVT among the LP's objects.
    pub lvt_front: VirtualTime,
    /// Retained history items across the LP's objects.
    pub retained: u64,
    /// Mean checkpoint interval χ.
    pub mean_chi: f64,
    /// Objects currently in lazy mode.
    pub lazy_objects: u32,
    /// Total objects hosted.
    pub n_objects: u32,
}

/// Read the telemetry gauges off an LP runtime.
pub fn gauges_of(lp: &LpRuntime) -> LpGauges {
    let objects = lp.objects();
    let n = objects.len() as u32;
    let mut chi_sum = 0u64;
    let mut lazy = 0u32;
    for o in objects {
        chi_sum += o.checkpoint_interval() as u64;
        if o.cancellation_mode() == CancellationMode::Lazy {
            lazy += 1;
        }
    }
    LpGauges {
        lvt_front: lp.lvt_front(),
        retained: lp.history_items() as u64,
        mean_chi: if n > 0 {
            chi_sum as f64 / n as f64
        } else {
            0.0
        },
        lazy_objects: lazy,
        n_objects: n,
    }
}

/// Per-LP telemetry collector: ring-buffered samples and control
/// events, drained incrementally (distributed streaming) or once at the
/// end of a run.
#[derive(Debug)]
pub struct Recorder {
    lp: u32,
    samples: Ring<Sample>,
    events: Ring<ControlEvent>,
    /// Cumulative counters at the previous sample (delta baseline).
    last: ObjectStats,
}

impl Recorder {
    /// Recorder for one LP with the default ring capacities.
    pub fn new(lp: u32) -> Self {
        Self::with_capacity(lp, DEFAULT_SAMPLE_CAP, DEFAULT_EVENT_CAP)
    }

    /// Recorder with explicit ring capacities (tests, tight-memory runs).
    pub fn with_capacity(lp: u32, sample_cap: usize, event_cap: usize) -> Self {
        Recorder {
            lp,
            samples: Ring::new(sample_cap),
            events: Ring::new(event_cap),
            last: ObjectStats::default(),
        }
    }

    /// The LP this recorder observes.
    pub fn lp(&self) -> u32 {
        self.lp
    }

    /// One-stop GVT-boundary hook: drain the LP's control-transition
    /// log, then snapshot gauges and stat deltas. Call once per LP per
    /// GVT round, after the round's GVT is known.
    pub fn observe_lp(&mut self, gvt: VirtualTime, lp: &mut LpRuntime) {
        for t in lp.take_control_log() {
            self.transition(gvt, &t);
        }
        let gauges = gauges_of(lp);
        self.sample(gvt, gauges, &lp.stats());
    }

    /// Record a metric snapshot from explicit gauges and *cumulative*
    /// stats (the recorder computes the deltas).
    pub fn sample(&mut self, gvt: VirtualTime, gauges: LpGauges, cumulative: &ObjectStats) {
        let d = |now: u64, then: u64| now.saturating_sub(then);
        let rolled_back = d(cumulative.rolled_back, self.last.rolled_back);
        let rollbacks = d(cumulative.rollbacks(), self.last.rollbacks());
        self.samples.push(Sample {
            gvt: vt_ticks(gvt),
            lp: self.lp,
            lvt_front: vt_ticks(gauges.lvt_front),
            retained: gauges.retained,
            mean_chi: gauges.mean_chi,
            lazy_objects: gauges.lazy_objects,
            n_objects: gauges.n_objects,
            executed: d(cumulative.executed, self.last.executed),
            rolled_back,
            rollbacks,
            coasted: d(cumulative.coasted, self.last.coasted),
            anti_sent: d(cumulative.anti_sent, self.last.anti_sent),
            rollback_distance: if rollbacks > 0 {
                rolled_back as f64 / rollbacks as f64
            } else {
                0.0
            },
        });
        self.last = cumulative.clone();
    }

    /// Record one kernel control transition, stamped with the GVT of the
    /// round that drained it.
    pub fn transition(&mut self, gvt: VirtualTime, t: &ControlTransition) {
        let (param, old, new, sampled_o) = match t.change {
            ControlChange::Checkpoint {
                old,
                new,
                sampled_o,
            } => (Param::Chi, old as f64, new as f64, sampled_o),
            ControlChange::Cancellation {
                old,
                new,
                sampled_o,
            } => (
                Param::Cancellation,
                mode_code(old),
                mode_code(new),
                sampled_o,
            ),
        };
        self.events.push(ControlEvent {
            gvt: vt_ticks(gvt),
            lp: self.lp,
            object: t.object.0,
            lvt: vt_ticks(t.lvt),
            param,
            old,
            new,
            sampled_o: if sampled_o.is_finite() {
                sampled_o
            } else {
                -1.0
            },
        });
    }

    /// Record a DyMA aggregation-window change on the bucket toward
    /// `dst_lp`.
    pub fn window_change(&mut self, gvt: VirtualTime, dst_lp: u32, old: f64, new: f64) {
        self.events.push(ControlEvent {
            gvt: vt_ticks(gvt),
            lp: self.lp,
            object: dst_lp,
            lvt: None,
            param: Param::Window,
            old,
            new,
            sampled_o: -1.0,
        });
    }

    /// Drain everything recorded since the last drain as a mergeable
    /// batch — the unit workers stream to the coordinator. `None` when
    /// nothing new was recorded.
    pub fn drain(&mut self) -> Option<TelemetryReport> {
        if self.samples.buf.is_empty() && self.events.buf.is_empty() {
            return None;
        }
        Some(TelemetryReport {
            samples: self.samples.drain_ordered(),
            events: self.events.drain_ordered(),
            dropped_samples: std::mem::replace(&mut self.samples.dropped, 0),
            dropped_events: std::mem::replace(&mut self.events.dropped, 0),
        })
    }

    /// Consume the recorder into its final report.
    pub fn finish(mut self) -> TelemetryReport {
        self.drain().unwrap_or_default()
    }
}

/// The merged observation record of a run (or a streamed slice of one).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Metric snapshots, ordered by `(gvt, lp)` after [`merge`](Self::merge).
    pub samples: Vec<Sample>,
    /// Controller decisions, ordered by `(gvt, lp, object)`.
    pub events: Vec<ControlEvent>,
    /// Samples lost to ring overflow (oldest-first eviction).
    pub dropped_samples: u64,
    /// Control events lost to ring overflow.
    pub dropped_events: u64,
}

fn gvt_key(g: Option<u64>) -> u64 {
    g.unwrap_or(u64::MAX)
}

impl TelemetryReport {
    /// True when nothing at all was observed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
            && self.events.is_empty()
            && self.dropped_samples == 0
            && self.dropped_events == 0
    }

    /// Fold another report (another LP, another worker, a streamed
    /// batch) into this one, keeping the series globally ordered.
    pub fn merge(&mut self, other: TelemetryReport) {
        self.samples.extend(other.samples);
        self.events.extend(other.events);
        self.dropped_samples += other.dropped_samples;
        self.dropped_events += other.dropped_events;
        self.samples.sort_by_key(|s| (gvt_key(s.gvt), s.lp));
        self.events
            .sort_by_key(|e| (gvt_key(e.gvt), e.lp, e.object));
    }

    /// Mean DyMA window over every recorded window adjustment (`None`
    /// when aggregation never adapted).
    pub fn mean_dyma_window(&self) -> Option<f64> {
        let windows: Vec<f64> = self
            .events
            .iter()
            .filter(|e| e.param == Param::Window)
            .map(|e| e.new)
            .collect();
        if windows.is_empty() {
            None
        } else {
            Some(windows.iter().sum::<f64>() / windows.len() as f64)
        }
    }

    /// Count of events that moved the given parameter.
    pub fn moves_of(&self, param: Param) -> usize {
        self.events
            .iter()
            .filter(|e| e.param == param && e.old != e.new)
            .count()
    }

    /// One JSON object per line: samples first (GVT order), then events.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&serde_json::to_string(&TelemetryLine::Sample(*s)).expect("sample json"));
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&serde_json::to_string(&TelemetryLine::Event(*e)).expect("event json"));
            out.push('\n');
        }
        out
    }

    /// Rebuild a report from JSONL (the `stats` subcommand and the CI
    /// schema check). Every non-empty line must parse as a
    /// [`TelemetryLine`].
    pub fn from_jsonl(text: &str) -> Result<TelemetryReport, String> {
        let mut report = TelemetryReport::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<TelemetryLine>(line) {
                Ok(TelemetryLine::Sample(s)) => report.samples.push(s),
                Ok(TelemetryLine::Event(e)) => report.events.push(e),
                Err(e) => return Err(format!("line {}: {e}", i + 1)),
            }
        }
        Ok(report)
    }

    /// The metric series as CSV (samples only; events live in JSONL).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "gvt,lp,lvt_front,retained,mean_chi,lazy_objects,n_objects,\
             executed,rolled_back,rollbacks,coasted,anti_sent,rollback_distance\n",
        );
        let opt = |v: Option<u64>| v.map(|t| t.to_string()).unwrap_or_default();
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                opt(s.gvt),
                s.lp,
                opt(s.lvt_front),
                s.retained,
                s.mean_chi,
                s.lazy_objects,
                s.n_objects,
                s.executed,
                s.rolled_back,
                s.rollbacks,
                s.coasted,
                s.anti_sent,
                s.rollback_distance,
            ));
        }
        out
    }

    /// One-line digest for logs and the `stats` subcommand.
    pub fn summary_line(&self) -> String {
        let max_gvt = self
            .samples
            .iter()
            .filter_map(|s| s.gvt)
            .max()
            .map(|g| g.to_string())
            .unwrap_or_else(|| "∞-only".into());
        let window = self
            .mean_dyma_window()
            .map(|w| format!("{w:.3}"))
            .unwrap_or_else(|| "-".into());
        format!(
            "telemetry: {} samples, {} events ({} χ moves, {} mode flips, {} window moves, \
             {} wire-window moves, {} migrations, {} scales, {} failovers), max finite gvt {}, \
             mean DyMA window {}, dropped {}/{}",
            self.samples.len(),
            self.events.len(),
            self.moves_of(Param::Chi),
            self.moves_of(Param::Cancellation),
            self.moves_of(Param::Window),
            self.moves_of(Param::AggWindow),
            self.moves_of(Param::Assignment),
            self.moves_of(Param::ClusterSize),
            self.moves_of(Param::Coordinator),
            max_gvt,
            window,
            self.dropped_samples,
            self.dropped_events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::ObjectId;

    fn sample_at(gvt: u64, lp: u32) -> Sample {
        Sample {
            gvt: Some(gvt),
            lp,
            ..Sample::default()
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.dropped, 2);
        assert_eq!(r.drain_ordered(), vec![2, 3, 4], "oldest first");
    }

    #[test]
    fn recorder_samples_deltas_not_cumulatives() {
        let mut rec = Recorder::new(1);
        let gauges = LpGauges {
            lvt_front: VirtualTime::new(10),
            retained: 5,
            mean_chi: 1.0,
            lazy_objects: 0,
            n_objects: 2,
        };
        let mut stats = ObjectStats {
            executed: 10,
            rolled_back: 4,
            straggler_rollbacks: 2,
            ..Default::default()
        };
        rec.sample(VirtualTime::new(5), gauges, &stats);
        stats.executed = 25;
        stats.rolled_back = 6;
        stats.straggler_rollbacks = 3;
        rec.sample(VirtualTime::new(9), gauges, &stats);
        let report = rec.finish();
        assert_eq!(report.samples.len(), 2);
        assert_eq!(report.samples[0].executed, 10);
        assert_eq!(report.samples[1].executed, 15, "delta, not cumulative");
        assert_eq!(report.samples[1].rolled_back, 2);
        assert_eq!(report.samples[1].rollbacks, 1);
        assert_eq!(report.samples[1].rollback_distance, 2.0);
    }

    #[test]
    fn transitions_flatten_with_sane_encodings() {
        let mut rec = Recorder::new(0);
        rec.transition(
            VirtualTime::new(7),
            &ControlTransition {
                object: ObjectId(3),
                lvt: VirtualTime::new(6),
                change: ControlChange::Checkpoint {
                    old: 2,
                    new: 4,
                    sampled_o: 1.5,
                },
            },
        );
        rec.transition(
            VirtualTime::new(8),
            &ControlTransition {
                object: ObjectId(3),
                lvt: VirtualTime::INFINITY,
                change: ControlChange::Cancellation {
                    old: CancellationMode::Aggressive,
                    new: CancellationMode::Lazy,
                    sampled_o: f64::NAN,
                },
            },
        );
        rec.window_change(VirtualTime::new(9), 2, 0.001, 0.002);
        let r = rec.finish();
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.events[0].param, Param::Chi);
        assert_eq!((r.events[0].old, r.events[0].new), (2.0, 4.0));
        assert_eq!(r.events[0].sampled_o, 1.5);
        assert_eq!(r.events[1].param, Param::Cancellation);
        assert_eq!(r.events[1].new, MODE_LAZY);
        assert_eq!(r.events[1].sampled_o, -1.0, "NaN sanitized");
        assert_eq!(r.events[1].lvt, None, "∞ LVT maps to None");
        assert_eq!(r.events[2].param, Param::Window);
        assert_eq!(r.events[2].object, 2, "window events carry the dst LP");
        assert_eq!(r.moves_of(Param::Chi), 1);
        assert_eq!(r.mean_dyma_window(), Some(0.002));
    }

    #[test]
    fn drain_is_incremental_and_finish_collects_the_tail() {
        let mut rec = Recorder::new(0);
        assert!(rec.drain().is_none(), "nothing recorded yet");
        let gauges = LpGauges {
            lvt_front: VirtualTime::ZERO,
            retained: 0,
            mean_chi: 1.0,
            lazy_objects: 0,
            n_objects: 1,
        };
        rec.sample(VirtualTime::new(1), gauges, &ObjectStats::default());
        let batch = rec.drain().expect("one sample pending");
        assert_eq!(batch.samples.len(), 1);
        assert!(rec.drain().is_none(), "drained clean");
        rec.sample(VirtualTime::new(2), gauges, &ObjectStats::default());
        assert_eq!(rec.finish().samples.len(), 1, "only the tail");
    }

    #[test]
    fn merge_orders_globally_and_jsonl_round_trips() {
        let mut a = TelemetryReport {
            samples: vec![sample_at(9, 0), sample_at(2, 0)],
            ..Default::default()
        };
        a.merge(TelemetryReport {
            samples: vec![sample_at(5, 1)],
            events: vec![ControlEvent {
                gvt: Some(5),
                lp: 1,
                object: 0,
                lvt: Some(4),
                param: Param::Chi,
                old: 1.0,
                new: 2.0,
                sampled_o: 0.5,
            }],
            dropped_samples: 3,
            dropped_events: 0,
        });
        let gvts: Vec<_> = a.samples.iter().map(|s| s.gvt.unwrap()).collect();
        assert_eq!(gvts, vec![2, 5, 9]);
        assert_eq!(a.dropped_samples, 3);

        let text = a.to_jsonl();
        assert_eq!(text.lines().count(), 4);
        let back = TelemetryReport::from_jsonl(&text).expect("schema-valid");
        assert_eq!(back.samples, a.samples);
        assert_eq!(back.events, a.events);
        assert!(TelemetryReport::from_jsonl("{\"bogus\":1}\n").is_err());

        let csv = a.to_csv();
        assert_eq!(csv.lines().count(), 4, "header + 3 samples");
        assert!(csv.starts_with("gvt,lp,"));
        assert!(!a.summary_line().is_empty());
    }
}
