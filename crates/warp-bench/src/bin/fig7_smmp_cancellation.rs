//! Figure 7 — SMMP: execution time vs. number of test vectors under five
//! cancellation strategies.
//!
//! Paper configuration: 16 processors, 4 LPs, 100 simulation objects;
//! strategies AC, LC, DC, PS64 (permanently set after 64 comparisons),
//! PA10. The x-axis is total test vectors (split evenly over the 16
//! processors, matching the paper's 2000–10000 range).
//!
//! Expected shape (§8): every object favors lazy, so LC ≈ DC ≈ PS64 ≈
//! PA10, all ~15% under AC; PS64 edges DC slightly by not monitoring
//! for the rest of the run.

use warp_bench::{
    measure, policies, scaled, Cancellation, Checkpointing, Figure, Point, Series, DEFAULT_SEEDS,
};
use warp_models::SmmpConfig;

fn main() {
    let strategies = [
        Cancellation::Aggressive,
        Cancellation::Lazy,
        Cancellation::Dynamic {
            filter_depth: 16,
            a2l: 0.45,
            l2a: 0.2,
        },
        Cancellation::PermanentSet { n: 64 },
        Cancellation::PermanentAggressive { n: 10 },
    ];
    let vector_counts = [2000u64, 5000, 10_000];

    let mut fig = Figure {
        id: "fig7".into(),
        title: "SMMP 16 processors, 4 LPs — execution time vs test vectors".into(),
        x_label: "test vectors".into(),
        y_label: "execution time (modeled s)".into(),
        series: Vec::new(),
    };
    for strat in strategies {
        let mut series = Series {
            label: strat.label(),
            points: Vec::new(),
        };
        for &vectors in &vector_counts {
            let per_processor = scaled(vectors, 160) / 16;
            let m = measure(
                |seed| {
                    SmmpConfig::paper(per_processor, seed)
                        .spec()
                        .with_policies(policies(strat, Checkpointing::Periodic(4)))
                },
                &DEFAULT_SEEDS,
            );
            series.points.push(Point {
                x: vectors as f64,
                m,
            });
        }
        fig.series.push(series);
    }
    fig.print();
    let path = fig.write_json().expect("write fig7 JSON");
    println!("(JSON: {})", path.display());
}
