//! Figure 6 — RAID: execution time vs. number of requests under six
//! cancellation strategies.
//!
//! Paper configuration: 20 sources, 4 forks, 8 disks, 4 LPs; strategies
//! AC, LC, DC (filter depth 16, A2L = 0.45, L2A = 0.2), ST0.4 (single
//! threshold), PS32 (permanently set after 32 comparisons), PA10
//! (permanently aggressive after 10 successive misses).
//!
//! Expected shape (§8): lazy beats aggressive; DC within ~1.5% of lazy;
//! PS32/PA10 a further ~2.5% ahead because objects that settle on
//! aggressive stop paying the passive-comparison cost.

use warp_bench::{
    measure, policies, scaled, Cancellation, Checkpointing, Figure, Point, Series, DEFAULT_SEEDS,
};
use warp_models::RaidConfig;

fn main() {
    let strategies = [
        Cancellation::Aggressive,
        Cancellation::Lazy,
        Cancellation::Dynamic {
            filter_depth: 16,
            a2l: 0.45,
            l2a: 0.2,
        },
        Cancellation::SingleThreshold {
            filter_depth: 16,
            t: 0.4,
        },
        Cancellation::PermanentSet { n: 32 },
        Cancellation::PermanentAggressive { n: 10 },
    ];
    let request_counts = [250u64, 500, 750, 1000];

    let mut fig = Figure {
        id: "fig6".into(),
        title: "RAID 20 processes, 4 forks, 8 disks, 4 LPs — execution time vs requests".into(),
        x_label: "requests".into(),
        y_label: "execution time (modeled s)".into(),
        series: Vec::new(),
    };
    for strat in strategies {
        let mut series = Series {
            label: strat.label(),
            points: Vec::new(),
        };
        for &reqs in &request_counts {
            let reqs = scaled(reqs, 25);
            let m = measure(
                |seed| {
                    RaidConfig::paper(reqs, seed)
                        .spec()
                        .with_policies(policies(strat, Checkpointing::Periodic(4)))
                },
                &DEFAULT_SEEDS,
            );
            series.points.push(Point { x: reqs as f64, m });
        }
        fig.series.push(series);
    }
    fig.print();
    let path = fig.write_json().expect("write fig6 JSON");
    println!("(JSON: {})", path.display());
}
