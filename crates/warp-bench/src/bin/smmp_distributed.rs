//! `BENCH_smmp_distributed.json` — the SMMP counterpart of
//! `phold_distributed`: the paper's communication-bound memory model
//! (scattered variant, every request/response hop crosses LPs) run on
//! the *real* distributed executive, across the transport × aggregation
//! matrix. SMMP's dense small-message traffic is exactly the workload
//! on-the-wire DyMA exists for, so this point is where the SAAW columns
//! should separate from the unaggregated ones.
//!
//! The worker binary resolves like the tests do: `WARP_WORKER_BIN`, or
//! a `warp-worker` sibling of this executable.

use warp_bench::dist_bench;
use warped_online::cluster::{ClusterJob, ModelSpec};
use warped_online::models::SmmpConfig;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_smmp_distributed.json".into());
    let cfg = SmmpConfig {
        scattered: true,
        ..SmmpConfig::paper(400, 11)
    };
    let job = ClusterJob::new(ModelSpec::Smmp(cfg), None);
    let scenario = serde_json::json!({
        "model": "smmp",
        "n_processors": 16,
        "n_lps": 4,
        "n_banks": 64,
        "requests_per_processor": 400,
        "scattered": true,
        "seed": 11,
        "n_workers": 2,
        "recovery": false,
    });
    dist_bench::run_matrix("smmp_distributed", &job, 2, scenario, &out);
}
