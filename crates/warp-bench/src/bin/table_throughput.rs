//! §8 text — committed-event throughput of the all-static baseline.
//!
//! The paper reports: "The SMMP model processed 11,300 committed events
//! per second when no dynamic optimizations were used; RAID processed
//! 10,917 committed events per second." This harness measures the same
//! all-static baseline (periodic χ=1 check-pointing, aggressive
//! cancellation, no aggregation) on the virtual cluster, plus the
//! dynamically configured counterpart for the headline speedup.

use warp_bench::{measure, policies, scaled, Cancellation, Checkpointing, DEFAULT_SEEDS};
use warp_models::{RaidConfig, SmmpConfig};

type SpecBuilder = Box<dyn Fn(u64) -> warp_exec::SimulationSpec>;

fn main() {
    let smmp_reqs = scaled(400, 40);
    let raid_reqs = scaled(300, 30);
    println!("== table — committed events/second (paper §8: SMMP 11,300; RAID 10,917) ==");
    println!(
        "{:>8} {:>28} {:>12} {:>12} {:>10}",
        "model", "configuration", "ev/s", "exec (s)", "rollbacks"
    );

    let mut rows = Vec::new();
    let cases: Vec<(&str, Cancellation, Checkpointing)> = vec![
        (
            "all-static (AC, chi=1)",
            Cancellation::Aggressive,
            Checkpointing::Periodic(1),
        ),
        (
            "on-line configured (DC, dyn-chi)",
            Cancellation::Dynamic {
                filter_depth: 16,
                a2l: 0.45,
                l2a: 0.2,
            },
            Checkpointing::Dynamic,
        ),
    ];
    let models: Vec<(&str, SpecBuilder)> = vec![
        (
            "SMMP",
            Box::new(move |seed| SmmpConfig::paper(smmp_reqs, seed).spec()),
        ),
        (
            "RAID",
            Box::new(move |seed| RaidConfig::paper(raid_reqs, seed).spec()),
        ),
    ];
    for (model, make) in &models {
        for (label, canc, ckpt) in &cases {
            let m = measure(
                |seed| make(seed).with_policies(policies(*canc, *ckpt)),
                &DEFAULT_SEEDS,
            );
            println!(
                "{model:>8} {label:>28} {:>12.0} {:>12.4} {:>10.0}",
                m.events_per_second, m.completion_seconds, m.rollbacks
            );
            rows.push(serde_json::json!({
                "model": model,
                "configuration": label,
                "events_per_second": m.events_per_second,
                "completion_seconds": m.completion_seconds,
                "rollbacks": m.rollbacks,
            }));
        }
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(
        "results/table_throughput.json",
        serde_json::to_vec_pretty(&serde_json::json!({ "id": "table_throughput", "rows": rows }))
            .unwrap(),
    )
    .expect("write JSON");
    println!("(JSON: results/table_throughput.json)");
}
