//! Render `results/fig*.json` (written by the figure binaries) to SVG
//! charts, mirroring the paper's presentation: linear x for Figures 6–7,
//! log-scale x for the aggregate-age sweeps of Figures 8–9.

use warp_bench::svg::{Chart, Line, Scale};

fn plot_series_figure(id: &str, x_scale: Scale) -> Option<std::path::PathBuf> {
    let path = format!("results/{id}.json");
    let data = std::fs::read(&path).ok()?;
    let v: serde_json::Value = serde_json::from_slice(&data).ok()?;
    let lines = v["series"]
        .as_array()?
        .iter()
        .map(|s| Line {
            label: s["label"].as_str().unwrap_or("?").to_string(),
            points: s["points"]
                .as_array()
                .map(|pts| {
                    pts.iter()
                        .filter_map(|p| {
                            Some((p["x"].as_f64()?, p["m"]["completion_seconds"].as_f64()?))
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
        .collect();
    let chart = Chart {
        title: v["title"].as_str().unwrap_or(id).to_string(),
        x_label: v["x_label"].as_str().unwrap_or("x").to_string(),
        y_label: v["y_label"].as_str().unwrap_or("seconds").to_string(),
        x_scale,
        lines,
    };
    let out = std::path::PathBuf::from(format!("results/{id}.svg"));
    std::fs::write(&out, chart.render()).ok()?;
    Some(out)
}

fn plot_fig5() -> Option<std::path::PathBuf> {
    // Fig. 5 is a bar chart in the paper; render the normalized values as
    // one line per model over the three configurations.
    let data = std::fs::read("results/fig5.json").ok()?;
    let v: serde_json::Value = serde_json::from_slice(&data).ok()?;
    let rows = v["rows"].as_array()?;
    let mut lines: Vec<Line> = Vec::new();
    for row in rows {
        let model = row["model"].as_str()?;
        let norm = row["normalized_performance"].as_f64()?;
        if !lines.iter().any(|l| l.label == model) {
            lines.push(Line {
                label: model.to_string(),
                points: vec![],
            });
        }
        let line = lines.iter_mut().find(|l| l.label == model)?;
        let x = line.points.len() as f64 + 1.0;
        line.points.push((x, norm));
    }
    let chart = Chart {
        title: "Fig. 5 — dynamic check-pointing, normalized performance \
                (1: P+AC, 2: P+LC, 3: DYN+LC)"
            .into(),
        x_label: "configuration".into(),
        y_label: "normalized performance".into(),
        x_scale: Scale::Linear,
        lines,
    };
    let out = std::path::PathBuf::from("results/fig5.svg");
    std::fs::write(&out, chart.render()).ok()?;
    Some(out)
}

fn main() {
    let mut plotted = Vec::new();
    if let Some(p) = plot_fig5() {
        plotted.push(p);
    }
    for (id, scale) in [
        ("fig6", Scale::Linear),
        ("fig7", Scale::Linear),
        ("fig8", Scale::Log10),
        ("fig9", Scale::Log10),
    ] {
        if let Some(p) = plot_series_figure(id, scale) {
            plotted.push(p);
        }
    }
    if plotted.is_empty() {
        eprintln!(
            "no results/*.json found — run the fig* binaries first \
             (e.g. cargo run --release -p warp-bench --bin fig6_raid_cancellation)"
        );
        std::process::exit(1);
    }
    for p in plotted {
        println!("wrote {}", p.display());
    }
}
