//! Figure 8 — SMMP on a network of workstations: aggregate age vs.
//! execution time for FAW, SAAW and the unaggregated transport.
//!
//! The x-axis sweeps the (initial) aggregation window — the paper's
//! "aggregate age", log scale 1..1000 — in milliseconds of modeled time.
//! For FAW the window is fixed at x; for SAAW, x is only the initial
//! window and the controller adapts from there; the unaggregated curve
//! is flat.
//!
//! This experiment runs the *scattered* SMMP partition (caches placed off
//! their CPUs' LPs — see `SmmpConfig::scattered`): the localized
//! partition keeps ~95% of events inside an LP, which would starve the
//! aggregation layer entirely. Lazy cancellation is used throughout (the
//! SMMP-optimal strategy per Figure 7).
//!
//! Expected shape: the FAW curve dips to an interior optimum and rises
//! steeply past it; SAAW is flatter and at least as good as FAW near the
//! optimum because it converges there from any initial window;
//! aggregation at the optimum beats the unaggregated transport by a
//! large margin (the paper reports ~30%).

use warp_bench::{
    measure, policies, scaled, Cancellation, Checkpointing, Figure, Point, Series, DEFAULT_SEEDS,
};
use warp_exec::SimulationSpec;
use warp_models::SmmpConfig;
use warp_net::AggregationConfig;

fn spec(seed: u64, reqs: u64) -> SimulationSpec {
    let cfg = SmmpConfig {
        scattered: true,
        ..SmmpConfig::paper(reqs, seed)
    };
    cfg.spec()
        .with_policies(policies(Cancellation::Lazy, Checkpointing::Periodic(4)))
}

type AggBuilder = fn(f64) -> AggregationConfig;

fn main() {
    let reqs = scaled(300, 40);
    // "Aggregate age" in milliseconds, log-spaced 1..100 (the modeled
    // cluster's dynamics compress the paper's 1..1000 range: windows an
    // order of magnitude past the optimum are already deep in the
    // rollback-storm regime).
    let ages_ms = [1.0f64, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];

    let mut fig = Figure {
        id: "fig8".into(),
        title: "Aggregate age vs execution time for SMMP (NOW, scattered partition)".into(),
        x_label: "age (ms)".into(),
        y_label: "execution time (modeled s)".into(),
        series: Vec::new(),
    };

    let unagg = measure(|seed| spec(seed, reqs), &DEFAULT_SEEDS);
    fig.series.push(Series {
        label: "none".into(),
        points: ages_ms
            .iter()
            .map(|&x| Point {
                x,
                m: unagg.clone(),
            })
            .collect(),
    });

    let policies_swept: Vec<(&str, AggBuilder)> = vec![
        ("FAW", |w| AggregationConfig::Faw { window: w }),
        ("SAAW", AggregationConfig::saaw),
    ];
    for (label, make) in policies_swept {
        let mut series = Series {
            label: label.into(),
            points: Vec::new(),
        };
        for &age in &ages_ms {
            let window = age * 1e-3;
            let m = measure(
                |seed| spec(seed, reqs).with_aggregation(make(window)),
                &DEFAULT_SEEDS,
            );
            series.points.push(Point { x: age, m });
        }
        fig.series.push(series);
    }
    fig.print();
    let path = fig.write_json().expect("write fig8 JSON");
    println!("(JSON: {})", path.display());
}
