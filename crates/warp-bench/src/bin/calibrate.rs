//! Calibration probe: prints the headline dynamics of SMMP and RAID under
//! the key configurations, so cost-model and workload constants can be
//! sanity-checked against the paper's reported behaviour before running
//! the figure harnesses.

use warp_bench::{policies, Cancellation, Checkpointing};
use warp_exec::run_virtual;
use warp_models::{RaidConfig, SmmpConfig};
use warp_net::AggregationConfig;

fn show(label: &str, r: &warp_exec::RunReport) {
    println!(
        "{label:<28} T={:>8.3}s ev/s={:>8.0} committed={:>8} rollbacks={:>6} rolled%={:>5.1} coast={:>6} lazyH/M={}/{} monH/M={}/{} anti={} phys={} aggr={:.2}",
        r.completion_seconds,
        r.events_per_second,
        r.committed_events,
        r.kernel.rollbacks(),
        100.0 * r.rollback_fraction(),
        r.kernel.coasted,
        r.kernel.lazy_hits,
        r.kernel.lazy_misses,
        r.kernel.monitor_hits,
        r.kernel.monitor_misses,
        r.kernel.anti_sent,
        r.comm.phys_sent,
        r.comm.aggregation_ratio(),
    );
}

fn main() {
    let seed = 7;
    let reqs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);

    println!("--- SMMP ({reqs} requests/processor) ---");
    for (label, canc, ckpt) in [
        (
            "AC + P1",
            Cancellation::Aggressive,
            Checkpointing::Periodic(1),
        ),
        ("LC + P1", Cancellation::Lazy, Checkpointing::Periodic(1)),
        (
            "AC + P8",
            Cancellation::Aggressive,
            Checkpointing::Periodic(8),
        ),
        ("LC + DYN", Cancellation::Lazy, Checkpointing::Dynamic),
        (
            "DC + P1",
            Cancellation::Dynamic {
                filter_depth: 16,
                a2l: 0.45,
                l2a: 0.2,
            },
            Checkpointing::Periodic(1),
        ),
    ] {
        let spec = SmmpConfig::paper(reqs, seed)
            .spec()
            .with_policies(policies(canc, ckpt));
        show(label, &run_virtual(&spec));
    }

    println!("--- RAID ({reqs} requests/source) ---");
    for (label, canc, ckpt) in [
        (
            "AC + P1",
            Cancellation::Aggressive,
            Checkpointing::Periodic(1),
        ),
        ("LC + P1", Cancellation::Lazy, Checkpointing::Periodic(1)),
        (
            "DC + P1",
            Cancellation::Dynamic {
                filter_depth: 16,
                a2l: 0.45,
                l2a: 0.2,
            },
            Checkpointing::Periodic(1),
        ),
        ("LC + DYN", Cancellation::Lazy, Checkpointing::Dynamic),
    ] {
        let spec = RaidConfig::paper(reqs, seed)
            .spec()
            .with_policies(policies(canc, ckpt));
        show(label, &run_virtual(&spec));
    }

    println!("--- SMMP scattered aggregation (LC) ---");
    for (label, agg) in [
        ("unaggregated", AggregationConfig::Unaggregated),
        ("FAW 1ms", AggregationConfig::Faw { window: 1e-3 }),
        ("FAW 3ms", AggregationConfig::Faw { window: 3e-3 }),
        ("FAW 10ms", AggregationConfig::Faw { window: 10e-3 }),
        ("FAW 30ms", AggregationConfig::Faw { window: 30e-3 }),
        ("FAW 100ms", AggregationConfig::Faw { window: 100e-3 }),
        ("SAAW 1ms", AggregationConfig::saaw(1e-3)),
        ("SAAW 10ms", AggregationConfig::saaw(10e-3)),
        ("SAAW 100ms", AggregationConfig::saaw(100e-3)),
    ] {
        let cfg = SmmpConfig {
            scattered: true,
            ..SmmpConfig::paper(reqs, seed)
        };
        let spec = cfg
            .spec()
            .with_policies(policies(Cancellation::Lazy, Checkpointing::Periodic(4)))
            .with_aggregation(agg);
        show(label, &run_virtual(&spec));
    }
    println!("--- RAID aggregation (LC) ---");
    for (label, agg) in [
        ("unaggregated", AggregationConfig::Unaggregated),
        ("FAW 1ms", AggregationConfig::Faw { window: 1e-3 }),
        ("FAW 3ms", AggregationConfig::Faw { window: 3e-3 }),
        ("FAW 10ms", AggregationConfig::Faw { window: 10e-3 }),
        ("FAW 30ms", AggregationConfig::Faw { window: 30e-3 }),
        ("FAW 100ms", AggregationConfig::Faw { window: 100e-3 }),
        ("FAW 300ms", AggregationConfig::Faw { window: 300e-3 }),
        ("SAAW 1ms", AggregationConfig::saaw(1e-3)),
        ("SAAW 10ms", AggregationConfig::saaw(10e-3)),
        ("SAAW 100ms", AggregationConfig::saaw(100e-3)),
    ] {
        let spec = RaidConfig::paper(reqs, seed)
            .spec()
            .with_policies(policies(Cancellation::Lazy, Checkpointing::Periodic(4)))
            .with_aggregation(agg);
        show(label, &run_virtual(&spec));
    }
}
