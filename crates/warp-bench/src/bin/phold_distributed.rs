//! `BENCH_phold_distributed.json` — the repo's committed-events/sec
//! trajectory point for the *real* distributed executive (TCP mesh,
//! worker processes), as opposed to the modeled virtual cluster the
//! figure harnesses use.
//!
//! Fixed scenario, fixed seed: PHOLD over 8 LPs on 2 workers, recovery
//! off, no faults, no handicaps — the cleanest end-to-end number the
//! executive can produce on the host it runs on. Each measurement is
//! the best of [`RUNS`] runs (wall-clock benches on shared machines
//! want max, not mean: every source of noise only slows a run down).
//! The JSON lands at the repository root so successive PRs record a
//! visible perf trajectory (see ROADMAP "perf trajectory").
//!
//! The worker binary resolves like the tests do: `WARP_WORKER_BIN`, or
//! a `warp-worker` sibling of this executable.

use std::path::PathBuf;
use std::time::Duration;
use warped_online::cluster::{run_distributed_job, ClusterJob, ModelSpec};
use warped_online::models::PholdConfig;

/// Runs per scenario; the best is reported.
const RUNS: usize = 3;

fn worker_bin() -> PathBuf {
    if let Some(bin) = std::env::var_os("WARP_WORKER_BIN") {
        return PathBuf::from(bin);
    }
    let me = std::env::current_exe().expect("current_exe");
    let sibling = me.with_file_name("warp-worker");
    assert!(
        sibling.exists(),
        "no worker binary: set WARP_WORKER_BIN or build warp-worker next to {}",
        me.display()
    );
    sibling
}

fn scenario() -> ClusterJob {
    let cfg = PholdConfig {
        n_objects: 64,
        n_lps: 8,
        population_per_object: 2,
        ttl: 600,
        ..PholdConfig::new(600, 11)
    };
    ClusterJob::new(ModelSpec::Phold(cfg), None)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_phold_distributed.json".into());
    let job = scenario();
    let n_workers = 2;

    println!("== BENCH phold_distributed — committed events/second, {RUNS} runs ==");
    let mut best: Option<warp_exec::RunReport> = None;
    for run in 1..=RUNS {
        let report = run_distributed_job(&job, n_workers, worker_bin(), Duration::from_secs(300))
            .expect("distributed PHOLD bench run failed");
        println!(
            "  run {run}: {:>10.0} ev/s ({} committed events)",
            report.events_per_second, report.committed_events
        );
        if best
            .as_ref()
            .is_none_or(|b| report.events_per_second > b.events_per_second)
        {
            best = Some(report);
        }
    }
    let best = best.expect("RUNS >= 1");

    let scenario = serde_json::json!({
        "model": "phold",
        "n_objects": 64,
        "n_lps": 8,
        "population_per_object": 2,
        "ttl": 600,
        "seed": 11,
        "n_workers": n_workers,
        "recovery": false,
    });
    let json = serde_json::json!({
        "id": "phold_distributed",
        "scenario": scenario,
        "runs": RUNS,
        "events_per_second": best.events_per_second,
        "committed_events": best.committed_events,
        "wall_seconds": best.wall_seconds,
    });
    std::fs::write(&out, serde_json::to_vec_pretty(&json).unwrap()).expect("write JSON");
    println!(
        "best: {:.0} ev/s — written to {out}",
        best.events_per_second
    );
}
