//! `BENCH_phold_distributed.json` — the repo's committed-events/sec
//! trajectory point for the *real* distributed executive (TCP mesh,
//! worker processes), as opposed to the modeled virtual cluster the
//! figure harnesses use.
//!
//! Fixed scenario, fixed seed: PHOLD over 8 LPs on 2 workers, recovery
//! off, no faults, no handicaps — the cleanest end-to-end number the
//! executive can produce on the host it runs on. Since the data-plane
//! PR the point is a **matrix**: threaded vs. poll transport ×
//! unaggregated vs. SAAW on-the-wire aggregation, so the trajectory
//! records what the production data plane buys. Each cell is the best
//! of [`RUNS`][warp_bench::dist_bench::RUNS] runs (wall-clock benches
//! on shared machines want max, not mean: every source of noise only
//! slows a run down). The JSON lands at the repository root so
//! successive PRs record a visible perf trajectory (see ROADMAP "perf
//! trajectory").
//!
//! The worker binary resolves like the tests do: `WARP_WORKER_BIN`, or
//! a `warp-worker` sibling of this executable.

use warp_bench::dist_bench;
use warped_online::cluster::{ClusterJob, ModelSpec};
use warped_online::models::PholdConfig;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_phold_distributed.json".into());
    let cfg = PholdConfig {
        n_objects: 64,
        n_lps: 8,
        population_per_object: 2,
        ttl: 600,
        ..PholdConfig::new(600, 11)
    };
    let job = ClusterJob::new(ModelSpec::Phold(cfg), None);
    let scenario = serde_json::json!({
        "model": "phold",
        "n_objects": 64,
        "n_lps": 8,
        "population_per_object": 2,
        "ttl": 600,
        "seed": 11,
        "n_workers": 2,
        "recovery": false,
    });
    dist_bench::run_matrix("phold_distributed", &job, 2, scenario, &out);
}
