//! `BENCH_transport_loopback.json` — raw data-plane microbench: the two
//! mesh engines moving bare `Data` frames over loopback TCP, with no
//! simulation kernel in the way.
//!
//! For each transport a full mesh of [`PROCS`] in-process "processes"
//! (each its own mesh instance on its own listener) is established;
//! process 0 then streams [`FRAMES`] small physical messages
//! round-robin to every peer while the peers count arrivals. Reported
//! per transport:
//!
//! * **frames/sec** — end-to-end delivery rate of the stream;
//! * **threads** — OS threads alive while the mesh idles (from
//!   `/proc/self/status`), the structural difference between the two
//!   engines: the threaded mesh burns 2 threads per link per process
//!   (O(links)), the poll mesh one event-loop thread per process (O(1))
//!   regardless of fan-out.

use std::net::TcpListener;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};
use warp_core::LpId;
use warp_net::frame::Frame;
use warp_net::tcp::{bind_loopback, MeshEvent, TcpMeshConfig};
use warp_net::{Mesh, PhysMsg, Transport};

/// Mesh size: 1 sender + 3 receivers = 3 links under load.
const PROCS: u32 = 4;
/// Frames streamed by the sender per measurement.
const FRAMES: u64 = 60_000;

/// Current OS thread count of this process (`Threads:` in
/// `/proc/self/status`); 0 where procfs is unavailable.
fn os_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn establish_full_mesh(transport: Transport) -> Vec<Mesh> {
    let listeners: Vec<TcpListener> = (0..PROCS).map(|_| bind_loopback().unwrap()).collect();
    let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let mut handles = Vec::new();
    for (i, l) in listeners.into_iter().enumerate().rev() {
        let peers: Vec<_> = (0..i as u32).map(|j| (j, addrs[j as usize])).collect();
        handles.push(thread::spawn(move || {
            Mesh::establish(transport, TcpMeshConfig::new(i as u32, PROCS), l, &peers).unwrap()
        }));
    }
    let mut meshes: Vec<Mesh> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    meshes.sort_by_key(|m| m.proc_id());
    meshes
}

fn measure(transport: Transport) -> (f64, u64) {
    let before = os_threads();
    let mut meshes = establish_full_mesh(transport);
    let threads = os_threads().saturating_sub(before);

    // Receivers: drain Data frames until told how many to expect.
    let (done_tx, done_rx) = mpsc::channel::<u32>();
    let receivers: Vec<_> = meshes
        .split_off(1)
        .into_iter()
        .map(|m| {
            let done = done_tx.clone();
            let quota = FRAMES / (PROCS as u64 - 1)
                + u64::from(m.proc_id() <= (FRAMES % (PROCS as u64 - 1)) as u32);
            thread::spawn(move || {
                let mut got = 0u64;
                while got < quota {
                    match m.recv_timeout(Duration::from_secs(10)) {
                        Some(MeshEvent::Frame {
                            frame: Frame::Data { .. },
                            ..
                        }) => got += 1,
                        Some(_) => {}
                        None => panic!("receiver starved at {got}/{quota} frames"),
                    }
                }
                done.send(m.proc_id()).unwrap();
                m.shutdown();
            })
        })
        .collect();

    let sender = meshes.remove(0);
    let msg = PhysMsg {
        src: LpId(0),
        dst: LpId(1),
        events: Vec::new(),
    };
    let start = Instant::now();
    for i in 0..FRAMES {
        sender.send(
            1 + (i % (PROCS as u64 - 1)) as u32,
            Frame::Data {
                seq: 0,
                epoch: 0,
                msg: msg.clone(),
            },
        );
    }
    for _ in 1..PROCS {
        done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("a receiver never finished");
    }
    let secs = start.elapsed().as_secs_f64();
    sender.shutdown();
    for r in receivers {
        r.join().unwrap();
    }
    (FRAMES as f64 / secs, threads)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_transport_loopback.json".into());
    println!(
        "== BENCH transport_loopback — {FRAMES} frames over a {PROCS}-process loopback mesh =="
    );
    let mut cells: Vec<(String, serde_json::Value)> = Vec::new();
    for (key, transport) in [("threaded", Transport::Threaded), ("poll", Transport::Poll)] {
        let (fps, threads) = measure(transport);
        println!("  {key:>9}: {fps:>12.0} frames/s, {threads} mesh threads");
        cells.push((
            key.into(),
            serde_json::json!({ "frames_per_second": fps, "mesh_threads": threads }),
        ));
    }
    let json = serde_json::json!({
        "id": "transport_loopback",
        "procs": PROCS,
        "frames": FRAMES,
        "transports": serde_json::Value::Map(cells),
    });
    std::fs::write(&out, serde_json::to_vec_pretty(&json).unwrap()).expect("write JSON");
    println!("written to {out}");
}
